//! The batched, concurrent partitioning-decision service behind
//! `bap serve` — the [`crate::Controller`] wrapped for multi-tenant use.
//!
//! The paper's controller makes one decision per epoch for one machine.
//! This module serves that decision loop to many *sessions* (independent
//! machines, each a clustered ring floorplan with its own controller,
//! warm-start solver state and trace summary) behind the JSONL wire
//! protocol of [`bap_trace::wire`]:
//!
//! * **Batching** — concurrent requests are collected into one batch per
//!   *epoch tick*. [`DecisionService::process_batch`] is the pure,
//!   deterministic core: it orders the batch by client-assigned request
//!   id and applies it in three phases (session lifecycle → per-session
//!   decision work → service-wide queries), so the responses depend only
//!   on the id-ordered per-session request sequences — never on arrival
//!   interleaving, batch boundaries, or the concurrency level that
//!   delivered them (`tests/serve.rs` proves this bit-identically).
//! * **Fan-out** — distinct sessions are independent, so a batch's
//!   decision work fans out across cores on the rayon pool, one task per
//!   session; within a session, requests apply serially in id order.
//! * **Warm starts** — sessions run the [`crate::IncrementalSolver`] with
//!   a zero delta threshold, so steady-state decisions reuse cluster
//!   sub-plans bit-identically to a cold solve at a fraction of the cost.
//! * **Restarts** — [`DecisionService::checkpoint`] captures every
//!   session (warm solver state included) as a `bap-recovery`
//!   [`Checkpoint`]; restoring yields a server that answers its next
//!   snapshot exactly as the original would have, with no warmup.
//! * **Graceful shutdown** — a [`RequestKind::Shutdown`] is served like
//!   any other request, but the [`Server`] drains the in-flight requests
//!   that share its final batch before the worker exits, so every
//!   accepted request is answered.
//!
//! [`Server`] adds the concurrency shell: a worker thread owning the
//! service, an mpsc queue whose natural backlog forms the batches, and
//! cloneable blocking [`ServeClient`] handles for client threads. The
//! stdin-JSONL and TCP front ends in `src/bin/bap.rs` are thin adapters
//! over these two layers.

use crate::bank_aware::{try_bank_aware_partition, BankAwareConfig};
use crate::controller::{Controller, Policy};
use bap_cache::PartitionPlan;
use bap_msa::{EngineKind, MissRatioCurve, ProfilerConfig};
use bap_recovery::{Checkpoint, RecoveryError, RecoveryManager, RecoveryRung};
use bap_trace::wire::{
    RequestKind, ResponseKind, WireCurve, WireRequest, WireResponse, WireSummary,
};
use bap_trace::{EventKind, NoopSink, Tracer};
use bap_types::{ControlConfig, DegradedTopology, Topology};
use rayon::prelude::*;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::{mpsc, Mutex};
use std::thread;

/// Tunables of the decision service. The defaults mirror the experiment
/// fleet: 8-way banks, the reference profiler geometry, and warm starts
/// on (threshold 0 — bit-identical reuse, proven in PR 7).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Ways per L2 bank on every session's machine.
    pub bank_ways: usize,
    /// Profiler sets per session core (reference geometry).
    pub profiler_sets: usize,
    /// Profiler way depth per session core.
    pub profiler_max_ways: usize,
    /// Bank-aware solver tunables shared by all sessions.
    pub solver: BankAwareConfig,
    /// Control-loop bundle each session's controller runs under.
    pub control: ControlConfig,
    /// Checkpoints retained in the in-memory recovery ring.
    pub history: usize,
    /// When set, every [`RequestKind::Checkpoint`] also persists the
    /// checkpoint to this file (atomic tmp+rename), and
    /// [`DecisionService::restore_from_path`] can cold-start from it.
    pub checkpoint_path: Option<PathBuf>,
    /// Largest session machine an `Open` may request.
    pub max_cores: usize,
    /// Service-level trace handle (batch/checkpoint/drain events). Session
    /// controllers get their own summary-only tracers regardless.
    pub tracer: Tracer,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            bank_ways: 8,
            profiler_sets: 64,
            profiler_max_ways: 72,
            solver: BankAwareConfig::default(),
            control: ControlConfig::default().with_warm_starts(),
            history: 4,
            checkpoint_path: None,
            max_cores: 256,
            tracer: Tracer::off(),
        }
    }
}

/// One tenant: a controller on its own clustered ring floorplan, plus the
/// summary-only tracer that accumulates its decision story.
struct SessionState {
    cores: usize,
    bank_ways: usize,
    topo: Topology,
    controller: Controller,
    tracer: Tracer,
}

impl SessionState {
    fn new(cores: usize, cfg: &ServeConfig) -> Self {
        let topo = Topology::ring_of_paper_dies(cores);
        // Serve sessions take their curves over the wire; the profilers
        // never observe an access, so run the allocation-free Naive
        // engine — a Fenwick engine would fault in megabytes of stack
        // state per session for nothing, and session open is on the
        // serving path.
        let profiler_cfg = ProfilerConfig::reference(cfg.profiler_sets, cfg.profiler_max_ways)
            .with_engine(EngineKind::Naive);
        let mut controller = Controller::new(
            Policy::BankAware,
            topo.clone(),
            cfg.bank_ways,
            profiler_cfg,
            cfg.solver,
        );
        controller.set_control(cfg.control);
        // A NoopSink tracer retains no events but still counts the
        // summary — the cheap way to give every decision response its
        // per-session decision story.
        let tracer = Tracer::new(Box::new(NoopSink));
        controller.set_tracer(tracer.clone());
        SessionState {
            cores,
            bank_ways: cfg.bank_ways,
            topo,
            controller,
            tracer,
        }
    }

    fn summary(&self) -> WireSummary {
        self.tracer
            .summary()
            .map(|s| WireSummary::from_summary(&s))
            .unwrap_or_default()
    }
}

/// Total ways per core of a plan (the wire view of an assignment).
fn per_core_ways(plan: &PartitionPlan) -> Vec<usize> {
    plan.per_core
        .iter()
        .map(|allocs| allocs.iter().map(|a| a.ways).sum())
        .collect()
}

/// The `(ways, fingerprint, source)` triple the plan-carrying responses
/// share; `(empty, 0, "none")` before the first install.
fn plan_view(ctl: &Controller) -> (Vec<usize>, u64, String) {
    let source = ctl.plan_source().label().to_string();
    match ctl.last_plan() {
        Some(p) => (per_core_ways(p), p.fingerprint(), source),
        None => (Vec::new(), 0, source),
    }
}

fn unknown_session(session: u64) -> ResponseKind {
    ResponseKind::error(
        "unknown_session",
        format!("session {session} was never opened"),
    )
}

/// Validate and convert wire curves into solver inputs.
#[allow(clippy::result_large_err)] // the Err goes straight onto the wire
fn convert_curves(curves: &[WireCurve], cores: usize) -> Result<Vec<MissRatioCurve>, ResponseKind> {
    if curves.len() != cores {
        return Err(ResponseKind::error(
            "bad_request",
            format!(
                "expected {cores} curves (one per core), got {}",
                curves.len()
            ),
        ));
    }
    if let Some(i) = curves.iter().position(|c| c.misses.is_empty()) {
        return Err(ResponseKind::error(
            "bad_request",
            format!("curve for core {i} has no miss points"),
        ));
    }
    Ok(curves
        .iter()
        .map(|c| MissRatioCurve::from_misses(c.misses.clone(), c.accesses))
        .collect())
}

/// Apply one decision request (`Snapshot`/`Evaluate`) to its session.
/// Runs inside the per-session fan-out task.
fn apply_decision(
    s: &mut SessionState,
    req: &WireRequest,
    solver: &BankAwareConfig,
) -> ResponseKind {
    match &req.kind {
        RequestKind::Snapshot { session, curves } => {
            let converted = match convert_curves(curves, s.cores) {
                Ok(c) => c,
                Err(e) => return e,
            };
            // The controller owns the full epoch pipeline: sanitise →
            // hysteresis → (warm) solve → SLO gate → install-or-hold.
            let installed = s.controller.epoch_boundary_with_curves(converted).is_some();
            let (ways, fingerprint, source) = plan_view(&s.controller);
            ResponseKind::Decision {
                session: *session,
                epoch: s.controller.epochs(),
                installed,
                ways,
                source,
                fingerprint,
                summary: s.summary(),
            }
        }
        RequestKind::Evaluate { session, curves } => {
            let mut converted = match convert_curves(curves, s.cores) {
                Ok(c) => c,
                Err(e) => return e,
            };
            // What-if solve: sanitise a private copy, solve against the
            // session's machine under its current bank mask, and throw the
            // plan away — no session state moves.
            let quiet = Tracer::off();
            for (core, c) in converted.iter_mut().enumerate() {
                c.sanitize_traced(core, &quiet);
            }
            let machine = DegradedTopology::new(s.topo.clone(), *s.controller.mask());
            match try_bank_aware_partition(&converted, &machine, s.bank_ways, solver) {
                Ok(plan) => ResponseKind::Evaluated {
                    session: *session,
                    ways: per_core_ways(&plan),
                    fingerprint: plan.fingerprint(),
                },
                Err(e) => ResponseKind::error("solve_failed", e.to_string()),
            }
        }
        _ => unreachable!("phase 2 only sees decision requests"),
    }
}

/// The multi-tenant decision service: every wire request except `Profile`
/// (which needs the workload catalog and lives in the `bap` front end) is
/// served here, deterministically, batch by batch.
pub struct DecisionService {
    cfg: ServeConfig,
    sessions: BTreeMap<u64, SessionState>,
    history: RecoveryManager,
    tracer: Tracer,
    /// Epoch ticks (batches) served.
    tick: u64,
    /// Requests served in total.
    requests: u64,
}

impl DecisionService {
    /// A fresh service with no sessions.
    pub fn new(cfg: ServeConfig) -> Self {
        let history = RecoveryManager::new(cfg.history);
        let tracer = cfg.tracer.clone();
        DecisionService {
            cfg,
            sessions: BTreeMap::new(),
            history,
            tracer,
            tick: 0,
            requests: 0,
        }
    }

    /// Live sessions.
    pub fn num_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// Epoch ticks (batches) served so far.
    pub fn ticks(&self) -> u64 {
        self.tick
    }

    /// Serve one batch: one epoch tick. Responses come back 1:1 in the
    /// *input* order of `requests`; internally the batch is applied in
    /// ascending request-id order (stable on ties), in three phases:
    ///
    /// 1. session lifecycle (`Open`), serially;
    /// 2. decision work (`Snapshot`/`Evaluate`), fanned out across
    ///    sessions in parallel — within a session, id order;
    /// 3. queries and service-wide operations (`Plan`, `Stats`,
    ///    `Checkpoint`, `Shutdown`), serially, observing the post-decision
    ///    state of the tick.
    ///
    /// This makes the responses a pure function of the id-ordered
    /// per-session request sequences: how requests were split into
    /// batches, interleaved, or raced by client threads cannot change any
    /// plan, fingerprint, or error (`tick` fields excepted — the tick is
    /// honest about how work actually batched).
    pub fn process_batch(&mut self, requests: &[WireRequest]) -> Vec<WireResponse> {
        self.tick += 1;
        let tick = self.tick;
        let n = requests.len();
        self.requests += n as u64;
        self.tracer.begin_epoch(tick);

        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| requests[i].id);
        let mut kinds: Vec<Option<ResponseKind>> = (0..n).map(|_| None).collect();

        // Phase 1: session lifecycle, serial in id order, so a Snapshot
        // batched together with its Open (ids permitting) already works.
        for &i in &order {
            if let RequestKind::Open { session, cores } = &requests[i].kind {
                kinds[i] = Some(self.handle_open(*session, *cores));
            }
        }

        // Phase 2: decision work. Group by session preserving id order,
        // move each touched session behind a Mutex, and fan the groups out
        // on the rayon pool — sessions are independent, so the parallel
        // schedule cannot affect any result.
        let mut by_session: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        for &i in &order {
            match &requests[i].kind {
                RequestKind::Snapshot { session, .. } | RequestKind::Evaluate { session, .. } => {
                    by_session.entry(*session).or_default().push(i);
                }
                _ => {}
            }
        }
        let mut work: Vec<(u64, Mutex<SessionState>, Vec<usize>)> = Vec::new();
        for (session, idxs) in by_session {
            match self.sessions.remove(&session) {
                Some(state) => work.push((session, Mutex::new(state), idxs)),
                None => {
                    for i in idxs {
                        kinds[i] = Some(unknown_session(session));
                    }
                }
            }
        }
        let touched = work.len();
        let solver = self.cfg.solver;
        let serve_group = |(_, state, idxs): &(u64, Mutex<SessionState>, Vec<usize>)| {
            let mut s = state.lock().expect("session lock is never poisoned");
            idxs.iter()
                .map(|&i| (i, apply_decision(&mut s, &requests[i], &solver)))
                .collect::<Vec<(usize, ResponseKind)>>()
        };
        let results: Vec<Vec<(usize, ResponseKind)>> = if work.len() > 1 {
            work.par_iter().map(serve_group).collect()
        } else {
            work.iter().map(serve_group).collect()
        };
        for (session, state, _) in work {
            let state = state.into_inner().expect("session lock is never poisoned");
            self.sessions.insert(session, state);
        }
        for group in results {
            for (i, kind) in group {
                kinds[i] = Some(kind);
            }
        }

        // Phase 3: queries and service-wide operations, serial in id
        // order, observing the tick's post-decision state.
        let shutdowns = requests
            .iter()
            .filter(|r| matches!(r.kind, RequestKind::Shutdown))
            .count();
        let residual = n - shutdowns;
        for &i in &order {
            let kind = match &requests[i].kind {
                RequestKind::Open { .. }
                | RequestKind::Snapshot { .. }
                | RequestKind::Evaluate { .. } => continue,
                RequestKind::Plan { session } => self.handle_plan(*session),
                RequestKind::Profile { .. } => ResponseKind::error(
                    "unsupported",
                    "profile requests need the workload catalog; use the bap front end",
                ),
                RequestKind::Checkpoint => self.handle_checkpoint(),
                RequestKind::Stats => self.handle_stats(),
                RequestKind::Shutdown => {
                    self.tracer.emit(|| EventKind::ServerDrained { residual });
                    ResponseKind::Bye { drained: residual }
                }
            };
            kinds[i] = Some(kind);
        }

        // The tick's trace, in deterministic id order.
        self.tracer.emit(|| EventKind::BatchDispatched {
            tick,
            requests: n,
            sessions: touched,
        });
        for &i in &order {
            self.tracer.emit(|| EventKind::RequestServed {
                id: requests[i].id,
                kind: requests[i].kind.label().to_string(),
            });
        }

        requests
            .iter()
            .zip(kinds)
            .map(|(r, kind)| WireResponse {
                id: r.id,
                tick,
                kind: kind.expect("every request is answered exactly once"),
            })
            .collect()
    }

    fn handle_open(&mut self, session: u64, cores: usize) -> ResponseKind {
        if self.sessions.contains_key(&session) {
            return ResponseKind::error(
                "session_exists",
                format!("session {session} is already open"),
            );
        }
        if cores < 8 || !cores.is_multiple_of(8) || cores > self.cfg.max_cores {
            return ResponseKind::error(
                "bad_request",
                format!(
                    "cores must be a multiple of 8 in 8..={} (rings of 8-core paper dies), got {cores}",
                    self.cfg.max_cores
                ),
            );
        }
        self.sessions
            .insert(session, SessionState::new(cores, &self.cfg));
        ResponseKind::Opened { session, cores }
    }

    fn handle_plan(&self, session: u64) -> ResponseKind {
        match self.sessions.get(&session) {
            Some(s) => {
                let (ways, fingerprint, source) = plan_view(&s.controller);
                ResponseKind::Plan {
                    session,
                    epoch: s.controller.epochs(),
                    ways,
                    source,
                    fingerprint,
                }
            }
            None => unknown_session(session),
        }
    }

    fn handle_stats(&self) -> ResponseKind {
        let mut decisions = 0;
        let mut warm_hits = 0;
        for s in self.sessions.values() {
            decisions += s.controller.epochs();
            warm_hits += s.summary().warm_start_hits;
        }
        ResponseKind::Stats {
            sessions: self.sessions.len(),
            ticks: self.tick,
            requests: self.requests,
            decisions,
            warm_hits,
        }
    }

    fn handle_checkpoint(&mut self) -> ResponseKind {
        let cp = self.checkpoint();
        let bytes = self.history.push(&cp);
        if let Some(path) = self.cfg.checkpoint_path.clone() {
            if let Err(e) = bap_recovery::save_checkpoint_file(&path, &cp) {
                return ResponseKind::error("checkpoint_failed", e.to_string());
            }
        }
        let sessions = self.sessions.len();
        self.tracer
            .emit(|| EventKind::ServerCheckpointed { bytes, sessions });
        ResponseKind::Checkpointed {
            bytes,
            sessions,
            tick: self.tick,
        }
    }

    /// Snapshot the whole service — tick counters plus every session's
    /// controller state (profilers, installed plan, hysteresis, warm
    /// solver baselines) — as an opaque payload.
    pub fn snapshot(&self) -> serde::Value {
        let sessions: Vec<serde::Value> = self
            .sessions
            .iter()
            .map(|(id, s)| {
                serde::Value::Object(vec![
                    ("id".to_string(), serde::Serialize::to_value(id)),
                    ("cores".to_string(), serde::Serialize::to_value(&s.cores)),
                    ("state".to_string(), s.controller.snapshot()),
                ])
            })
            .collect();
        serde::Value::Object(vec![
            ("tick".to_string(), serde::Serialize::to_value(&self.tick)),
            (
                "requests".to_string(),
                serde::Serialize::to_value(&self.requests),
            ),
            ("sessions".to_string(), serde::Value::Array(sessions)),
        ])
    }

    /// Rebuild the service from a [`DecisionService::snapshot`] payload.
    /// Atomic: either every session restores and the snapshot's state
    /// replaces the current one wholesale, or the service is left
    /// untouched. Trace summaries restart from zero (they narrate a
    /// process lifetime, not a logical one); warm-start solver baselines
    /// are restored, so the next unchanged-curve decision is a warm hit —
    /// the zero-warmup restart.
    pub fn restore(&mut self, v: &serde::Value) -> Result<(), serde::Error> {
        let tick: u64 = serde::from_field(v, "tick")?;
        let requests: u64 = serde::from_field(v, "requests")?;
        let entries = match v.get("sessions") {
            Some(serde::Value::Array(items)) => items,
            _ => return Err(serde::Error::msg("snapshot has no session list")),
        };
        let mut sessions = BTreeMap::new();
        for entry in entries {
            let id: u64 = serde::from_field(entry, "id")?;
            let cores: usize = serde::from_field(entry, "cores")?;
            let state = entry
                .get("state")
                .ok_or_else(|| serde::Error::msg(format!("session {id} has no state")))?;
            let mut session = SessionState::new(cores, &self.cfg);
            session.controller.restore(state)?;
            sessions.insert(id, session);
        }
        let restored = sessions.len();
        self.sessions = sessions;
        self.tick = tick;
        self.requests = requests;
        self.tracer.emit(|| EventKind::ServerRestored {
            sessions: restored,
            tick,
        });
        Ok(())
    }

    /// Wrap the current state as a versioned, checksummed checkpoint
    /// (`epoch` carries the tick).
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint::new(self.tick, self.snapshot())
    }

    /// Restore from a decoded checkpoint.
    pub fn restore_from_checkpoint(&mut self, cp: &Checkpoint) -> Result<(), RecoveryError> {
        self.restore(&cp.payload)
            .map_err(|e| RecoveryError::Rejected(e.to_string()))
    }

    /// Cold-start restore from a checkpoint file written via the
    /// configured `checkpoint_path`. Returns the restored tick.
    pub fn restore_from_path(&mut self, path: &std::path::Path) -> Result<u64, RecoveryError> {
        let cp = bap_recovery::load_checkpoint_file(path)?;
        self.restore_from_checkpoint(&cp)?;
        Ok(cp.epoch)
    }

    /// Walk the in-memory checkpoint ring newest-first and restore from
    /// the first checkpoint that decodes, validates and rebuilds — the
    /// recovery ladder applied to the server itself. Returns the rung and
    /// tick that survived, or every rejection when the ring is exhausted.
    pub fn recover(&mut self) -> Result<(RecoveryRung, u64), Vec<RecoveryError>> {
        let history = std::mem::replace(&mut self.history, RecoveryManager::new(1));
        let out = history.recover(|cp| self.restore_from_checkpoint(cp).map(|()| cp.epoch));
        self.history = history;
        out.map(|o| (o.rung, o.value))
    }
}

/// An envelope on the server queue: the request plus its private reply
/// channel.
struct Envelope(WireRequest, mpsc::Sender<WireResponse>);

/// The threaded shell around a [`DecisionService`]: one worker thread owns
/// the service; clients enqueue requests; the worker drains the queue's
/// natural backlog into one batch per epoch tick. Concurrency shapes only
/// the batching — determinism is the service's job.
pub struct Server {
    tx: mpsc::Sender<Envelope>,
    handle: thread::JoinHandle<DecisionService>,
}

/// A cloneable, blocking client handle onto a [`Server`].
#[derive(Clone)]
pub struct ServeClient {
    tx: mpsc::Sender<Envelope>,
}

impl Server {
    /// Move the service onto its worker thread and start serving.
    pub fn spawn(mut service: DecisionService) -> Server {
        let (tx, rx) = mpsc::channel::<Envelope>();
        let handle = thread::Builder::new()
            .name("bap-serve".to_string())
            .spawn(move || {
                loop {
                    // Block for the first request, then sweep whatever
                    // else already queued into the same tick.
                    let first = match rx.recv() {
                        Ok(env) => env,
                        Err(_) => break, // every client handle dropped
                    };
                    let mut batch = vec![first];
                    while let Ok(env) = rx.try_recv() {
                        batch.push(env);
                    }
                    let shutdown = batch
                        .iter()
                        .any(|e| matches!(e.0.kind, RequestKind::Shutdown));
                    if shutdown {
                        // Drain stragglers that raced the shutdown into
                        // the final batch so they are answered, not lost.
                        while let Ok(env) = rx.try_recv() {
                            batch.push(env);
                        }
                    }
                    let requests: Vec<WireRequest> = batch.iter().map(|e| e.0.clone()).collect();
                    let responses = service.process_batch(&requests);
                    for (env, resp) in batch.into_iter().zip(responses) {
                        // A client that hung up just doesn't read its
                        // reply; the batch still completes.
                        let _ = env.1.send(resp);
                    }
                    if shutdown {
                        break;
                    }
                }
                service
            })
            .expect("spawn server thread");
        Server { tx, handle }
    }

    /// A client handle; clone freely across threads.
    pub fn client(&self) -> ServeClient {
        ServeClient {
            tx: self.tx.clone(),
        }
    }

    /// Wait for the worker to exit (after a `Shutdown` was served, or once
    /// every client handle is dropped) and take the service back —
    /// checkpoint state and all.
    pub fn join(self) -> DecisionService {
        drop(self.tx);
        self.handle.join().expect("server thread panicked")
    }
}

impl ServeClient {
    /// Send one request and block for its response. `None` means the
    /// server already shut down.
    pub fn call(&self, req: WireRequest) -> Option<WireResponse> {
        let (tx, rx) = mpsc::channel();
        self.tx.send(Envelope(req, tx)).ok()?;
        rx.recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn knee_curves(cores: usize, seed: u64) -> Vec<WireCurve> {
        (0..cores)
            .map(|core| {
                let h = seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add((core as u64).wrapping_mul(0x0100_0000_01B3));
                let base = 30_000.0 + (h % 90_000) as f64;
                let knee = 2 + ((h >> 17) % 40) as usize;
                let floor = ((h >> 33) % 3_000) as f64;
                let misses = (0..=72)
                    .map(|w| {
                        if w >= knee {
                            floor
                        } else {
                            base - (base - floor) * w as f64 / knee as f64
                        }
                    })
                    .collect();
                WireCurve {
                    accesses: base.max(1.0) * 4.0,
                    misses,
                }
            })
            .collect()
    }

    fn req(id: u64, kind: RequestKind) -> WireRequest {
        WireRequest { id, kind }
    }

    /// The fingerprint a plan-carrying response exposes.
    fn fp(resp: &WireResponse) -> Option<u64> {
        match &resp.kind {
            ResponseKind::Decision { fingerprint, .. }
            | ResponseKind::Evaluated { fingerprint, .. }
            | ResponseKind::Plan { fingerprint, .. } => Some(*fingerprint),
            _ => None,
        }
    }

    #[test]
    fn open_snapshot_plan_lifecycle() {
        let mut svc = DecisionService::new(ServeConfig::default());
        let out = svc.process_batch(&[
            req(
                1,
                RequestKind::Open {
                    session: 7,
                    cores: 8,
                },
            ),
            req(
                2,
                RequestKind::Snapshot {
                    session: 7,
                    curves: knee_curves(8, 3),
                },
            ),
            req(3, RequestKind::Plan { session: 7 }),
        ]);
        assert!(matches!(
            out[0].kind,
            ResponseKind::Opened {
                session: 7,
                cores: 8
            }
        ));
        let ResponseKind::Decision {
            installed,
            ref ways,
            fingerprint,
            ref source,
            ..
        } = out[1].kind
        else {
            panic!("expected a decision, got {:?}", out[1].kind);
        };
        assert!(installed);
        assert_eq!(ways.len(), 8);
        assert_eq!(
            ways.iter().sum::<usize>(),
            128,
            "8 cores × 16 banks × 8 ways"
        );
        assert_eq!(source, "solver");
        let ResponseKind::Plan {
            fingerprint: plan_fp,
            ..
        } = out[2].kind
        else {
            panic!("expected a plan, got {:?}", out[2].kind);
        };
        assert_eq!(
            plan_fp, fingerprint,
            "plan query sees the installed decision"
        );
    }

    #[test]
    fn typed_errors_for_bad_requests() {
        let mut svc = DecisionService::new(ServeConfig::default());
        let out = svc.process_batch(&[
            req(
                1,
                RequestKind::Open {
                    session: 1,
                    cores: 9,
                },
            ),
            req(
                2,
                RequestKind::Snapshot {
                    session: 99,
                    curves: knee_curves(8, 0),
                },
            ),
            req(3, RequestKind::Plan { session: 99 }),
            req(
                4,
                RequestKind::Profile {
                    workloads: vec![],
                    instructions: 0,
                    seed: 0,
                },
            ),
        ]);
        for (resp, code) in out.iter().zip([
            "bad_request",
            "unknown_session",
            "unknown_session",
            "unsupported",
        ]) {
            let ResponseKind::Error { code: ref c, .. } = resp.kind else {
                panic!("expected {code}, got {:?}", resp.kind);
            };
            assert_eq!(c, code);
        }
        // And the service keeps serving afterwards.
        let out = svc.process_batch(&[req(
            5,
            RequestKind::Open {
                session: 1,
                cores: 8,
            },
        )]);
        assert!(matches!(out[0].kind, ResponseKind::Opened { .. }));
    }

    #[test]
    fn duplicate_open_and_wrong_curve_count_are_refused() {
        let mut svc = DecisionService::new(ServeConfig::default());
        svc.process_batch(&[req(
            1,
            RequestKind::Open {
                session: 1,
                cores: 8,
            },
        )]);
        let out = svc.process_batch(&[
            req(
                2,
                RequestKind::Open {
                    session: 1,
                    cores: 8,
                },
            ),
            req(
                3,
                RequestKind::Snapshot {
                    session: 1,
                    curves: knee_curves(4, 0),
                },
            ),
        ]);
        assert!(matches!(out[0].kind, ResponseKind::Error { .. }));
        let ResponseKind::Error { ref code, .. } = out[1].kind else {
            panic!("expected bad_request, got {:?}", out[1].kind);
        };
        assert_eq!(code, "bad_request");
    }

    #[test]
    fn evaluate_is_read_only() {
        let mut svc = DecisionService::new(ServeConfig::default());
        svc.process_batch(&[
            req(
                1,
                RequestKind::Open {
                    session: 1,
                    cores: 8,
                },
            ),
            req(
                2,
                RequestKind::Snapshot {
                    session: 1,
                    curves: knee_curves(8, 5),
                },
            ),
        ]);
        let before = svc.process_batch(&[req(3, RequestKind::Plan { session: 1 })]);
        let out = svc.process_batch(&[req(
            4,
            RequestKind::Evaluate {
                session: 1,
                curves: knee_curves(8, 77),
            },
        )]);
        assert!(matches!(out[0].kind, ResponseKind::Evaluated { .. }));
        let after = svc.process_batch(&[req(5, RequestKind::Plan { session: 1 })]);
        assert_eq!(
            before[0].kind, after[0].kind,
            "evaluate moved session state"
        );
    }

    #[test]
    fn checkpoint_restore_is_a_zero_warmup_restart() {
        let mut svc = DecisionService::new(ServeConfig::default());
        svc.process_batch(&[req(
            1,
            RequestKind::Open {
                session: 4,
                cores: 16,
            },
        )]);
        for round in 0..4u64 {
            svc.process_batch(&[req(
                10 + round,
                RequestKind::Snapshot {
                    session: 4,
                    curves: knee_curves(16, 11),
                },
            )]);
        }
        let out = svc.process_batch(&[req(20, RequestKind::Checkpoint)]);
        assert!(matches!(
            out[0].kind,
            ResponseKind::Checkpointed { sessions: 1, .. }
        ));
        let cp = svc.checkpoint();

        let mut restored = DecisionService::new(ServeConfig::default());
        restored
            .restore_from_checkpoint(&cp)
            .expect("restore succeeds");
        assert_eq!(restored.num_sessions(), 1);

        // Same next decision on both — and the restored one is warm: its
        // very first solve reuses the checkpointed cluster baselines.
        let next = knee_curves(16, 11);
        let a = svc.process_batch(&[req(
            30,
            RequestKind::Snapshot {
                session: 4,
                curves: next.clone(),
            },
        )]);
        let b = restored.process_batch(&[req(
            30,
            RequestKind::Snapshot {
                session: 4,
                curves: next,
            },
        )]);
        assert_eq!(fp(&a[0]), fp(&b[0]));
        let stats = restored.process_batch(&[req(31, RequestKind::Stats)]);
        let ResponseKind::Stats { warm_hits, .. } = stats[0].kind else {
            panic!("expected stats");
        };
        assert!(warm_hits > 0, "first post-restore decision was not warm");
    }

    #[test]
    fn recovery_ring_walks_past_corruption() {
        let mut svc = DecisionService::new(ServeConfig::default());
        svc.process_batch(&[
            req(
                1,
                RequestKind::Open {
                    session: 1,
                    cores: 8,
                },
            ),
            req(
                2,
                RequestKind::Snapshot {
                    session: 1,
                    curves: knee_curves(8, 2),
                },
            ),
            req(3, RequestKind::Checkpoint),
        ]);
        svc.process_batch(&[
            req(
                4,
                RequestKind::Snapshot {
                    session: 1,
                    curves: knee_curves(8, 9),
                },
            ),
            req(5, RequestKind::Checkpoint),
        ]);
        // Corrupt the newest retained checkpoint; recovery lands on the
        // older one (rung 2) instead of failing.
        assert!(svc.history.corrupt_newest(40));
        let (rung, tick) = svc.recover().expect("older checkpoint survives");
        assert_eq!(rung, RecoveryRung::Older);
        assert_eq!(tick, 1, "first checkpoint covered tick 1");
    }

    #[test]
    fn threaded_server_serves_and_drains_on_shutdown() {
        let server = Server::spawn(DecisionService::new(ServeConfig::default()));
        let client = server.client();
        let opened = client
            .call(req(
                1,
                RequestKind::Open {
                    session: 1,
                    cores: 8,
                },
            ))
            .expect("server alive");
        assert!(matches!(opened.kind, ResponseKind::Opened { .. }));

        let curves = knee_curves(8, 1);
        let workers: Vec<_> = (0..4)
            .map(|w| {
                let c = server.client();
                let curves = curves.clone();
                thread::spawn(move || {
                    c.call(req(100 + w, RequestKind::Snapshot { session: 1, curves }))
                        .expect("server alive")
                })
            })
            .collect();
        let decisions: Vec<WireResponse> = workers.into_iter().map(|h| h.join().unwrap()).collect();
        let fps: Vec<Option<u64>> = decisions.iter().map(fp).collect();
        assert!(fps.iter().all(|f| f.is_some() && *f == fps[0]), "{fps:?}");

        let bye = client
            .call(req(999, RequestKind::Shutdown))
            .expect("shutdown answered");
        assert!(matches!(bye.kind, ResponseKind::Bye { .. }));
        let service = server.join();
        assert_eq!(service.num_sessions(), 1);
        assert!(
            client.call(req(1000, RequestKind::Stats)).is_none(),
            "server is gone"
        );
    }
}

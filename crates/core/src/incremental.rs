//! Incremental (warm-start) Bank-aware solving.
//!
//! On clustered floorplans the Fig. 6 solve decomposes exactly into
//! independent per-cluster shards (see the cluster-sharding notes in
//! [`crate::bank_aware`]). Consecutive epochs rarely move every core's
//! miss-ratio curve at once, so most shards re-derive the sub-plan they
//! produced last epoch. The [`IncrementalSolver`] exploits that: it keeps
//! the previous epoch's per-cluster sub-plans together with the curves they
//! were solved against, classifies each cluster *dirty* or *clean* by how
//! far its cores' curves have moved, re-solves only the dirty shards and
//! splices the cached sub-plans in for the rest.
//!
//! # Equivalence contract
//!
//! With `delta_threshold == 0.0` (the default) a cluster is reused only
//! when its curves are **bit-for-bit unchanged** since its last re-solve.
//! The per-cluster solve is a deterministic function of (curves, mask,
//! config), so the reused sub-plan is exactly what a fresh solve would have
//! produced and the merged plan is identical to the full solve — warm
//! starts at threshold 0 are a pure latency optimisation, and the golden
//! figures and the offline trace replay gate hold bit-identically. The
//! property tests in this module and the replay gate in `exp_trace` pin
//! that contract down.
//!
//! # Safety fallbacks
//!
//! The warm state carries a fingerprint of everything the sub-solves read
//! besides the curves: topology shape, bank mask, bank ways and the solver
//! configuration. Any mismatch — first solve, mask transition after a bank
//! failure, reconfiguration — discards the cache and runs the full cold
//! solve. A failed solve also drops the cache, so an error can never leave
//! half-updated warm state behind.
//!
//! # Observability
//!
//! Every warm decision emits one [`EventKind::SolverDelta`] (how many
//! clusters were dirty and the largest curve movement observed) and one
//! [`EventKind::WarmStartHit`] per reused shard (with the cluster's current
//! reuse streak). [`IncrementalStats`] accumulates the same signals as
//! plain counters for untraced runs.

use crate::bank_aware::{
    merge_shards, solve_shards, validate_curve_inputs, BankAwareConfig, ClusterSolution,
    PartitionError, SolveBudget,
};
use bap_cache::PartitionPlan;
use bap_msa::MissRatioCurve;
use bap_trace::{EventKind, Tracer};
use bap_types::DegradedTopology;

/// Plain counters describing how much work warm starts saved. The numbers
/// surface in `RunResult` so experiments can report re-solve rates without
/// attaching a tracer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct IncrementalStats {
    /// Solve requests routed through the incremental path.
    pub decisions: u64,
    /// Decisions that ran the full cold solve (no usable warm state).
    pub full_solves: u64,
    /// Individual cluster shards actually re-solved.
    pub cluster_solves: u64,
    /// Individual cluster shards reused from the warm cache.
    pub warm_hits: u64,
}

impl IncrementalStats {
    /// Fraction of cluster decisions that required a re-solve (1.0 until
    /// the first warm hit; 0.0 for a fully stationary workload after
    /// warm-up).
    pub fn resolve_rate(&self) -> f64 {
        let total = self.cluster_solves + self.warm_hits;
        if total == 0 {
            return 1.0;
        }
        self.cluster_solves as f64 / total as f64
    }
}

/// Everything the previous epoch's solve depended on, kept so the next
/// epoch can prove which clusters are unchanged.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
struct WarmState {
    /// The curves each cluster was last *re-solved* against (per core,
    /// global order). Clean clusters keep their baseline, so slow drift
    /// accumulates against it instead of hiding below the threshold one
    /// epoch at a time.
    curves: Vec<MissRatioCurve>,
    /// Bank-mask fingerprint at the last solve.
    mask_bits: u64,
    /// Topology shape at the last solve.
    num_cores: usize,
    num_banks: usize,
    clusters: usize,
    /// Cache geometry and solver configuration at the last solve.
    bank_ways: usize,
    cap_num: usize,
    cap_den: usize,
    min_ways: usize,
    /// The per-cluster sub-plans, ascending cluster order.
    solutions: Vec<ClusterSolution>,
    /// Consecutive epochs each cluster has been reused (0 right after a
    /// re-solve).
    streaks: Vec<u64>,
}

impl WarmState {
    /// Whether the cached state is still talking about the same machine
    /// and solver configuration.
    fn matches(&self, machine: &DegradedTopology, bank_ways: usize, cfg: &BankAwareConfig) -> bool {
        let topo = machine.topology();
        self.mask_bits == machine.mask().bits()
            && self.num_cores == topo.num_cores()
            && self.num_banks == topo.num_banks()
            && self.clusters == topo.num_clusters()
            && self.bank_ways == bank_ways
            && self.cap_num == cfg.max_capacity_num
            && self.cap_den == cfg.max_capacity_den
            && self.min_ways == cfg.min_ways
    }
}

/// The warm-start solver. One instance lives inside the controller; its
/// state serializes with the controller snapshot so checkpoint/restore
/// resumes warm.
#[derive(Clone, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct IncrementalSolver {
    warm: Option<WarmState>,
    stats: IncrementalStats,
}

impl IncrementalSolver {
    /// A cold solver with zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// The accumulated warm-start statistics.
    pub fn stats(&self) -> IncrementalStats {
        self.stats
    }

    /// Zero the statistics (run boundaries), keeping the warm cache.
    pub fn reset_stats(&mut self) {
        self.stats = IncrementalStats::default();
    }

    /// Whether a warm cache is currently held.
    pub fn is_warm(&self) -> bool {
        self.warm.is_some()
    }

    /// Drop the warm cache; the next solve runs cold.
    pub fn invalidate(&mut self) {
        self.warm = None;
    }

    /// The incremental counterpart of
    /// [`crate::bank_aware::try_bank_aware_partition_budgeted`]: same
    /// inputs, same outputs, same error surface — plus the warm-start
    /// machinery described at module level. `delta_threshold` is the
    /// per-cluster curve-movement bound for reuse.
    #[allow(clippy::too_many_arguments)]
    pub fn solve(
        &mut self,
        curves: &[MissRatioCurve],
        machine: &DegradedTopology,
        bank_ways: usize,
        cfg: &BankAwareConfig,
        tracer: &Tracer,
        budget: SolveBudget,
        delta_threshold: f64,
    ) -> Result<PartitionPlan, PartitionError> {
        self.stats.decisions += 1;
        let curve_refs: Vec<&MissRatioCurve> = curves.iter().collect();
        // Bad inputs say nothing about the cached machine state; the warm
        // cache stays for the next well-formed request.
        validate_curve_inputs(&curve_refs, machine)?;
        let usable = self
            .warm
            .as_ref()
            .is_some_and(|w| w.matches(machine, bank_ways, cfg));
        if !usable {
            return self.cold_solve(&curve_refs, machine, bank_ways, cfg, tracer, budget);
        }

        // ---- Classify clusters by curve movement since their last solve. ----
        let topo = machine.topology();
        let clusters = topo.num_clusters();
        let k = topo.cluster_cores();
        let warm = self.warm.as_ref().expect("usable implies warm");
        let mut dirty: Vec<usize> = Vec::new();
        let mut is_dirty = vec![false; clusters];
        let mut max_delta = 0.0f64;
        for (cl, dirty_flag) in is_dirty.iter_mut().enumerate() {
            let cluster_cores = cl * k..(cl + 1) * k;
            let delta = if delta_threshold == 0.0 {
                // Exact-reuse mode: equality is the whole question, and a
                // bitwise compare beats integrating the ratio delta curve.
                // Unchanged clusters have movement 0 by definition, so
                // `max_delta` still reports the true maximum; the precise
                // movement only matters (and is only computed) for dirty
                // clusters.
                if cluster_cores.clone().all(|c| curves[c] == warm.curves[c]) {
                    0.0
                } else {
                    cluster_cores
                        .map(|c| curves[c].relative_delta(&warm.curves[c]))
                        .fold(0.0, f64::max)
                        .max(f64::MIN_POSITIVE)
                }
            } else {
                cluster_cores
                    .map(|c| curves[c].relative_delta(&warm.curves[c]))
                    .fold(0.0, f64::max)
            };
            max_delta = max_delta.max(delta);
            if delta > delta_threshold {
                dirty.push(cl);
                *dirty_flag = true;
            }
        }
        let dirty_clusters = dirty.len();
        tracer.emit(|| EventKind::SolverDelta {
            dirty_clusters,
            total_clusters: clusters,
            max_delta,
        });

        // ---- Re-solve the dirty shards only. ----
        let fresh = match solve_shards(&dirty, &curve_refs, machine, bank_ways, cfg, tracer, budget)
        {
            Ok(f) => f,
            Err(e) => {
                // A failing shard invalidates the whole cache: the caller's
                // recovery path (shed / degradation ladder) may change the
                // machine underneath us, and a stale splice is worse than a
                // cold re-solve next epoch.
                self.warm = None;
                return Err(e);
            }
        };

        // ---- Splice fresh and cached shards, ascending cluster order. ----
        let warm = self.warm.as_mut().expect("usable implies warm");
        let mut fresh_iter = fresh.into_iter();
        let mut solutions: Vec<ClusterSolution> = Vec::with_capacity(clusters);
        for (cl, &cluster_dirty) in is_dirty.iter().enumerate() {
            if cluster_dirty {
                let sol = fresh_iter.next().expect("one solution per dirty shard");
                warm.curves[cl * k..(cl + 1) * k].clone_from_slice(&curves[cl * k..(cl + 1) * k]);
                warm.streaks[cl] = 0;
                warm.solutions[cl] = sol.clone();
                self.stats.cluster_solves += 1;
                solutions.push(sol);
            } else {
                warm.streaks[cl] += 1;
                let streak = warm.streaks[cl];
                tracer.emit(|| EventKind::WarmStartHit {
                    cluster: cl,
                    streak,
                });
                self.stats.warm_hits += 1;
                solutions.push(warm.solutions[cl].clone());
            }
        }

        match merge_shards(&solutions, machine, bank_ways, tracer) {
            Ok(plan) => Ok(plan),
            Err(e) => {
                self.warm = None;
                Err(e)
            }
        }
    }

    /// Full solve of every shard, then (on success) prime the warm cache.
    fn cold_solve(
        &mut self,
        curve_refs: &[&MissRatioCurve],
        machine: &DegradedTopology,
        bank_ways: usize,
        cfg: &BankAwareConfig,
        tracer: &Tracer,
        budget: SolveBudget,
    ) -> Result<PartitionPlan, PartitionError> {
        self.warm = None;
        let topo = machine.topology();
        let clusters = topo.num_clusters();
        let ids: Vec<usize> = (0..clusters).collect();
        self.stats.full_solves += 1;
        let solutions = solve_shards(&ids, curve_refs, machine, bank_ways, cfg, tracer, budget)?;
        self.stats.cluster_solves += clusters as u64;
        let plan = merge_shards(&solutions, machine, bank_ways, tracer)?;
        self.warm = Some(WarmState {
            curves: curve_refs.iter().map(|&c| c.clone()).collect(),
            mask_bits: machine.mask().bits(),
            num_cores: topo.num_cores(),
            num_banks: topo.num_banks(),
            clusters,
            bank_ways,
            cap_num: cfg.max_capacity_num,
            cap_den: cfg.max_capacity_den,
            min_ways: cfg.min_ways,
            solutions,
            streaks: vec![0; clusters],
        });
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bank_aware::try_bank_aware_partition_budgeted;
    use bap_types::{BankId, BankMask, Topology};
    use proptest::prelude::*;

    fn knee(base: f64, floor: f64, knee_ways: usize) -> MissRatioCurve {
        let misses = (0..=128)
            .map(|w| {
                if w >= knee_ways {
                    floor
                } else {
                    base - (base - floor) * w as f64 / knee_ways as f64
                }
            })
            .collect();
        MissRatioCurve::from_misses(misses, base.max(1.0))
    }

    fn ring(cores: usize) -> DegradedTopology {
        DegradedTopology::healthy(Topology::ring_of_paper_dies(cores))
    }

    fn full_solve(curves: &[MissRatioCurve], machine: &DegradedTopology) -> PartitionPlan {
        try_bank_aware_partition_budgeted(
            curves,
            machine,
            8,
            &BankAwareConfig::default(),
            &Tracer::off(),
            SolveBudget::unlimited(),
        )
        .unwrap()
    }

    fn warm_solve(
        inc: &mut IncrementalSolver,
        curves: &[MissRatioCurve],
        machine: &DegradedTopology,
        tracer: &Tracer,
        threshold: f64,
    ) -> PartitionPlan {
        inc.solve(
            curves,
            machine,
            8,
            &BankAwareConfig::default(),
            tracer,
            SolveBudget::unlimited(),
            threshold,
        )
        .unwrap()
    }

    #[test]
    fn stationary_mix_stops_resolving_after_warmup() {
        let machine = ring(32);
        let curves: Vec<_> = (0..32)
            .map(|c| knee(1000.0 + 17.0 * c as f64, 5.0, 6 + c % 30))
            .collect();
        let oracle = full_solve(&curves, &machine);
        let mut inc = IncrementalSolver::new();
        for _ in 0..5 {
            let plan = warm_solve(&mut inc, &curves, &machine, &Tracer::off(), 0.0);
            assert_eq!(plan, oracle);
        }
        let stats = inc.stats();
        assert_eq!(stats.decisions, 5);
        assert_eq!(stats.full_solves, 1, "only the first epoch runs cold");
        assert_eq!(stats.cluster_solves, 4, "one cold pass over 4 clusters");
        assert_eq!(stats.warm_hits, 4 * 4, "all later epochs reuse all shards");
        assert_eq!(stats.resolve_rate(), 0.2);
    }

    #[test]
    fn dirty_cluster_is_resolved_clean_ones_reused() {
        let machine = ring(32);
        let mut curves: Vec<_> = (0..32)
            .map(|c| knee(1000.0 + 17.0 * c as f64, 5.0, 6 + c % 30))
            .collect();
        let mut inc = IncrementalSolver::new();
        let tracer = Tracer::ring();
        warm_solve(&mut inc, &curves, &machine, &tracer, 0.0);
        tracer.drain_events();
        // Move only core 20's curve: cluster 2 is dirty, 0/1/3 are clean.
        curves[20] = knee(50_000.0, 0.0, 60);
        let plan = warm_solve(&mut inc, &curves, &machine, &tracer, 0.0);
        assert_eq!(plan, full_solve(&curves, &machine));
        let stats = inc.stats();
        assert_eq!(stats.cluster_solves, 4 + 1);
        assert_eq!(stats.warm_hits, 3);
        let events = tracer.drain_events();
        let delta = events
            .iter()
            .find_map(|e| match &e.kind {
                EventKind::SolverDelta {
                    dirty_clusters,
                    total_clusters,
                    max_delta,
                } => Some((*dirty_clusters, *total_clusters, *max_delta)),
                _ => None,
            })
            .expect("warm decisions report their dirtiness");
        assert_eq!((delta.0, delta.1), (1, 4));
        assert!(delta.2 > 0.0);
        let hits: Vec<usize> = events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::WarmStartHit { cluster, .. } => Some(cluster),
                _ => None,
            })
            .collect();
        assert_eq!(hits, vec![0, 1, 3]);
    }

    #[test]
    fn warm_hit_streaks_count_consecutive_reuses() {
        let machine = ring(16);
        let curves: Vec<_> = (0..16).map(|c| knee(900.0, 4.0, 5 + c)).collect();
        let mut inc = IncrementalSolver::new();
        let tracer = Tracer::ring();
        for _ in 0..4 {
            warm_solve(&mut inc, &curves, &machine, &tracer, 0.0);
        }
        let streaks: Vec<u64> = tracer
            .drain_events()
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::WarmStartHit { cluster: 0, streak } => Some(streak),
                _ => None,
            })
            .collect();
        assert_eq!(streaks, vec![1, 2, 3]);
    }

    #[test]
    fn mask_transition_falls_back_to_a_cold_solve() {
        let topo = Topology::ring_of_paper_dies(32);
        let healthy = DegradedTopology::healthy(topo.clone());
        let curves: Vec<_> = (0..32).map(|c| knee(1000.0, 10.0, 8 + c % 20)).collect();
        let mut inc = IncrementalSolver::new();
        warm_solve(&mut inc, &curves, &healthy, &Tracer::off(), 0.0);
        assert!(inc.is_warm());
        // A Center bank of cluster 1 dies: the fingerprint mismatch must
        // force a cold solve on the degraded machine.
        let mut mask = BankMask::all_healthy(64);
        mask.disable(BankId(41));
        let degraded = DegradedTopology::new(topo, mask);
        let plan = warm_solve(&mut inc, &curves, &degraded, &Tracer::off(), 0.0);
        assert_eq!(plan, full_solve(&curves, &degraded));
        assert_eq!(inc.stats().full_solves, 2);
    }

    #[test]
    fn below_threshold_drift_reuses_the_cached_plan() {
        let machine = ring(16);
        let curves: Vec<_> = (0..16).map(|c| knee(1000.0, 10.0, 8 + c)).collect();
        let mut inc = IncrementalSolver::new();
        let first = warm_solve(&mut inc, &curves, &machine, &Tracer::off(), 0.25);
        // A tiny wobble on every core: mean |Δmiss-ratio| stays far below
        // the 0.25 threshold, so nothing re-solves and the old plan holds.
        let wobbled: Vec<_> = (0..16).map(|c| knee(1001.0, 10.0, 8 + c)).collect();
        let second = warm_solve(&mut inc, &wobbled, &machine, &Tracer::off(), 0.25);
        assert_eq!(first, second);
        assert_eq!(inc.stats().warm_hits, 2);
        assert_eq!(inc.stats().cluster_solves, 2, "cold pass only");
        // Drift accumulates against the *baseline*, not the previous epoch:
        // a genuine phase change trips the threshold and re-solves. One
        // core per cluster turns voracious so the new plan is lopsided.
        let mut shifted: Vec<_> = (0..16).map(|_| knee(100.0, 60.0, 2)).collect();
        shifted[0] = knee(80_000.0, 0.0, 64);
        shifted[8] = knee(80_000.0, 0.0, 64);
        let third = warm_solve(&mut inc, &shifted, &machine, &Tracer::off(), 0.25);
        assert_eq!(third, full_solve(&shifted, &machine));
        assert_ne!(third, first);
    }

    #[test]
    fn failed_solve_clears_the_warm_cache() {
        let machine = ring(16);
        let curves: Vec<_> = (0..16).map(|c| knee(1000.0, 10.0, 8 + c)).collect();
        let mut inc = IncrementalSolver::new();
        warm_solve(&mut inc, &curves, &machine, &Tracer::off(), 0.0);
        assert!(inc.is_warm());
        // Perturb one cluster and starve the budget: the dirty shard fails.
        let mut moved = curves.clone();
        moved[0] = knee(90_000.0, 0.0, 50);
        let err = inc
            .solve(
                &moved,
                &machine,
                8,
                &BankAwareConfig::default(),
                &Tracer::off(),
                SolveBudget::steps(1),
                0.0,
            )
            .unwrap_err();
        assert!(matches!(err, PartitionError::BudgetExhausted { .. }));
        assert!(!inc.is_warm(), "an error must not leave stale warm state");
    }

    #[test]
    fn single_cluster_paper_die_works_warm() {
        // Chain topology: one cluster spanning the die — warm starts still
        // apply (the whole machine is the one shard).
        let machine = DegradedTopology::healthy(Topology::baseline());
        let curves: Vec<_> = (0..8).map(|c| knee(1000.0, 10.0, 8 + c * 6)).collect();
        let mut inc = IncrementalSolver::new();
        let a = warm_solve(&mut inc, &curves, &machine, &Tracer::off(), 0.0);
        let b = warm_solve(&mut inc, &curves, &machine, &Tracer::off(), 0.0);
        assert_eq!(a, b);
        assert_eq!(a, full_solve(&curves, &machine));
        assert_eq!(inc.stats().warm_hits, 1);
    }

    #[test]
    fn warm_state_survives_serde_round_trip() {
        let machine = ring(16);
        let curves: Vec<_> = (0..16).map(|c| knee(1000.0, 10.0, 8 + c)).collect();
        let mut inc = IncrementalSolver::new();
        warm_solve(&mut inc, &curves, &machine, &Tracer::off(), 0.0);
        let v = serde::Serialize::to_value(&inc);
        let mut restored: IncrementalSolver = serde::Deserialize::from_value(&v).unwrap();
        assert!(restored.is_warm());
        // The restored solver goes on reusing shards, no cold re-solve.
        let plan = warm_solve(&mut restored, &curves, &machine, &Tracer::off(), 0.0);
        assert_eq!(plan, full_solve(&curves, &machine));
        assert_eq!(restored.stats().full_solves, 1, "no new cold solve");
        assert_eq!(restored.stats().warm_hits, 2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The incremental equivalence contract: after any sequence of
        /// random per-core curve perturbations, the warm-start plan at
        /// threshold 0 is identical to the full-solve oracle.
        #[test]
        fn warm_start_matches_full_solve_under_random_perturbations(
            epochs in proptest::collection::vec(
                proptest::collection::vec((0usize..32, 100.0f64..60_000.0, 2usize..100), 0..6),
                1..6,
            )
        ) {
            let machine = ring(32);
            let mut curves: Vec<_> = (0..32)
                .map(|c| knee(1000.0 + 13.0 * c as f64, 5.0, 6 + c % 30))
                .collect();
            let mut inc = IncrementalSolver::new();
            for moves in epochs {
                for (core, base, ways) in moves {
                    curves[core] = knee(base, base * 0.01, ways);
                }
                let warm = warm_solve(&mut inc, &curves, &machine, &Tracer::off(), 0.0);
                let oracle = full_solve(&curves, &machine);
                prop_assert_eq!(warm, oracle);
            }
        }
    }
}

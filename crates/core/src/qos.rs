//! SLO admission control and enforcement for the partitioning controller.
//!
//! The paper's allocator optimises *average* miss rates; this module layers
//! hard guarantees on top of it (DESIGN.md §12). Cores may declare a
//! [`SloSpec`] — a worst-case-latency ceiling, a capacity floor and a
//! bandwidth floor — and the controller runs two passes around every plan
//! decision:
//!
//! * **admission** ([`admit_cores`]) — before anything is installed, each
//!   declared SLO is tested against the *analytic* WCL bound achievable on
//!   the surviving banks. Admission is a deterministic sequential
//!   simulation of [`build_qos_plan`]: cores are considered in ascending
//!   id order, each taking its `min_ways` from the nearest healthy banks,
//!   so an earlier core's placement (and therefore its bound) never changes
//!   when a later core is admitted.
//! * **enforcement** — every candidate plan (solver, ladder, replan) is
//!   checked against the admitted SLOs; a violating candidate is replaced
//!   by the plan [`build_qos_plan`] derives, demoting best-effort cores to
//!   whatever capacity remains.
//!
//! Both passes are pure functions of `(topology, mask, slos, params)` —
//! re-running them after a bank fault *is* re-admission, which is exactly
//! how mid-run degradation is escalated instead of silently breaching.

use bap_cache::{BankAllocation, PartitionPlan};
use bap_types::{wcl_bound, BankId, BankMask, CoreId, Cycle, SloSpec, Topology, WclParams};

/// The controller's QoS state: the declared objectives, the machine
/// constants of the WCL bound, and the current admission verdicts.
#[derive(Clone, Debug, PartialEq)]
pub struct QosState {
    /// Declared SLO per core (index = core id, length = num_cores).
    pub slos: Vec<Option<SloSpec>>,
    /// Machine constants of the analytic WCL bound.
    pub params: WclParams,
    /// Smallest armed regulator budget (None = no regulator armed, so any
    /// bandwidth floor is trivially met).
    pub min_budget: Option<u64>,
    /// Current admission verdict per core.
    pub admitted: Vec<bool>,
    /// Whether the first admission pass has run (the first pass reports
    /// every verdict; later passes report only status changes).
    pub evaluated: bool,
}

impl QosState {
    /// Fresh state over `num_cores` cores; nothing admitted yet.
    pub fn new(
        mut slos: Vec<Option<SloSpec>>,
        params: WclParams,
        min_budget: Option<u64>,
        num_cores: usize,
    ) -> Self {
        slos.resize(num_cores, None);
        QosState {
            slos,
            params,
            min_budget,
            admitted: vec![false; num_cores],
            evaluated: false,
        }
    }

    /// Whether any core declared an SLO.
    pub fn has_slos(&self) -> bool {
        self.slos.iter().any(|s| s.is_some())
    }
}

/// One core's admission verdict.
#[derive(Clone, Debug, PartialEq)]
pub struct AdmissionOutcome {
    /// The core that declared an SLO.
    pub core: usize,
    /// Whether the SLO is admitted under the current mask.
    pub admitted: bool,
    /// The realized analytic WCL bound (admitted cores only).
    pub bound: Option<Cycle>,
    /// Why admission failed (rejected cores only).
    pub reason: Option<String>,
}

/// The analytic WCL bound for `core` under the current placement. With
/// strict lookup isolation the wire term ranges over the core's *allocated*
/// banks; otherwise a lookup may probe any healthy bank, so the bound must
/// too. A core with no allocation (or no plan at all) falls back to the
/// all-healthy-banks bound.
pub fn core_bound(
    params: &WclParams,
    topo: &Topology,
    mask: &BankMask,
    core: CoreId,
    plan: Option<&PartitionPlan>,
) -> Cycle {
    let allocated: Vec<BankId> = match plan {
        Some(p) if params.isolated_lookup => {
            p.per_core[core.index()].iter().map(|a| a.bank).collect()
        }
        _ => Vec::new(),
    };
    if allocated.is_empty() {
        let healthy: Vec<BankId> = mask.healthy_banks().collect();
        wcl_bound(params, topo, core, &healthy)
    } else {
        wcl_bound(params, topo, core, &allocated)
    }
}

/// Allocate every admitted core its `min_ways` from the nearest healthy
/// banks (ascending core order; ties broken by bank index), leaving at
/// least one way per best-effort core. `None` when the surviving capacity
/// cannot satisfy the admitted set.
fn allocate_admitted(
    topo: &Topology,
    mask: &BankMask,
    bank_ways: usize,
    slos: &[Option<SloSpec>],
    admitted: &[bool],
) -> Option<Vec<Vec<BankAllocation>>> {
    let num_cores = topo.num_cores();
    let mut remaining: Vec<usize> = (0..topo.num_banks())
        .map(|b| {
            if mask.is_healthy(BankId(b as u16)) {
                bank_ways
            } else {
                0
            }
        })
        .collect();
    let mut per_core = vec![Vec::new(); num_cores];
    for (c, allocs) in per_core.iter_mut().enumerate() {
        if !admitted.get(c).copied().unwrap_or(false) {
            continue;
        }
        let slo = slos.get(c).and_then(|s| s.as_ref())?;
        let mut need = slo.min_ways.max(1);
        let mut banks: Vec<BankId> = mask.healthy_banks().collect();
        banks.sort_by_key(|&b| (topo.latency(CoreId(c as u16), b), b.index()));
        for b in banks {
            if need == 0 {
                break;
            }
            let take = need.min(remaining[b.index()]);
            if take > 0 {
                allocs.push(BankAllocation {
                    bank: b,
                    ways: take,
                });
                remaining[b.index()] -= take;
                need -= take;
            }
        }
        if need > 0 {
            return None;
        }
    }
    let best_effort =
        admitted.iter().filter(|&&a| !a).count() + num_cores.saturating_sub(admitted.len());
    let left: usize = remaining.iter().sum();
    if left < best_effort {
        return None;
    }
    Some(per_core)
}

/// The admission pass: walk the declared SLOs in ascending core order and
/// decide, for each, whether a placement on the surviving banks can honour
/// it. Deterministic and side-effect free — the caller owns event emission
/// and counter updates.
pub fn admit_cores(
    topo: &Topology,
    mask: &BankMask,
    bank_ways: usize,
    slos: &[Option<SloSpec>],
    params: &WclParams,
    min_budget: Option<u64>,
) -> Vec<AdmissionOutcome> {
    let num_cores = topo.num_cores();
    let mut admitted = vec![false; num_cores];
    let mut out = Vec::new();
    for c in 0..num_cores {
        let Some(slo) = slos.get(c).and_then(|s| s.as_ref()) else {
            continue;
        };
        if let Some(budget) = min_budget {
            if slo.bandwidth_floor > budget {
                out.push(AdmissionOutcome {
                    core: c,
                    admitted: false,
                    bound: None,
                    reason: Some(format!(
                        "bandwidth floor {} exceeds regulator budget {budget}",
                        slo.bandwidth_floor
                    )),
                });
                continue;
            }
        }
        admitted[c] = true;
        let Some(allocs) = allocate_admitted(topo, mask, bank_ways, slos, &admitted) else {
            admitted[c] = false;
            out.push(AdmissionOutcome {
                core: c,
                admitted: false,
                bound: None,
                reason: Some(format!(
                    "insufficient healthy capacity for {} ways",
                    slo.min_ways.max(1)
                )),
            });
            continue;
        };
        let banks: Vec<BankId> = if params.isolated_lookup {
            allocs[c].iter().map(|a| a.bank).collect()
        } else {
            mask.healthy_banks().collect()
        };
        let bound = wcl_bound(params, topo, CoreId(c as u16), &banks);
        if bound <= slo.max_wcl_cycles {
            out.push(AdmissionOutcome {
                core: c,
                admitted: true,
                bound: Some(bound),
                reason: None,
            });
        } else {
            admitted[c] = false;
            out.push(AdmissionOutcome {
                core: c,
                admitted: false,
                bound: Some(bound),
                reason: Some(format!(
                    "wcl bound {bound} exceeds ceiling {}",
                    slo.max_wcl_cycles
                )),
            });
        }
    }
    out
}

/// The deterministic SLO-compliant plan: admitted cores take their
/// `min_ways` from their nearest healthy banks (the same sequential
/// allocation [`admit_cores`] simulated, so the admitted bounds are
/// realized exactly), and best-effort cores split every remaining healthy
/// way evenly — each at least one, remainder to lower ids. `None` when the
/// admitted set is infeasible on the current mask (admission prevents this
/// in normal operation).
pub fn build_qos_plan(
    topo: &Topology,
    mask: &BankMask,
    bank_ways: usize,
    slos: &[Option<SloSpec>],
    admitted: &[bool],
) -> Option<PartitionPlan> {
    let num_cores = topo.num_cores();
    let per_core = allocate_admitted(topo, mask, bank_ways, slos, admitted)?;
    let mut plan = PartitionPlan::empty(num_cores, topo.num_banks(), bank_ways);
    let mut remaining: Vec<usize> = (0..topo.num_banks())
        .map(|b| {
            if mask.is_healthy(BankId(b as u16)) {
                bank_ways
            } else {
                0
            }
        })
        .collect();
    for (c, allocs) in per_core.into_iter().enumerate() {
        for a in &allocs {
            remaining[a.bank.index()] -= a.ways;
        }
        plan.per_core[c] = allocs;
    }
    let best_effort: Vec<usize> = (0..num_cores)
        .filter(|&c| !admitted.get(c).copied().unwrap_or(false))
        .collect();
    if best_effort.is_empty() {
        return Some(plan);
    }
    let left: usize = remaining.iter().sum();
    let base = left / best_effort.len();
    let extra = left % best_effort.len();
    let mut bank = 0usize;
    for (i, &c) in best_effort.iter().enumerate() {
        let mut need = base + usize::from(i < extra);
        while need > 0 {
            while remaining[bank] == 0 {
                bank += 1;
            }
            let take = need.min(remaining[bank]);
            plan.per_core[c].push(BankAllocation {
                bank: BankId(bank as u16),
                ways: take,
            });
            remaining[bank] -= take;
            need -= take;
        }
    }
    Some(plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slo(max_wcl: Cycle, min_ways: usize, floor: u64) -> Option<SloSpec> {
        Some(SloSpec {
            max_wcl_cycles: max_wcl,
            min_ways,
            bandwidth_floor: floor,
        })
    }

    fn params() -> WclParams {
        WclParams {
            noc_queue_bound: 64,
            noc_reg_stall: 0,
            dram_worst: 772,
            dram_reg_stall: 0,
            coherence_extra: 0,
            isolated_lookup: true,
        }
    }

    #[test]
    fn admission_realizes_the_nearest_bank_bound() {
        let topo = Topology::baseline();
        let mask = BankMask::all_healthy(16);
        let mut slos = vec![None; 8];
        slos[0] = slo(10_000, 8, 0);
        let out = admit_cores(&topo, &mask, 8, &slos, &params(), None);
        assert_eq!(out.len(), 1);
        assert!(out[0].admitted);
        // 8 ways fit entirely in core 0's Local bank — the nearest hop.
        let expected = topo.latency(CoreId(0), BankId(0)) + 64 + 772;
        assert_eq!(out[0].bound, Some(expected));
    }

    #[test]
    fn tight_ceiling_is_rejected_with_the_computed_bound() {
        let topo = Topology::baseline();
        let mask = BankMask::all_healthy(16);
        let mut slos = vec![None; 8];
        slos[3] = slo(100, 8, 0);
        let out = admit_cores(&topo, &mask, 8, &slos, &params(), None);
        assert!(!out[0].admitted);
        assert!(out[0].reason.as_ref().unwrap().contains("wcl bound"));
    }

    #[test]
    fn bandwidth_floor_above_the_regulator_budget_is_rejected() {
        let topo = Topology::baseline();
        let mask = BankMask::all_healthy(16);
        let mut slos = vec![None; 8];
        slos[0] = slo(10_000, 1, 16);
        let out = admit_cores(&topo, &mask, 8, &slos, &params(), Some(4));
        assert!(!out[0].admitted);
        assert!(out[0].reason.as_ref().unwrap().contains("bandwidth floor"));
        // No regulator armed: bandwidth is unlimited, the floor is moot.
        let out = admit_cores(&topo, &mask, 8, &slos, &params(), None);
        assert!(out[0].admitted);
    }

    #[test]
    fn best_effort_cores_always_keep_a_way() {
        let topo = Topology::baseline();
        let mask = BankMask::all_healthy(16);
        // Two greedy SLOs wanting 60 ways each: 120 of 128 ways leave 8 for
        // 6 best-effort cores — feasible. A third raises the demand past
        // what the reserve allows and must be rejected.
        let mut slos = vec![None; 8];
        slos[0] = slo(10_000, 60, 0);
        slos[1] = slo(10_000, 60, 0);
        slos[2] = slo(10_000, 8, 0);
        let out = admit_cores(&topo, &mask, 8, &slos, &params(), None);
        assert!(out[0].admitted && out[1].admitted);
        assert!(!out[2].admitted);
        assert!(out[2].reason.as_ref().unwrap().contains("capacity"));
        let admitted = vec![true, true, false, false, false, false, false, false];
        let plan = build_qos_plan(&topo, &mask, 8, &slos, &admitted).unwrap();
        plan.validate_against_mask(&mask).unwrap();
        assert_eq!(plan.ways_of(CoreId(0)), 60);
        assert_eq!(plan.ways_of(CoreId(1)), 60);
        for c in 2..8 {
            assert!(plan.ways_of(CoreId(c)) >= 1, "{plan}");
        }
        assert_eq!(plan.total_ways_used(), 128, "everything healthy is used");
    }

    #[test]
    fn bank_loss_re_admission_degrades_instead_of_lying() {
        let topo = Topology::baseline();
        let mut mask = BankMask::all_healthy(16);
        let mut slos = vec![None; 8];
        slos[0] = slo(10_000, 120, 0);
        let out = admit_cores(&topo, &mask, 8, &slos, &params(), None);
        assert!(out[0].admitted, "120 of 128 ways fits while healthy");
        // Two banks die: 112 ways remain, the 120-way floor is infeasible.
        mask.disable(BankId(0));
        mask.disable(BankId(8));
        let out = admit_cores(&topo, &mask, 8, &slos, &params(), None);
        assert!(!out[0].admitted);
    }

    #[test]
    fn qos_plan_avoids_dead_banks() {
        let topo = Topology::baseline();
        let mut mask = BankMask::all_healthy(16);
        mask.disable(BankId(0));
        let mut slos = vec![None; 8];
        slos[0] = slo(10_000, 8, 0);
        let admitted = vec![true, false, false, false, false, false, false, false];
        let plan = build_qos_plan(&topo, &mask, 8, &slos, &admitted).unwrap();
        plan.validate_against_mask(&mask).unwrap();
        assert_eq!(plan.bank_ways_used(BankId(0)), 0);
        assert_eq!(plan.ways_of(CoreId(0)), 8);
        // Core 0's Local bank is dead; its share lands on the next-nearest
        // healthy bank, and the realized bound reflects the extra hops.
        let b = core_bound(&params(), &topo, &mask, CoreId(0), Some(&plan));
        assert!(b > topo.latency(CoreId(0), BankId(0)) + 64 + 772);
    }

    #[test]
    fn unisolated_bound_ranges_over_every_healthy_bank() {
        let topo = Topology::baseline();
        let mask = BankMask::all_healthy(16);
        let p = WclParams {
            isolated_lookup: false,
            ..params()
        };
        let mut slos = vec![None; 8];
        slos[0] = slo(10_000, 8, 0);
        let admitted = vec![true, false, false, false, false, false, false, false];
        let plan = build_qos_plan(&topo, &mask, 8, &slos, &admitted).unwrap();
        let bound = core_bound(&p, &topo, &mask, CoreId(0), Some(&plan));
        let worst_hop = (0..16)
            .map(|b| topo.latency(CoreId(0), BankId(b)))
            .max()
            .unwrap();
        assert_eq!(bound, worst_hop + 64 + 772);
    }
}

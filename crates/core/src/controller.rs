//! The epoch-driven dynamic repartitioning controller.
//!
//! Per the paper's methodology (§IV): L2 accesses stream through per-core
//! MSA profilers; every `epoch_cycles` (100 M in the paper) the controller
//! reads the histograms, recomputes the partition with the configured
//! policy and applies it, then decays the histograms so the profile tracks
//! phase changes.
//!
//! # Graceful degradation
//!
//! The controller tracks the live [`BankMask`] and survives bank losses,
//! corrupted profiles and solver failures. Curves are sanitised before any
//! solve, and when the Bank-aware solver cannot produce a plan the
//! controller walks a **degradation ladder** instead of panicking:
//!
//! 1. if the currently-installed plan is still valid on the surviving
//!    banks, keep it (no repartition this epoch);
//! 2. else strip the dead banks from it ([`PartitionPlan::restricted_to_mask`])
//!    and install the repaired plan if it remains structurally valid;
//! 3. else fall back to an equal split of the *healthy* capacity.
//!
//! Every rung taken is counted in [`FaultCounters`] so experiments can
//! report how often the system ran degraded.
//!
//! # Temporal stability
//!
//! On top of the spatial ladder, the controller carries the control-loop
//! robustness layer configured by [`bap_types::ControlConfig`]:
//!
//! * **decision budget** — the solve runs under a deterministic
//!   [`SolveBudget`]; Center-phase exhaustion (and an expired wall-clock
//!   stage deadline) *sheds* the decision — the last-good plan stays in
//!   force and `FaultCounters::budget_sheds` counts it — while Local-phase
//!   exhaustion closes out early from a consistent checkpoint inside the
//!   solver itself;
//! * **anti-thrash hysteresis** — a candidate plan is installed only when
//!   its projected miss reduction clears a migration-cost threshold;
//!   repeated A↔B flip-flops trigger an exponential hold-off during which
//!   solves are skipped entirely, and a curve-delta phase detector bypasses
//!   both the gate and the hold-off when the workload genuinely shifts.
//!
//! With the default (disabled) hysteresis and unlimited budget this layer
//! is behaviour-neutral: plans, counters and traces are bit-identical to
//! the classic controller.

use crate::bank_aware::{
    try_bank_aware_partition_budgeted, BankAwareConfig, PartitionError, SolveBudget,
};
use crate::incremental::{IncrementalSolver, IncrementalStats};
use crate::projection::projected_plan_misses;
use crate::qos::{self, QosState};
use bap_cache::{BankAllocation, PartitionPlan};
use bap_fault::{CoreDegradeLedger, FaultCounters};
use bap_msa::{curves_delta, MissRatioCurve, ProfilerConfig, StackProfiler};
use bap_trace::{EventKind, Tracer};
use bap_types::{
    BankId, BankMask, BlockAddr, ControlConfig, CoreId, Cycle, DegradedTopology, SloSpec, Topology,
    WclParams,
};

/// Which partitioning policy the system runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// Fully shared LRU cache (the *No-partitions* baseline).
    NoPartition,
    /// Static private halves: 2 banks (16 ways) per core.
    Equal,
    /// The paper's dynamic Bank-aware partitioning.
    BankAware,
}

/// Which path produced the currently installed plan. The online invariant
/// guard keys its rule checks off this: only solver-produced plans promise
/// the full Bank-aware Rules 1–3 (the ladder's repair and equal-fallback
/// rungs trade rule conformance for survival, by design).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum PlanSource {
    /// No plan installed yet.
    #[default]
    None,
    /// The Equal policy's static split.
    Equal,
    /// The Bank-aware solver (rule-conforming by construction).
    Solver,
    /// Ladder rung 2: a previous solver plan with dead banks stripped.
    Repair,
    /// Ladder rung 3: equal split of the healthy capacity.
    EqualFallback,
    /// The SLO enforcement pass replaced a violating candidate (exempt from
    /// the solver-only rule checks, like the ladder's outputs).
    Slo,
}

impl PlanSource {
    /// Stable lower-case label (wire protocol `source` fields, reports).
    pub fn label(&self) -> &'static str {
        match self {
            PlanSource::None => "none",
            PlanSource::Equal => "equal",
            PlanSource::Solver => "solver",
            PlanSource::Repair => "repair",
            PlanSource::EqualFallback => "equal_fallback",
            PlanSource::Slo => "slo",
        }
    }
}

/// The mutable hysteresis state machine (serialized with the controller so
/// checkpoint/restore resumes hold-offs and flip histories exactly).
#[derive(Clone, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
struct HysteresisState {
    /// Signatures of recently *installed* plans, oldest first.
    plan_sigs: Vec<u64>,
    /// Consecutive A↔B alternations observed.
    flips: u32,
    /// Solves are skipped while `epochs <= holdoff_until`.
    holdoff_until: u64,
    /// Hold-off re-entry level (drives the exponential back-off).
    holdoff_level: u32,
    /// The curves at the last install — the phase detector's baseline.
    curves_at_install: Option<Vec<MissRatioCurve>>,
}

/// Deterministic signature of a plan's physical shape, for flip-flop
/// detection — [`PartitionPlan::fingerprint`], which is process-stable
/// (unlike `DefaultHasher`) and shared with the serve wire protocol so
/// server clients and the hysteresis gate agree on plan identity.
fn plan_signature(plan: &PartitionPlan) -> u64 {
    plan.fingerprint()
}

/// The controller: per-core profilers plus the repartitioning logic.
#[derive(Clone, Debug)]
pub struct Controller {
    policy: Policy,
    profilers: Vec<StackProfiler>,
    topo: Topology,
    mask: BankMask,
    bank_ways: usize,
    cfg: BankAwareConfig,
    control: ControlConfig,
    epochs: u64,
    last_plan: Option<PartitionPlan>,
    plan_source: PlanSource,
    hyst: HysteresisState,
    counters: FaultCounters,
    ledger: CoreDegradeLedger,
    qos: Option<QosState>,
    incr: IncrementalSolver,
    tracer: Tracer,
}

impl Controller {
    /// Build a controller. `profiler_cfg` is applied per core (use
    /// [`ProfilerConfig::paper_hardware`] for the 12-bit/1-in-32
    /// configuration, or a reference profiler in experiments that isolate
    /// the algorithm from profiling error).
    pub fn new(
        policy: Policy,
        topo: Topology,
        bank_ways: usize,
        profiler_cfg: ProfilerConfig,
        cfg: BankAwareConfig,
    ) -> Self {
        let profilers = (0..topo.num_cores())
            .map(|_| StackProfiler::new(profiler_cfg))
            .collect();
        let mask = BankMask::all_healthy(topo.num_banks());
        let num_cores = topo.num_cores();
        Controller {
            policy,
            profilers,
            topo,
            mask,
            bank_ways,
            cfg,
            control: ControlConfig::default(),
            epochs: 0,
            last_plan: None,
            plan_source: PlanSource::None,
            hyst: HysteresisState::default(),
            counters: FaultCounters::default(),
            ledger: CoreDegradeLedger::new(num_cores),
            qos: None,
            incr: IncrementalSolver::new(),
            tracer: Tracer::off(),
        }
    }

    /// Attach a trace handle; all subsequent solves, ladder decisions and
    /// curve repairs are emitted through it.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Configure the control-loop robustness layer (decision budget +
    /// hysteresis). Defaults are behaviour-neutral; call before the run
    /// starts — changing thresholds mid-flight is legal but resets no
    /// state.
    pub fn set_control(&mut self, control: ControlConfig) {
        self.control = control;
    }

    /// The active control-loop configuration.
    pub fn control(&self) -> &ControlConfig {
        &self.control
    }

    /// Which path produced the currently installed plan.
    pub fn plan_source(&self) -> PlanSource {
        self.plan_source
    }

    /// Whether a flip-flop hold-off is active at the current epoch.
    pub fn in_holdoff(&self) -> bool {
        self.control.hysteresis.enabled && self.epochs <= self.hyst.holdoff_until
    }

    /// The active policy.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// Epochs elapsed.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// The controller's view of bank health.
    pub fn mask(&self) -> &BankMask {
        &self.mask
    }

    /// Fault-handling counters accumulated so far.
    pub fn counters(&self) -> FaultCounters {
        self.counters
    }

    /// The plan most recently produced (and presumed installed).
    pub fn last_plan(&self) -> Option<&PartitionPlan> {
        self.last_plan.as_ref()
    }

    /// Zero the fault-handling counters (and the per-core capacity-loss
    /// ledger). Called at run start so counters in a `RunResult` describe
    /// that run only, not earlier runs of a reused controller. The
    /// warm-start statistics reset too, but the warm *cache* survives —
    /// back-to-back runs on one machine stay warm.
    pub fn reset_counters(&mut self) {
        self.counters = FaultCounters::default();
        self.ledger = CoreDegradeLedger::new(self.topo.num_cores());
        self.incr.reset_stats();
    }

    /// Warm-start statistics accumulated by the incremental solver (all
    /// zero when [`bap_types::IncrementalConfig`] is disabled).
    pub fn incremental_stats(&self) -> IncrementalStats {
        self.incr.stats()
    }

    /// The per-core capacity-loss ledger: which cores the degradation
    /// ladder and the SLO enforcement pass took ways from.
    pub fn core_degrades(&self) -> &CoreDegradeLedger {
        &self.ledger
    }

    /// Declare the QoS tier: per-core SLOs, the machine constants of the
    /// analytic WCL bound and the smallest armed regulator budget (`None`
    /// when no regulator is armed). Runs the initial admission pass
    /// immediately — every verdict is emitted and rejected SLOs counted.
    /// An empty `slos` (the default [`bap_types::QosConfig`]) leaves the
    /// controller bit-identical to a QoS-free run.
    pub fn set_qos(
        &mut self,
        slos: Vec<Option<SloSpec>>,
        params: WclParams,
        min_budget: Option<u64>,
    ) {
        let state = QosState::new(slos, params, min_budget, self.topo.num_cores());
        if !state.has_slos() {
            self.qos = None;
            return;
        }
        self.qos = Some(state);
        self.readmit();
    }

    /// The QoS state, when SLOs are declared (the guard's `SloWcl` check
    /// reads the admitted set and WCL parameters through this).
    pub fn qos(&self) -> Option<&QosState> {
        self.qos.as_ref()
    }

    /// Whether `core`'s declared SLO is currently admitted.
    pub fn slo_admitted(&self, core: CoreId) -> bool {
        self.qos
            .as_ref()
            .map(|q| q.admitted.get(core.index()).copied().unwrap_or(false))
            .unwrap_or(false)
    }

    /// The live analytic WCL bound per core (`None` for best-effort or
    /// rejected cores) — what an admitted core is *guaranteed*, given the
    /// installed plan and the current mask.
    pub fn slo_bounds(&self) -> Vec<Option<Cycle>> {
        let n = self.topo.num_cores();
        let Some(q) = &self.qos else {
            return vec![None; n];
        };
        (0..n)
            .map(|c| {
                if q.admitted.get(c).copied().unwrap_or(false) {
                    Some(qos::core_bound(
                        &q.params,
                        &self.topo,
                        &self.mask,
                        CoreId(c as u16),
                        self.last_plan.as_ref(),
                    ))
                } else {
                    None
                }
            })
            .collect()
    }

    /// Re-run admission under the current mask, reporting verdicts. The
    /// first pass reports everything; later passes report (and count) only
    /// status changes, so a stable run stays quiet.
    fn readmit(&mut self) {
        let Some(mut q) = self.qos.take() else { return };
        let outcomes = qos::admit_cores(
            &self.topo,
            &self.mask,
            self.bank_ways,
            &q.slos,
            &q.params,
            q.min_budget,
        );
        let first = !q.evaluated;
        q.evaluated = true;
        for o in outcomes {
            let was = q.admitted[o.core];
            if o.admitted && (first || !was) {
                let bound = o.bound.unwrap_or(0);
                self.tracer.emit(|| EventKind::SloAdmitted {
                    core: o.core,
                    bound,
                });
            } else if !o.admitted && (first || was) {
                let reason = o.reason.clone().unwrap_or_default();
                self.tracer.emit(|| EventKind::SloRejected {
                    core: o.core,
                    reason,
                });
                self.counters.slo_rejections += 1;
            }
            q.admitted[o.core] = o.admitted;
        }
        self.qos = Some(q);
    }

    /// The SLO choke point every plan decision flows through: re-admit
    /// under the current mask, then verify the would-be-effective plan
    /// honours every admitted SLO (capacity floor + WCL ceiling). A
    /// violating decision is replaced by the deterministic QoS plan,
    /// demoting best-effort cores; the demotions are recorded per core in
    /// the capacity-loss ledger. A no-op without declared SLOs.
    fn enforce_slo(&mut self, candidate: Option<PartitionPlan>) -> Option<PartitionPlan> {
        if self.qos.as_ref().is_none_or(|q| !q.has_slos()) {
            return candidate;
        }
        self.readmit();
        let q = self.qos.clone().expect("qos state present");
        let effective: Option<PartitionPlan> = candidate.clone().or_else(|| self.last_plan.clone());
        let mut violated = 0usize;
        for c in 0..self.topo.num_cores() {
            if !q.admitted.get(c).copied().unwrap_or(false) {
                continue;
            }
            let slo = q.slos[c].as_ref().expect("admitted implies declared");
            let ok = match &effective {
                Some(p) => {
                    p.ways_of(CoreId(c as u16)) >= slo.min_ways
                        && qos::core_bound(
                            &q.params,
                            &self.topo,
                            &self.mask,
                            CoreId(c as u16),
                            Some(p),
                        ) <= slo.max_wcl_cycles
                }
                None => {
                    slo.min_ways == 0
                        && qos::core_bound(
                            &q.params,
                            &self.topo,
                            &self.mask,
                            CoreId(c as u16),
                            None,
                        ) <= slo.max_wcl_cycles
                }
            };
            if !ok {
                violated += 1;
            }
        }
        if violated == 0 {
            return candidate;
        }
        let Some(plan) =
            qos::build_qos_plan(&self.topo, &self.mask, self.bank_ways, &q.slos, &q.admitted)
        else {
            // Admission guaranteed feasibility for the admitted set; if the
            // build still fails the candidate is the best we have.
            return candidate;
        };
        let mut demoted = 0usize;
        if let Some(prev) = &effective {
            for c in 0..self.topo.num_cores() {
                let before = prev.ways_of(CoreId(c as u16));
                let after = plan.ways_of(CoreId(c as u16));
                if after < before {
                    self.ledger.record(c, (before - after) as u64);
                    demoted += 1;
                }
            }
        }
        self.counters.slo_enforcements += 1;
        self.tracer.emit(|| EventKind::SloEnforced {
            violations: violated,
            demoted,
        });
        self.emit_assignment("slo_enforce", Some(&plan));
        self.plan_source = PlanSource::Slo;
        self.last_plan = Some(plan.clone());
        Some(plan)
    }

    /// Run SLO enforcement immediately against the current state, outside
    /// any epoch boundary. Used right after SLO declaration so admitted
    /// cores hold their capacity floor from the very first access, not
    /// from the first repartitioning. Returns a plan to install when the
    /// state in force violates an admitted SLO.
    pub fn enforce_slo_now(&mut self) -> Option<PartitionPlan> {
        self.enforce_slo(None)
    }

    /// Serialize the controller's dynamic state (profilers, mask, epoch
    /// count, last plan, fault counters) for checkpointing. Policy,
    /// topology and solver configuration are rebuilt from the run options.
    pub fn snapshot(&self) -> serde::Value {
        serde::Value::Object(vec![
            (
                "profilers".to_string(),
                serde::Serialize::to_value(&self.profilers),
            ),
            ("mask".to_string(), serde::Serialize::to_value(&self.mask)),
            (
                "epochs".to_string(),
                serde::Serialize::to_value(&self.epochs),
            ),
            (
                "last_plan".to_string(),
                serde::Serialize::to_value(&self.last_plan),
            ),
            (
                "counters".to_string(),
                serde::Serialize::to_value(&self.counters),
            ),
            (
                "plan_source".to_string(),
                serde::Serialize::to_value(&self.plan_source),
            ),
            (
                "hysteresis".to_string(),
                serde::Serialize::to_value(&self.hyst),
            ),
            (
                "ledger".to_string(),
                serde::Serialize::to_value(&self.ledger),
            ),
            (
                "slo_admitted".to_string(),
                serde::Serialize::to_value(
                    &self
                        .qos
                        .as_ref()
                        .map(|q| q.admitted.clone())
                        .unwrap_or_default(),
                ),
            ),
            (
                "incremental".to_string(),
                serde::Serialize::to_value(&self.incr),
            ),
        ])
    }

    /// Overwrite the dynamic state from a [`Controller::snapshot`] payload
    /// taken on an identically-configured controller.
    pub fn restore(&mut self, v: &serde::Value) -> Result<(), serde::Error> {
        let profilers: Vec<StackProfiler> = serde::from_field(v, "profilers")?;
        if profilers.len() != self.profilers.len() {
            return Err(serde::Error::msg("controller core count mismatch"));
        }
        self.profilers = profilers;
        self.mask = serde::from_field(v, "mask")?;
        self.epochs = serde::from_field(v, "epochs")?;
        self.last_plan = serde::from_field(v, "last_plan")?;
        self.counters = serde::from_field(v, "counters")?;
        self.plan_source = serde::from_field(v, "plan_source")?;
        self.hyst = serde::from_field(v, "hysteresis")?;
        // QoS state is absent from pre-QoS snapshots; default to empty.
        self.ledger = serde::from_field_or_default(v, "ledger")?;
        let admitted: Vec<bool> = serde::from_field_or_default(v, "slo_admitted")?;
        if let Some(q) = &mut self.qos {
            if admitted.len() == q.admitted.len() {
                q.admitted = admitted;
                q.evaluated = true;
            }
        }
        // Absent from pre-incremental snapshots; a default (cold) solver is
        // always safe — the first solve after restore just runs cold.
        self.incr = serde::from_field_or_default(v, "incremental")?;
        Ok(())
    }

    /// Feed one L2 access into `core`'s profiler (called on every L2
    /// access, hit or miss — MSA monitors the access stream).
    #[inline]
    pub fn observe(&mut self, core: CoreId, block: BlockAddr) {
        self.profilers[core.index()].observe(block);
    }

    /// Direct access to a profiler (experiments).
    pub fn profiler(&self, core: CoreId) -> &StackProfiler {
        &self.profilers[core.index()]
    }

    /// Current miss-ratio curves, scaled for set sampling.
    pub fn curves(&self) -> Vec<MissRatioCurve> {
        self.profilers
            .iter()
            .map(|p| MissRatioCurve::from_histogram(p.histogram(), p.scale()))
            .collect()
    }

    /// Record that `bank` went offline. The *next* plan (from
    /// [`Controller::replan_for_mask`] or the next epoch boundary) excludes
    /// it; callers flush the bank itself.
    pub fn bank_failed(&mut self, bank: BankId) {
        if self.mask.disable(bank) {
            self.counters.banks_failed += 1;
        }
    }

    /// Record that `bank` is usable again.
    pub fn bank_restored(&mut self, bank: BankId) {
        if self.mask.enable(bank) {
            self.counters.banks_restored += 1;
        }
    }

    /// An epoch boundary whose repartitioning trigger was lost (injected
    /// fault): time passes but no profile is read, no plan is computed and
    /// no decay happens.
    pub fn skip_epoch(&mut self) {
        self.epochs += 1;
    }

    /// Close an epoch: compute the new plan (if the policy is dynamic) and
    /// decay the profilers. Returns `None` when the policy keeps whatever
    /// configuration is already in force (NoPartition always; Equal after
    /// the first epoch; BankAware when the degradation ladder decides the
    /// installed plan is still the best available).
    pub fn epoch_boundary(&mut self) -> Option<PartitionPlan> {
        let curves = self.curves();
        self.epoch_boundary_with_curves(curves)
    }

    /// [`Controller::epoch_boundary`] with externally supplied curves —
    /// the fault-injection path, where the transport from the profilers may
    /// have corrupted them. Curves are sanitised before use.
    pub fn epoch_boundary_with_curves(
        &mut self,
        curves: Vec<MissRatioCurve>,
    ) -> Option<PartitionPlan> {
        self.epoch_boundary_with_curves_deadline(curves, None)
    }

    /// [`Controller::epoch_boundary_with_curves`] under a wall-clock stage
    /// deadline (the `max_epoch_nanos` half of the decision budget). The
    /// deadline is checked at the stage boundary between curve sanitisation
    /// and the solve: an overrun sheds the decision to the last-good plan.
    /// `None` — the deterministic default — never sheds.
    pub fn epoch_boundary_with_curves_deadline(
        &mut self,
        curves: Vec<MissRatioCurve>,
        deadline: Option<std::time::Instant>,
    ) -> Option<PartitionPlan> {
        self.epochs += 1;
        let plan = match self.policy {
            Policy::NoPartition => None,
            Policy::Equal => {
                if self.epochs == 1 {
                    let p = self.equal_plan();
                    self.emit_assignment("equal", p.as_ref());
                    if p.is_some() {
                        self.plan_source = PlanSource::Equal;
                    }
                    self.last_plan = p.clone();
                    p
                } else {
                    None
                }
            }
            Policy::BankAware => self.bank_aware_epoch(curves, deadline),
        };
        let plan = self.enforce_slo(plan);
        for p in &mut self.profilers {
            p.decay();
        }
        plan
    }

    /// One Bank-aware epoch decision: sanitise, check the stage deadline,
    /// honour an active hold-off (unless the phase detector overrides it),
    /// then solve under the step budget and run the candidate through the
    /// hysteresis gate.
    fn bank_aware_epoch(
        &mut self,
        mut curves: Vec<MissRatioCurve>,
        deadline: Option<std::time::Instant>,
    ) -> Option<PartitionPlan> {
        self.sanitize_curves(&mut curves);
        if let Some(d) = deadline {
            if std::time::Instant::now() >= d {
                return self.shed_decision(0, "deadline");
            }
        }
        let h = self.control.hysteresis;
        if h.enabled && self.epochs <= self.hyst.holdoff_until {
            // In hold-off the solve is skipped outright — that is the
            // damping — unless the curves have genuinely changed phase
            // since the last install.
            let delta = self
                .hyst
                .curves_at_install
                .as_ref()
                .map(|prev| curves_delta(&curves, prev))
                .unwrap_or(f64::INFINITY);
            if delta > h.phase_delta_threshold {
                self.tracer.emit(|| EventKind::PhaseChange { delta });
                self.counters.phase_bypasses += 1;
                self.reset_flip_state();
                // The workload moved: follow it unconditionally. Solving
                // gated here would re-detect (and double-count) the same
                // phase change inside the install gate.
                self.snapshot_curves(&curves);
                return self.solve_bank_aware(&curves, false);
            }
            let remaining = self.hyst.holdoff_until - self.epochs;
            self.tracer.emit(|| EventKind::HoldOffSkipped { remaining });
            return None;
        }
        self.snapshot_curves(&curves);
        self.solve_bank_aware(&curves, true)
    }

    /// Forget the flip history after a genuine phase change: the new phase
    /// starts with a clean slate (including the exponential back-off level).
    fn reset_flip_state(&mut self) {
        self.hyst.plan_sigs.clear();
        self.hyst.flips = 0;
        self.hyst.holdoff_until = 0;
        self.hyst.holdoff_level = 0;
    }

    /// Recompute a plan for the *current* mask outside the epoch cadence —
    /// called right after a bank transition so the system is not left
    /// running an invalid assignment until the next boundary. Does not
    /// advance the epoch count or decay the profilers.
    pub fn replan_for_mask(&mut self) -> Option<PartitionPlan> {
        let plan = match self.policy {
            Policy::NoPartition => None,
            Policy::Equal => {
                let p = self.equal_plan();
                self.emit_assignment("equal", p.as_ref());
                if p.is_some() {
                    self.plan_source = PlanSource::Equal;
                }
                self.last_plan = p.clone();
                p
            }
            Policy::BankAware => {
                let mut curves = self.curves();
                self.sanitize_curves(&mut curves);
                self.snapshot_curves(&curves);
                // Ungated: the mask changed, so the installed plan is stale
                // by construction — hysteresis must not dampen a correction.
                self.solve_bank_aware(&curves, false)
            }
        };
        self.enforce_slo(plan)
    }

    fn sanitize_curves(&mut self, curves: &mut [MissRatioCurve]) {
        for (i, c) in curves.iter_mut().enumerate() {
            if !c.sanitize_traced(i, &self.tracer).is_clean() {
                self.counters.curves_repaired += 1;
            }
        }
    }

    /// Emit the post-sanitize curves the solver is about to see — the
    /// replay contract: rebuilding these snapshots and re-solving must
    /// reproduce the [`EventKind::AssignmentComputed`] that follows.
    fn snapshot_curves(&self, curves: &[MissRatioCurve]) {
        if !self.tracer.is_enabled() {
            return;
        }
        for (i, c) in curves.iter().enumerate() {
            c.emit_snapshot(i, &self.tracer);
        }
    }

    fn emit_assignment(&self, policy: &str, plan: Option<&PartitionPlan>) {
        if let Some(plan) = plan {
            self.tracer.emit(|| EventKind::AssignmentComputed {
                policy: policy.to_string(),
                ways: (0..self.topo.num_cores())
                    .map(|c| plan.ways_of(CoreId(c as u16)))
                    .collect(),
            });
        }
    }

    fn solve_bank_aware(
        &mut self,
        curves: &[MissRatioCurve],
        gated: bool,
    ) -> Option<PartitionPlan> {
        let machine = DegradedTopology::new(self.topo.clone(), self.mask);
        let t0 = self.tracer.is_enabled().then(std::time::Instant::now);
        let budget = SolveBudget::steps(self.control.budget.max_solver_steps);
        let solved = if self.control.incremental.enabled {
            self.incr.solve(
                curves,
                &machine,
                self.bank_ways,
                &self.cfg,
                &self.tracer,
                budget,
                self.control.incremental.delta_threshold,
            )
        } else {
            try_bank_aware_partition_budgeted(
                curves,
                &machine,
                self.bank_ways,
                &self.cfg,
                &self.tracer,
                budget,
            )
        };
        if let Some(t0) = t0 {
            self.tracer
                .timing_masked("solve", t0.elapsed().as_nanos() as u64, self.mask.bits());
        }
        match solved {
            Ok(plan) => self.consider_install(plan, curves, gated),
            Err(PartitionError::BudgetExhausted { steps }) => self.shed_decision(steps, "steps"),
            Err(e) => {
                self.tracer.emit(|| EventKind::SolverFailed {
                    error: e.to_string(),
                });
                self.counters.solver_failures += 1;
                self.degraded_fallback()
            }
        }
    }

    /// Shed this epoch's decision on budget exhaustion: the last-good plan
    /// stays in force when it is still valid on the surviving banks;
    /// otherwise (a shed colliding with fresh damage) the degradation
    /// ladder finds the best surviving configuration.
    fn shed_decision(&mut self, steps: u64, limit: &'static str) -> Option<PartitionPlan> {
        self.tracer.emit(|| EventKind::BudgetShed {
            steps,
            limit: limit.to_string(),
        });
        self.counters.budget_sheds += 1;
        match &self.last_plan {
            Some(prev) if prev.validate_against_mask(&self.mask).is_ok() => None,
            _ => self.degraded_fallback(),
        }
    }

    /// Run a solver-produced candidate through the anti-thrash gate (when
    /// `gated` and hysteresis is enabled), then install it and update the
    /// flip-flop state machine.
    fn consider_install(
        &mut self,
        plan: PartitionPlan,
        curves: &[MissRatioCurve],
        gated: bool,
    ) -> Option<PartitionPlan> {
        let h = self.control.hysteresis;
        if !(gated && h.enabled) {
            if h.enabled {
                self.note_install(&plan, curves);
            }
            self.plan_source = PlanSource::Solver;
            self.last_plan = Some(plan.clone());
            return Some(plan);
        }
        if let Some(prev) = &self.last_plan {
            if *prev == plan {
                // The solver re-derived the installed plan: nothing to do,
                // and nothing the gate needs to count.
                return None;
            }
            let keep = projected_plan_misses(curves, prev);
            let gain = keep - projected_plan_misses(curves, &plan);
            let churn = plan.way_churn(prev);
            let threshold = h.min_improvement_frac * keep + h.migration_cost_per_way * churn as f64;
            let delta = self
                .hyst
                .curves_at_install
                .as_ref()
                .map(|p| curves_delta(curves, p))
                .unwrap_or(f64::INFINITY);
            if delta > h.phase_delta_threshold {
                // Genuine workload shift: follow it, and give the new phase
                // a clean flip history.
                self.tracer.emit(|| EventKind::PhaseChange { delta });
                self.counters.phase_bypasses += 1;
                self.reset_flip_state();
            } else if gain <= threshold {
                self.tracer.emit(|| EventKind::PlanHeld {
                    projected_gain: gain,
                    threshold,
                    churn_ways: churn,
                });
                self.counters.plans_held += 1;
                return None;
            }
        }
        self.note_install(&plan, curves);
        self.plan_source = PlanSource::Solver;
        self.last_plan = Some(plan.clone());
        Some(plan)
    }

    /// Record an install into the flip-flop state machine and arm the
    /// exponential hold-off when the A↔B pattern crosses the threshold.
    fn note_install(&mut self, plan: &PartitionPlan, curves: &[MissRatioCurve]) {
        let h = self.control.hysteresis;
        let sig = plan_signature(plan);
        let sigs = &mut self.hyst.plan_sigs;
        let n = sigs.len();
        // A flip is A→B→A: the new plan equals the one before last but not
        // the last. Anything else breaks the alternation pattern.
        let flip = n >= 2 && sigs[n - 2] == sig && sigs[n - 1] != sig;
        self.hyst.flips = if flip { self.hyst.flips + 1 } else { 0 };
        sigs.push(sig);
        let window = h.flip_window.max(2);
        while sigs.len() > window {
            sigs.remove(0);
        }
        self.hyst.curves_at_install = Some(curves.to_vec());
        if self.hyst.flips >= h.flip_threshold && h.flip_threshold > 0 {
            self.hyst.holdoff_level += 1;
            let level = self.hyst.holdoff_level;
            let epochs = h.holdoff_epochs(level);
            self.hyst.holdoff_until = self.epochs + epochs;
            self.hyst.flips = 0;
            self.tracer
                .emit(|| EventKind::HoldOffStarted { epochs, level });
            self.counters.holdoffs += 1;
        }
    }

    /// Escalation entry point for the online invariant guard: walk the
    /// degradation ladder exactly as if a solve had failed, returning a
    /// repaired plan to install when the ladder produces one.
    pub fn guard_escalate(&mut self) -> Option<PartitionPlan> {
        let plan = self.degraded_fallback();
        self.enforce_slo(plan)
    }

    /// The degradation ladder, walked when the solver fails.
    ///
    /// Each rung emits its trace event *before* touching the counters:
    /// replaying a trace must observe rung decisions in exactly the order
    /// the ledger accumulated them, so the event is the primary record and
    /// the counter mutation follows it.
    fn degraded_fallback(&mut self) -> Option<PartitionPlan> {
        let prev_ways: Option<Vec<usize>> = self.last_plan.as_ref().map(|p| {
            (0..self.topo.num_cores())
                .map(|c| p.ways_of(CoreId(c as u16)))
                .collect()
        });
        if let Some(prev) = &self.last_plan {
            // Rung 1: the installed plan survived the damage — keep it.
            if prev.validate_against_mask(&self.mask).is_ok() {
                self.tracer.emit(|| EventKind::DegradationRung { rung: 1 });
                self.counters.plan_reuses += 1;
                return None;
            }
            // Rung 2: strip dead banks from it; if every core still has
            // capacity, run the repaired plan.
            let repaired = prev.restricted_to_mask(&self.mask);
            if repaired.validate_against_mask(&self.mask).is_ok() {
                self.tracer.emit(|| EventKind::DegradationRung { rung: 2 });
                self.counters.plan_repairs += 1;
                self.record_capacity_losses(prev_ways.as_deref(), &repaired);
                self.emit_assignment("plan_repair", Some(&repaired));
                self.plan_source = PlanSource::Repair;
                self.last_plan = Some(repaired.clone());
                return Some(repaired);
            }
        }
        // Rung 3: equal split of whatever capacity is left.
        self.tracer.emit(|| EventKind::DegradationRung { rung: 3 });
        self.counters.equal_fallbacks += 1;
        let p = self.equal_plan();
        self.emit_assignment("equal_fallback", p.as_ref());
        if let Some(plan) = &p {
            self.record_capacity_losses(prev_ways.as_deref(), plan);
            self.plan_source = PlanSource::EqualFallback;
            self.last_plan = p.clone();
        }
        p
    }

    /// Ledger the per-core damage of swapping the previous plan for `new`:
    /// every core whose total shrinks is charged the difference.
    fn record_capacity_losses(&mut self, prev_ways: Option<&[usize]>, new: &PartitionPlan) {
        let Some(prev_ways) = prev_ways else { return };
        for (c, &before) in prev_ways.iter().enumerate() {
            let after = new.ways_of(CoreId(c as u16));
            if after < before {
                self.ledger.record(c, (before - after) as u64);
            }
        }
    }

    /// The Equal policy's plan for the current mask: the paper's private
    /// 2-banks-per-core split when everything is healthy, otherwise an
    /// even division of the healthy ways (each core a contiguous run of
    /// healthy-bank ways; no physical-rule aspirations — this is the
    /// last-resort safety net).
    fn equal_plan(&self) -> Option<PartitionPlan> {
        let n = self.topo.num_cores();
        if self.mask.is_full() {
            return Some(PartitionPlan::equal(
                n,
                self.topo.num_banks(),
                self.bank_ways,
            ));
        }
        let healthy: Vec<BankId> = self.mask.healthy_banks().collect();
        let total = healthy.len() * self.bank_ways;
        if total < n {
            return None; // fewer ways than cores: nothing sane to install
        }
        let base = total / n;
        let extra = total % n;
        let mut plan = PartitionPlan::empty(n, self.topo.num_banks(), self.bank_ways);
        let mut bi = 0usize;
        let mut left = self.bank_ways;
        for c in 0..n {
            let mut need = base + usize::from(c < extra);
            while need > 0 {
                let take = need.min(left);
                plan.per_core[c].push(BankAllocation {
                    bank: healthy[bi],
                    ways: take,
                });
                need -= take;
                left -= take;
                if left == 0 && bi + 1 < healthy.len() {
                    bi += 1;
                    left = self.bank_ways;
                }
            }
        }
        Some(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bap_core_test_util::feed_knee_profile;
    use bap_msa::EngineKind;

    /// Local helper module so the feeding logic is shared across tests.
    mod bap_core_test_util {
        use super::*;

        /// Feed `core`'s profiler a stream whose MSA curve has a knee at
        /// roughly `knee_ways` (per-set distances 0..knee_ways uniformly).
        pub fn feed_knee_profile(
            ctl: &mut Controller,
            core: CoreId,
            knee_ways: usize,
            accesses: u64,
        ) {
            // Round-robin sets, cycling block tags to produce uniform stack
            // distances within 0..knee_ways.
            let sets = 64u64;
            for i in 0..accesses {
                let set = i % sets;
                let tag = (i / sets) % knee_ways as u64;
                ctl.observe(core, BlockAddr(tag * sets + set));
            }
        }
    }

    fn controller(policy: Policy) -> Controller {
        Controller::new(
            policy,
            Topology::baseline(),
            8,
            ProfilerConfig::reference(64, 72),
            BankAwareConfig::default(),
        )
    }

    #[test]
    fn no_partition_never_emits_plans() {
        let mut c = controller(Policy::NoPartition);
        assert_eq!(c.epoch_boundary(), None);
        assert_eq!(c.epoch_boundary(), None);
        assert_eq!(c.epochs(), 2);
    }

    #[test]
    fn equal_emits_once() {
        let mut c = controller(Policy::Equal);
        let p = c.epoch_boundary().expect("first epoch applies the plan");
        assert_eq!(p.ways_of(CoreId(0)), 16);
        assert_eq!(c.epoch_boundary(), None);
    }

    #[test]
    fn bank_aware_adapts_to_observed_appetites() {
        let mut c = controller(Policy::BankAware);
        // Core 0 shows a deep working set; others shallow.
        feed_knee_profile(&mut c, CoreId(0), 60, 60_000);
        for i in 1..8 {
            feed_knee_profile(&mut c, CoreId(i), 3, 20_000);
        }
        let plan = c.epoch_boundary().expect("bank-aware emits every epoch");
        assert!(
            plan.ways_of(CoreId(0)) >= 32,
            "deep-reuse core gets a large share: {plan}"
        );
        assert_eq!(plan.total_ways_used(), 128);
    }

    #[test]
    fn decay_lets_the_profile_track_phases() {
        let mut c = controller(Policy::BankAware);
        feed_knee_profile(&mut c, CoreId(0), 60, 60_000);
        for i in 1..8 {
            feed_knee_profile(&mut c, CoreId(i), 3, 20_000);
        }
        let first = c.epoch_boundary().unwrap();
        assert!(first.ways_of(CoreId(0)) >= 32);
        // Phase change: core 0 goes quiet, core 1 becomes hungry. After a
        // few decayed epochs the assignment follows.
        for _ in 0..6 {
            feed_knee_profile(&mut c, CoreId(1), 60, 60_000);
            c.epoch_boundary();
        }
        feed_knee_profile(&mut c, CoreId(1), 60, 60_000);
        let later = c.epoch_boundary().unwrap();
        assert!(
            later.ways_of(CoreId(1)) > later.ways_of(CoreId(0)),
            "assignment follows the phase change: {later}"
        );
    }

    #[test]
    fn curves_are_scaled_by_sampling() {
        let mut c = Controller::new(
            Policy::BankAware,
            Topology::baseline(),
            8,
            ProfilerConfig {
                num_sets: 64,
                max_ways: 72,
                sample_ratio: 4,
                tag_bits: None,
                engine: EngineKind::default(),
            },
            BankAwareConfig::default(),
        );
        for i in 0..1000u64 {
            c.observe(CoreId(0), BlockAddr(i));
        }
        let curves = c.curves();
        // Sampled 1-in-4 but scaled back up: ~1000 accesses.
        assert!((curves[0].accesses() - 1000.0).abs() < 120.0);
    }

    #[test]
    fn bank_failure_replan_avoids_the_dead_bank() {
        let mut c = controller(Policy::BankAware);
        for i in 0..8 {
            feed_knee_profile(&mut c, CoreId(i), 10, 20_000);
        }
        c.epoch_boundary().unwrap();
        c.bank_failed(BankId(9));
        let plan = c.replan_for_mask().expect("replan after a bank loss");
        assert_eq!(plan.bank_ways_used(BankId(9)), 0);
        assert_eq!(plan.total_ways_used(), 15 * 8);
        assert_eq!(c.counters().banks_failed, 1);
        assert_eq!(c.epochs(), 1, "replan is outside the epoch cadence");
    }

    #[test]
    fn restore_reopens_the_bank() {
        let mut c = controller(Policy::BankAware);
        for i in 0..8 {
            feed_knee_profile(&mut c, CoreId(i), 10, 20_000);
        }
        c.bank_failed(BankId(9));
        c.replan_for_mask().unwrap();
        c.bank_restored(BankId(9));
        let plan = c.replan_for_mask().unwrap();
        assert_eq!(plan.total_ways_used(), 128, "full capacity is back");
        let ctrs = c.counters();
        assert_eq!((ctrs.banks_failed, ctrs.banks_restored), (1, 1));
    }

    #[test]
    fn corrupted_curves_are_repaired_not_fatal() {
        let mut c = controller(Policy::BankAware);
        for i in 0..8 {
            feed_knee_profile(&mut c, CoreId(i), 10, 20_000);
        }
        let mut curves = c.curves();
        let poisoned: Vec<f64> = (0..=curves[0].max_ways())
            .map(|w| {
                if w % 3 == 0 {
                    f64::NAN
                } else {
                    500.0 - w as f64
                }
            })
            .collect();
        curves[2] = MissRatioCurve::from_misses(poisoned, f64::NAN);
        let plan = c
            .epoch_boundary_with_curves(curves)
            .expect("solve survives a corrupted curve");
        assert_eq!(plan.total_ways_used(), 128);
        assert_eq!(c.counters().curves_repaired, 1);
    }

    #[test]
    fn skip_epoch_keeps_the_plan_and_profiles() {
        let mut c = controller(Policy::BankAware);
        feed_knee_profile(&mut c, CoreId(0), 10, 10_000);
        let before = c.curves();
        c.skip_epoch();
        assert_eq!(c.epochs(), 1);
        assert_eq!(
            c.curves()[0].accesses(),
            before[0].accesses(),
            "no decay on a dropped epoch"
        );
    }

    #[test]
    fn equal_policy_falls_back_to_healthy_split() {
        let mut c = controller(Policy::Equal);
        c.bank_failed(BankId(0));
        c.bank_failed(BankId(12));
        let plan = c.replan_for_mask().expect("equal-on-healthy plan");
        plan.validate_against_mask(c.mask()).unwrap();
        assert_eq!(plan.total_ways_used(), 14 * 8);
        // Even split: every core within one way of the others.
        let shares: Vec<usize> = (0..8).map(|i| plan.ways_of(CoreId(i))).collect();
        let (lo, hi) = (*shares.iter().min().unwrap(), *shares.iter().max().unwrap());
        assert!(hi - lo <= 1, "shares {shares:?}");
    }

    /// Synthetic monotone curves: core `i` has a knee at `knees[i]` ways
    /// with `amp` misses saved per way before the knee.
    fn knee_curves(knees: &[usize], amp: f64) -> Vec<MissRatioCurve> {
        knees
            .iter()
            .map(|&k| {
                let misses: Vec<f64> = (0..=72)
                    .map(|w| {
                        if w < k {
                            amp * (k - w) as f64 + 100.0
                        } else {
                            100.0
                        }
                    })
                    .collect();
                MissRatioCurve::from_misses(misses, 100_000.0)
            })
            .collect()
    }

    /// Hysteresis tuned for flip detection only: no improvement gate and a
    /// phase threshold no realistic delta reaches.
    fn flip_only_hysteresis() -> bap_types::HysteresisConfig {
        bap_types::HysteresisConfig {
            enabled: true,
            min_improvement_frac: 0.0,
            migration_cost_per_way: 0.0,
            phase_delta_threshold: 1e18,
            ..bap_types::HysteresisConfig::tuned()
        }
    }

    #[test]
    fn default_control_layer_is_inert() {
        let mut c = controller(Policy::BankAware);
        c.set_control(ControlConfig::default());
        for round in 0..6 {
            feed_knee_profile(&mut c, CoreId(round % 8), 20, 30_000);
            c.epoch_boundary();
        }
        let ctrs = c.counters();
        assert_eq!(
            (
                ctrs.plans_held,
                ctrs.holdoffs,
                ctrs.phase_bypasses,
                ctrs.budget_sheds
            ),
            (0, 0, 0, 0),
            "defaults must never gate, hold off, bypass or shed"
        );
        assert_eq!(c.plan_source(), PlanSource::Solver);
    }

    #[test]
    fn flip_flop_arms_an_exponential_holdoff() {
        let mut c = controller(Policy::BankAware);
        c.set_control(ControlConfig {
            hysteresis: flip_only_hysteresis(),
            ..ControlConfig::default()
        });
        let a = knee_curves(&[40, 4, 4, 4, 4, 4, 4, 4], 1_000.0);
        let b = knee_curves(&[4, 40, 4, 4, 4, 4, 4, 4], 1_000.0);
        let mut installs = 0;
        for epoch in 0..12 {
            let curves = if epoch % 2 == 0 { a.clone() } else { b.clone() };
            if c.epoch_boundary_with_curves(curves).is_some() {
                installs += 1;
            }
        }
        let ctrs = c.counters();
        assert!(
            ctrs.holdoffs >= 1,
            "A↔B alternation must arm a hold-off: {ctrs:?}"
        );
        // flip_threshold = 2 arms the first hold-off on the 4th install
        // (A, B, A=flip1, B=flip2) — within K = 4 epochs of the onset —
        // and each re-arm doubles the damping window.
        assert!(
            installs <= 6,
            "hold-off caps the churn at the flip threshold: {installs} installs"
        );
        assert!(c.in_holdoff() || ctrs.holdoffs >= 2);
    }

    #[test]
    fn phase_change_bypasses_an_active_holdoff() {
        let mut c = controller(Policy::BankAware);
        c.set_control(ControlConfig {
            hysteresis: bap_types::HysteresisConfig {
                enabled: true,
                ..bap_types::HysteresisConfig::tuned()
            },
            ..ControlConfig::default()
        });
        let a = knee_curves(&[40, 4, 4, 4, 4, 4, 4, 4], 1_000.0);
        // Install once so the phase baseline exists, then force a hold-off.
        assert!(c.epoch_boundary_with_curves(a.clone()).is_some());
        c.hyst.holdoff_until = 1_000;
        // Same curves: the hold-off damps the epoch.
        assert_eq!(c.epoch_boundary_with_curves(a.clone()), None);
        assert!(c.in_holdoff());
        // A genuinely different phase: the detector overrides the hold-off
        // and the controller repartitions immediately.
        let shifted = knee_curves(&[4, 4, 4, 4, 4, 4, 4, 72], 1_000.0);
        let plan = c
            .epoch_boundary_with_curves(shifted)
            .expect("phase change must break through the hold-off");
        assert!(plan.ways_of(CoreId(7)) > plan.ways_of(CoreId(0)));
        let ctrs = c.counters();
        assert_eq!(ctrs.phase_bypasses, 1);
        assert!(!c.in_holdoff(), "bypass resets the hold-off");
    }

    #[test]
    fn improvement_gate_holds_marginal_plans() {
        let mut c = controller(Policy::BankAware);
        c.set_control(ControlConfig {
            hysteresis: bap_types::HysteresisConfig {
                enabled: true,
                // An absurd bar: every non-identical candidate is marginal.
                min_improvement_frac: 10.0,
                phase_delta_threshold: 1e18,
                ..bap_types::HysteresisConfig::tuned()
            },
            ..ControlConfig::default()
        });
        let a = knee_curves(&[40, 4, 4, 4, 4, 4, 4, 4], 1_000.0);
        let installed = c
            .epoch_boundary_with_curves(a)
            .expect("first plan always installs");
        // A moderately different profile yields a different candidate, but
        // the gate judges the gain marginal and keeps the installed plan.
        let b = knee_curves(&[30, 12, 4, 4, 4, 4, 4, 4], 1_000.0);
        assert_eq!(c.epoch_boundary_with_curves(b), None);
        assert_eq!(c.counters().plans_held, 1);
        assert_eq!(c.last_plan(), Some(&installed), "last-good stays in force");
    }

    #[test]
    fn budget_exhaustion_sheds_to_the_last_good_plan() {
        let mut c = controller(Policy::BankAware);
        c.set_tracer(Tracer::ring());
        for i in 0..8 {
            feed_knee_profile(&mut c, CoreId(i), 10, 20_000);
        }
        let installed = c.epoch_boundary().expect("unbudgeted install");
        // Starve the solver: one step cannot finish Center bidding.
        c.set_control(ControlConfig::default().with_step_budget(1));
        assert_eq!(c.epoch_boundary(), None, "shed epoch changes nothing");
        let ctrs = c.counters();
        assert_eq!(ctrs.budget_sheds, 1);
        assert_eq!(
            (ctrs.solver_failures, ctrs.plan_reuses, ctrs.equal_fallbacks),
            (0, 0, 0),
            "a shed is budget accounting, not degradation"
        );
        assert_eq!(c.last_plan(), Some(&installed));
        let events = c.tracer.drain_events();
        let shed = events
            .iter()
            .find_map(|e| match &e.kind {
                EventKind::BudgetShed { steps, limit } => Some((*steps, limit.clone())),
                _ => None,
            })
            .expect("the shed must be on the trace");
        assert!(shed.0 >= 1, "exhaustion reports the steps spent");
        assert_eq!(shed.1, "steps");
    }

    #[test]
    fn expired_deadline_sheds_before_the_solve() {
        let mut c = controller(Policy::BankAware);
        for i in 0..8 {
            feed_knee_profile(&mut c, CoreId(i), 10, 20_000);
        }
        let installed = c.epoch_boundary().expect("install under no deadline");
        let curves = c.curves();
        // A deadline of "now" has always expired by the time it is checked.
        let out = c.epoch_boundary_with_curves_deadline(curves, Some(std::time::Instant::now()));
        assert_eq!(out, None);
        assert_eq!(c.counters().budget_sheds, 1);
        assert_eq!(c.last_plan(), Some(&installed));
    }

    #[test]
    fn snapshot_round_trips_hysteresis_state() {
        let mut c = controller(Policy::BankAware);
        c.set_control(ControlConfig {
            hysteresis: flip_only_hysteresis(),
            ..ControlConfig::default()
        });
        let a = knee_curves(&[40, 4, 4, 4, 4, 4, 4, 4], 1_000.0);
        let b = knee_curves(&[4, 40, 4, 4, 4, 4, 4, 4], 1_000.0);
        for epoch in 0..6 {
            let curves = if epoch % 2 == 0 { a.clone() } else { b.clone() };
            c.epoch_boundary_with_curves(curves);
        }
        let snap = c.snapshot();
        let mut r = controller(Policy::BankAware);
        r.set_control(*c.control());
        r.restore(&snap).unwrap();
        assert_eq!(r.plan_source(), c.plan_source());
        assert_eq!(r.hyst, c.hyst, "flip history and hold-off survive restore");
        assert_eq!(r.in_holdoff(), c.in_holdoff());
        assert_eq!(r.last_plan(), c.last_plan());
    }

    #[test]
    fn warm_start_controller_is_plan_identical_to_classic() {
        let mut cold = controller(Policy::BankAware);
        let mut warm = controller(Policy::BankAware);
        warm.set_control(ControlConfig::default().with_warm_starts());
        for round in 0..6 {
            feed_knee_profile(&mut cold, CoreId(round % 8), 12 + round as usize, 30_000);
            feed_knee_profile(&mut warm, CoreId(round % 8), 12 + round as usize, 30_000);
            assert_eq!(
                cold.epoch_boundary(),
                warm.epoch_boundary(),
                "round {round}: warm starts must not change any decision"
            );
        }
        assert_eq!(cold.counters(), warm.counters());
        let stats = warm.incremental_stats();
        assert_eq!(stats.decisions, 6);
        assert!(stats.full_solves >= 1);
        assert_eq!(
            cold.incremental_stats(),
            crate::IncrementalStats::default(),
            "the classic path never touches the incremental solver"
        );
    }

    #[test]
    fn stationary_curves_stop_resolving_under_the_controller() {
        let mut c = controller(Policy::BankAware);
        c.set_control(ControlConfig::default().with_warm_starts());
        let curves = knee_curves(&[40, 8, 8, 8, 8, 8, 8, 8], 1_000.0);
        for _ in 0..5 {
            c.epoch_boundary_with_curves(curves.clone());
        }
        let stats = c.incremental_stats();
        assert_eq!(stats.full_solves, 1);
        assert_eq!(
            stats.cluster_solves, 1,
            "a stationary mix re-solves nothing after warm-up"
        );
        assert_eq!(stats.warm_hits, 4);
    }

    #[test]
    fn warm_start_survives_bank_transitions() {
        let mut c = controller(Policy::BankAware);
        c.set_control(ControlConfig::default().with_warm_starts());
        for i in 0..8 {
            feed_knee_profile(&mut c, CoreId(i), 10, 20_000);
        }
        c.epoch_boundary().unwrap();
        c.bank_failed(BankId(9));
        let plan = c.replan_for_mask().expect("replan after a bank loss");
        assert_eq!(plan.bank_ways_used(BankId(9)), 0);
        assert_eq!(plan.total_ways_used(), 15 * 8);
        // The mask change forced a cold solve; the cache is warm again on
        // the new machine.
        assert_eq!(c.incremental_stats().full_solves, 2);
        c.epoch_boundary();
        assert_eq!(c.incremental_stats().full_solves, 2, "warm on the new mask");
    }

    #[test]
    fn snapshot_round_trips_warm_state() {
        let mut c = controller(Policy::BankAware);
        c.set_control(ControlConfig::default().with_warm_starts());
        let curves = knee_curves(&[40, 8, 8, 8, 8, 8, 8, 8], 1_000.0);
        c.epoch_boundary_with_curves(curves.clone());
        let snap = c.snapshot();
        let mut r = controller(Policy::BankAware);
        r.set_control(*c.control());
        r.restore(&snap).unwrap();
        r.epoch_boundary_with_curves(curves);
        let stats = r.incremental_stats();
        assert_eq!(stats.full_solves, 1, "restored controllers resume warm");
        assert_eq!(stats.warm_hits, 1);
    }

    fn slo(max_wcl: Cycle, min_ways: usize) -> bap_types::SloSpec {
        bap_types::SloSpec {
            max_wcl_cycles: max_wcl,
            min_ways,
            bandwidth_floor: 0,
        }
    }

    fn wcl_params() -> WclParams {
        WclParams {
            noc_queue_bound: 64,
            noc_reg_stall: 0,
            dram_worst: 772,
            dram_reg_stall: 0,
            coherence_extra: 0,
            isolated_lookup: true,
        }
    }

    #[test]
    fn slo_enforcement_replaces_violating_solver_plans() {
        let mut c = controller(Policy::BankAware);
        c.set_tracer(Tracer::ring());
        // Core 7 shows no appetite, so the solver starves it — but it
        // declared a 24-way floor.
        let mut slos = vec![None; 8];
        slos[7] = Some(slo(10_000, 24));
        c.set_qos(slos, wcl_params(), None);
        assert!(c.slo_admitted(CoreId(7)));
        feed_knee_profile(&mut c, CoreId(0), 60, 60_000);
        for i in 1..8 {
            feed_knee_profile(&mut c, CoreId(i), 3, 20_000);
        }
        let plan = c.epoch_boundary().expect("enforcement installs a plan");
        assert!(plan.ways_of(CoreId(7)) >= 24, "{plan}");
        assert_eq!(c.plan_source(), PlanSource::Slo);
        assert!(c.counters().slo_enforcements >= 1);
        assert!(
            !c.core_degrades().is_zero(),
            "some best-effort core paid for the floor"
        );
        let bounds = c.slo_bounds();
        assert!(bounds[7].is_some() && bounds[0].is_none());
        let events = c.tracer.drain_events();
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, EventKind::SloAdmitted { core: 7, .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, EventKind::SloEnforced { .. })));
    }

    #[test]
    fn compliant_plans_pass_through_enforcement_untouched() {
        let mut a = controller(Policy::BankAware);
        let mut b = controller(Policy::BankAware);
        // A trivially satisfiable SLO: 1 way, enormous ceiling.
        let mut slos = vec![None; 8];
        slos[0] = Some(slo(1_000_000, 1));
        b.set_qos(slos, wcl_params(), None);
        for i in 0..8 {
            feed_knee_profile(&mut a, CoreId(i), 10, 20_000);
            feed_knee_profile(&mut b, CoreId(i), 10, 20_000);
        }
        let pa = a.epoch_boundary().unwrap();
        let pb = b.epoch_boundary().unwrap();
        assert_eq!(pa, pb, "a met SLO never changes the decision");
        assert_eq!(b.plan_source(), PlanSource::Solver);
        assert_eq!(b.counters().slo_enforcements, 0);
    }

    #[test]
    fn bank_loss_triggers_re_admission() {
        let mut c = controller(Policy::BankAware);
        c.set_tracer(Tracer::ring());
        let mut slos = vec![None; 8];
        slos[0] = Some(slo(10_000, 120));
        c.set_qos(slos, wcl_params(), None);
        assert!(c.slo_admitted(CoreId(0)), "feasible on the healthy machine");
        for i in 0..8 {
            feed_knee_profile(&mut c, CoreId(i), 10, 20_000);
        }
        c.epoch_boundary();
        // Losing two banks leaves 112 ways: the 120-way floor is infeasible
        // and the SLO must be demoted, not silently breached.
        c.bank_failed(BankId(3));
        c.bank_failed(BankId(11));
        c.replan_for_mask();
        assert!(!c.slo_admitted(CoreId(0)));
        assert!(c.counters().slo_rejections >= 1);
        let events = c.tracer.drain_events();
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, EventKind::SloRejected { core: 0, .. })));
        assert_eq!(c.slo_bounds()[0], None, "no bound is promised any more");
    }

    #[test]
    fn qos_free_controller_is_bit_identical() {
        let mut a = controller(Policy::BankAware);
        let mut b = controller(Policy::BankAware);
        b.set_qos(Vec::new(), wcl_params(), Some(4));
        for i in 0..8 {
            feed_knee_profile(&mut a, CoreId(i), 12, 30_000);
            feed_knee_profile(&mut b, CoreId(i), 12, 30_000);
        }
        assert_eq!(a.epoch_boundary(), b.epoch_boundary());
        assert_eq!(a.counters(), b.counters());
        assert!(b.slo_bounds().iter().all(|x| x.is_none()));
    }

    #[test]
    fn ladder_fallback_records_per_core_losses() {
        let mut c = controller(Policy::BankAware);
        for i in 0..8 {
            feed_knee_profile(&mut c, CoreId(i), 10, 20_000);
        }
        c.epoch_boundary().unwrap();
        // Kill core 2's banks and starve the solver so the ladder runs.
        for b in 1..16 {
            c.bank_failed(BankId(b));
        }
        c.epoch_boundary();
        let ctrs = c.counters();
        assert!(ctrs.plan_repairs + ctrs.equal_fallbacks >= 1);
        let ledger = c.core_degrades();
        assert!(
            !ledger.is_zero(),
            "massive bank loss must cost someone ways: {ledger:?}"
        );
    }

    #[test]
    fn snapshot_round_trips_qos_state() {
        let mut c = controller(Policy::BankAware);
        let mut slos = vec![None; 8];
        slos[1] = Some(slo(10_000, 24));
        c.set_qos(slos.clone(), wcl_params(), None);
        for i in 0..8 {
            feed_knee_profile(&mut c, CoreId(i), 10, 20_000);
        }
        c.epoch_boundary();
        let snap = c.snapshot();
        let mut r = controller(Policy::BankAware);
        r.set_qos(slos, wcl_params(), None);
        r.restore(&snap).unwrap();
        assert_eq!(r.slo_admitted(CoreId(1)), c.slo_admitted(CoreId(1)));
        assert_eq!(r.core_degrades(), c.core_degrades());
        assert_eq!(r.slo_bounds(), c.slo_bounds());
    }

    #[test]
    fn ladder_reuses_a_surviving_plan_when_the_solver_fails() {
        let mut c = controller(Policy::BankAware);
        for i in 0..8 {
            feed_knee_profile(&mut c, CoreId(i), 10, 20_000);
        }
        let installed = c.epoch_boundary().unwrap();
        // Force an unsolvable machine: min_ways demand above healthy
        // capacity. 15 dead banks leave 8 ways for 8 cores at min 4 each.
        for b in 1..16 {
            c.bank_failed(BankId(b));
        }
        let next = c.epoch_boundary();
        let ctrs = c.counters();
        assert_eq!(ctrs.solver_failures, 1);
        // The installed plan is also dead (it used the lost banks), so the
        // ladder lands on repair or equal-fallback — never a panic.
        assert!(ctrs.plan_repairs + ctrs.equal_fallbacks + ctrs.plan_reuses == 1);
        if let Some(p) = next {
            p.validate_against_mask(c.mask()).unwrap();
            assert_ne!(p, installed);
        }
    }
}

//! The epoch-driven dynamic repartitioning controller.
//!
//! Per the paper's methodology (§IV): L2 accesses stream through per-core
//! MSA profilers; every `epoch_cycles` (100 M in the paper) the controller
//! reads the histograms, recomputes the partition with the configured
//! policy and applies it, then decays the histograms so the profile tracks
//! phase changes.

use crate::bank_aware::{bank_aware_partition, BankAwareConfig};
use bap_cache::PartitionPlan;
use bap_msa::{MissRatioCurve, ProfilerConfig, StackProfiler};
use bap_types::{BlockAddr, CoreId, Topology};

/// Which partitioning policy the system runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// Fully shared LRU cache (the *No-partitions* baseline).
    NoPartition,
    /// Static private halves: 2 banks (16 ways) per core.
    Equal,
    /// The paper's dynamic Bank-aware partitioning.
    BankAware,
}

/// The controller: per-core profilers plus the repartitioning logic.
#[derive(Clone, Debug)]
pub struct Controller {
    policy: Policy,
    profilers: Vec<StackProfiler>,
    topo: Topology,
    bank_ways: usize,
    cfg: BankAwareConfig,
    epochs: u64,
}

impl Controller {
    /// Build a controller. `profiler_cfg` is applied per core (use
    /// [`ProfilerConfig::paper_hardware`] for the 12-bit/1-in-32
    /// configuration, or a reference profiler in experiments that isolate
    /// the algorithm from profiling error).
    pub fn new(
        policy: Policy,
        topo: Topology,
        bank_ways: usize,
        profiler_cfg: ProfilerConfig,
        cfg: BankAwareConfig,
    ) -> Self {
        let profilers = (0..topo.num_cores())
            .map(|_| StackProfiler::new(profiler_cfg))
            .collect();
        Controller {
            policy,
            profilers,
            topo,
            bank_ways,
            cfg,
            epochs: 0,
        }
    }

    /// The active policy.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// Epochs elapsed.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Feed one L2 access into `core`'s profiler (called on every L2
    /// access, hit or miss — MSA monitors the access stream).
    #[inline]
    pub fn observe(&mut self, core: CoreId, block: BlockAddr) {
        self.profilers[core.index()].observe(block);
    }

    /// Direct access to a profiler (experiments).
    pub fn profiler(&self, core: CoreId) -> &StackProfiler {
        &self.profilers[core.index()]
    }

    /// Current miss-ratio curves, scaled for set sampling.
    pub fn curves(&self) -> Vec<MissRatioCurve> {
        self.profilers
            .iter()
            .map(|p| MissRatioCurve::from_histogram(p.histogram(), p.scale()))
            .collect()
    }

    /// Close an epoch: compute the new plan (if the policy is dynamic) and
    /// decay the profilers. Returns `None` when the policy keeps whatever
    /// configuration is already in force (NoPartition always; Equal after
    /// the first epoch).
    pub fn epoch_boundary(&mut self) -> Option<PartitionPlan> {
        self.epochs += 1;
        let plan = match self.policy {
            Policy::NoPartition => None,
            Policy::Equal => {
                if self.epochs == 1 {
                    Some(PartitionPlan::equal(
                        self.topo.num_cores(),
                        self.topo.num_banks(),
                        self.bank_ways,
                    ))
                } else {
                    None
                }
            }
            Policy::BankAware => {
                let curves = self.curves();
                Some(bank_aware_partition(
                    &curves,
                    &self.topo,
                    self.bank_ways,
                    &self.cfg,
                ))
            }
        };
        for p in &mut self.profilers {
            p.decay();
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bap_core_test_util::feed_knee_profile;

    /// Local helper module so the feeding logic is shared across tests.
    mod bap_core_test_util {
        use super::*;

        /// Feed `core`'s profiler a stream whose MSA curve has a knee at
        /// roughly `knee_ways` (per-set distances 0..knee_ways uniformly).
        pub fn feed_knee_profile(
            ctl: &mut Controller,
            core: CoreId,
            knee_ways: usize,
            accesses: u64,
        ) {
            // Round-robin sets, cycling block tags to produce uniform stack
            // distances within 0..knee_ways.
            let sets = 64u64;
            for i in 0..accesses {
                let set = i % sets;
                let tag = (i / sets) % knee_ways as u64;
                ctl.observe(core, BlockAddr(tag * sets + set));
            }
        }
    }

    fn controller(policy: Policy) -> Controller {
        Controller::new(
            policy,
            Topology::baseline(),
            8,
            ProfilerConfig::reference(64, 72),
            BankAwareConfig::default(),
        )
    }

    #[test]
    fn no_partition_never_emits_plans() {
        let mut c = controller(Policy::NoPartition);
        assert_eq!(c.epoch_boundary(), None);
        assert_eq!(c.epoch_boundary(), None);
        assert_eq!(c.epochs(), 2);
    }

    #[test]
    fn equal_emits_once() {
        let mut c = controller(Policy::Equal);
        let p = c.epoch_boundary().expect("first epoch applies the plan");
        assert_eq!(p.ways_of(CoreId(0)), 16);
        assert_eq!(c.epoch_boundary(), None);
    }

    #[test]
    fn bank_aware_adapts_to_observed_appetites() {
        let mut c = controller(Policy::BankAware);
        // Core 0 shows a deep working set; others shallow.
        feed_knee_profile(&mut c, CoreId(0), 60, 60_000);
        for i in 1..8 {
            feed_knee_profile(&mut c, CoreId(i), 3, 20_000);
        }
        let plan = c.epoch_boundary().expect("bank-aware emits every epoch");
        assert!(
            plan.ways_of(CoreId(0)) >= 32,
            "deep-reuse core gets a large share: {plan}"
        );
        assert_eq!(plan.total_ways_used(), 128);
    }

    #[test]
    fn decay_lets_the_profile_track_phases() {
        let mut c = controller(Policy::BankAware);
        feed_knee_profile(&mut c, CoreId(0), 60, 60_000);
        for i in 1..8 {
            feed_knee_profile(&mut c, CoreId(i), 3, 20_000);
        }
        let first = c.epoch_boundary().unwrap();
        assert!(first.ways_of(CoreId(0)) >= 32);
        // Phase change: core 0 goes quiet, core 1 becomes hungry. After a
        // few decayed epochs the assignment follows.
        for _ in 0..6 {
            feed_knee_profile(&mut c, CoreId(1), 60, 60_000);
            c.epoch_boundary();
        }
        feed_knee_profile(&mut c, CoreId(1), 60, 60_000);
        let later = c.epoch_boundary().unwrap();
        assert!(
            later.ways_of(CoreId(1)) > later.ways_of(CoreId(0)),
            "assignment follows the phase change: {later}"
        );
    }

    #[test]
    fn curves_are_scaled_by_sampling() {
        let mut c = Controller::new(
            Policy::BankAware,
            Topology::baseline(),
            8,
            ProfilerConfig {
                num_sets: 64,
                max_ways: 72,
                sample_ratio: 4,
                tag_bits: None,
            },
            BankAwareConfig::default(),
        );
        for i in 0..1000u64 {
            c.observe(CoreId(0), BlockAddr(i));
        }
        let curves = c.curves();
        // Sampled 1-in-4 but scaled back up: ~1000 accesses.
        assert!((curves[0].accesses() - 1000.0).abs() < 120.0);
    }
}

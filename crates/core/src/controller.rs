//! The epoch-driven dynamic repartitioning controller.
//!
//! Per the paper's methodology (§IV): L2 accesses stream through per-core
//! MSA profilers; every `epoch_cycles` (100 M in the paper) the controller
//! reads the histograms, recomputes the partition with the configured
//! policy and applies it, then decays the histograms so the profile tracks
//! phase changes.
//!
//! # Graceful degradation
//!
//! The controller tracks the live [`BankMask`] and survives bank losses,
//! corrupted profiles and solver failures. Curves are sanitised before any
//! solve, and when the Bank-aware solver cannot produce a plan the
//! controller walks a **degradation ladder** instead of panicking:
//!
//! 1. if the currently-installed plan is still valid on the surviving
//!    banks, keep it (no repartition this epoch);
//! 2. else strip the dead banks from it ([`PartitionPlan::restricted_to_mask`])
//!    and install the repaired plan if it remains structurally valid;
//! 3. else fall back to an equal split of the *healthy* capacity.
//!
//! Every rung taken is counted in [`FaultCounters`] so experiments can
//! report how often the system ran degraded.

use crate::bank_aware::{try_bank_aware_partition_traced, BankAwareConfig};
use bap_cache::{BankAllocation, PartitionPlan};
use bap_fault::FaultCounters;
use bap_msa::{MissRatioCurve, ProfilerConfig, StackProfiler};
use bap_trace::{EventKind, Tracer};
use bap_types::{BankId, BankMask, BlockAddr, CoreId, DegradedTopology, Topology};

/// Which partitioning policy the system runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// Fully shared LRU cache (the *No-partitions* baseline).
    NoPartition,
    /// Static private halves: 2 banks (16 ways) per core.
    Equal,
    /// The paper's dynamic Bank-aware partitioning.
    BankAware,
}

/// The controller: per-core profilers plus the repartitioning logic.
#[derive(Clone, Debug)]
pub struct Controller {
    policy: Policy,
    profilers: Vec<StackProfiler>,
    topo: Topology,
    mask: BankMask,
    bank_ways: usize,
    cfg: BankAwareConfig,
    epochs: u64,
    last_plan: Option<PartitionPlan>,
    counters: FaultCounters,
    tracer: Tracer,
}

impl Controller {
    /// Build a controller. `profiler_cfg` is applied per core (use
    /// [`ProfilerConfig::paper_hardware`] for the 12-bit/1-in-32
    /// configuration, or a reference profiler in experiments that isolate
    /// the algorithm from profiling error).
    pub fn new(
        policy: Policy,
        topo: Topology,
        bank_ways: usize,
        profiler_cfg: ProfilerConfig,
        cfg: BankAwareConfig,
    ) -> Self {
        let profilers = (0..topo.num_cores())
            .map(|_| StackProfiler::new(profiler_cfg))
            .collect();
        let mask = BankMask::all_healthy(topo.num_banks());
        Controller {
            policy,
            profilers,
            topo,
            mask,
            bank_ways,
            cfg,
            epochs: 0,
            last_plan: None,
            counters: FaultCounters::default(),
            tracer: Tracer::off(),
        }
    }

    /// Attach a trace handle; all subsequent solves, ladder decisions and
    /// curve repairs are emitted through it.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The active policy.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// Epochs elapsed.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// The controller's view of bank health.
    pub fn mask(&self) -> &BankMask {
        &self.mask
    }

    /// Fault-handling counters accumulated so far.
    pub fn counters(&self) -> FaultCounters {
        self.counters
    }

    /// The plan most recently produced (and presumed installed).
    pub fn last_plan(&self) -> Option<&PartitionPlan> {
        self.last_plan.as_ref()
    }

    /// Zero the fault-handling counters. Called at run start so counters in
    /// a `RunResult` describe that run only, not earlier runs of a reused
    /// controller.
    pub fn reset_counters(&mut self) {
        self.counters = FaultCounters::default();
    }

    /// Serialize the controller's dynamic state (profilers, mask, epoch
    /// count, last plan, fault counters) for checkpointing. Policy,
    /// topology and solver configuration are rebuilt from the run options.
    pub fn snapshot(&self) -> serde::Value {
        serde::Value::Object(vec![
            (
                "profilers".to_string(),
                serde::Serialize::to_value(&self.profilers),
            ),
            ("mask".to_string(), serde::Serialize::to_value(&self.mask)),
            (
                "epochs".to_string(),
                serde::Serialize::to_value(&self.epochs),
            ),
            (
                "last_plan".to_string(),
                serde::Serialize::to_value(&self.last_plan),
            ),
            (
                "counters".to_string(),
                serde::Serialize::to_value(&self.counters),
            ),
        ])
    }

    /// Overwrite the dynamic state from a [`Controller::snapshot`] payload
    /// taken on an identically-configured controller.
    pub fn restore(&mut self, v: &serde::Value) -> Result<(), serde::Error> {
        let profilers: Vec<StackProfiler> = serde::from_field(v, "profilers")?;
        if profilers.len() != self.profilers.len() {
            return Err(serde::Error::msg("controller core count mismatch"));
        }
        self.profilers = profilers;
        self.mask = serde::from_field(v, "mask")?;
        self.epochs = serde::from_field(v, "epochs")?;
        self.last_plan = serde::from_field(v, "last_plan")?;
        self.counters = serde::from_field(v, "counters")?;
        Ok(())
    }

    /// Feed one L2 access into `core`'s profiler (called on every L2
    /// access, hit or miss — MSA monitors the access stream).
    #[inline]
    pub fn observe(&mut self, core: CoreId, block: BlockAddr) {
        self.profilers[core.index()].observe(block);
    }

    /// Direct access to a profiler (experiments).
    pub fn profiler(&self, core: CoreId) -> &StackProfiler {
        &self.profilers[core.index()]
    }

    /// Current miss-ratio curves, scaled for set sampling.
    pub fn curves(&self) -> Vec<MissRatioCurve> {
        self.profilers
            .iter()
            .map(|p| MissRatioCurve::from_histogram(p.histogram(), p.scale()))
            .collect()
    }

    /// Record that `bank` went offline. The *next* plan (from
    /// [`Controller::replan_for_mask`] or the next epoch boundary) excludes
    /// it; callers flush the bank itself.
    pub fn bank_failed(&mut self, bank: BankId) {
        if self.mask.disable(bank) {
            self.counters.banks_failed += 1;
        }
    }

    /// Record that `bank` is usable again.
    pub fn bank_restored(&mut self, bank: BankId) {
        if self.mask.enable(bank) {
            self.counters.banks_restored += 1;
        }
    }

    /// An epoch boundary whose repartitioning trigger was lost (injected
    /// fault): time passes but no profile is read, no plan is computed and
    /// no decay happens.
    pub fn skip_epoch(&mut self) {
        self.epochs += 1;
    }

    /// Close an epoch: compute the new plan (if the policy is dynamic) and
    /// decay the profilers. Returns `None` when the policy keeps whatever
    /// configuration is already in force (NoPartition always; Equal after
    /// the first epoch; BankAware when the degradation ladder decides the
    /// installed plan is still the best available).
    pub fn epoch_boundary(&mut self) -> Option<PartitionPlan> {
        let curves = self.curves();
        self.epoch_boundary_with_curves(curves)
    }

    /// [`Controller::epoch_boundary`] with externally supplied curves —
    /// the fault-injection path, where the transport from the profilers may
    /// have corrupted them. Curves are sanitised before use.
    pub fn epoch_boundary_with_curves(
        &mut self,
        mut curves: Vec<MissRatioCurve>,
    ) -> Option<PartitionPlan> {
        self.epochs += 1;
        let plan = match self.policy {
            Policy::NoPartition => None,
            Policy::Equal => {
                if self.epochs == 1 {
                    let p = self.equal_plan();
                    self.emit_assignment("equal", p.as_ref());
                    self.last_plan = p.clone();
                    p
                } else {
                    None
                }
            }
            Policy::BankAware => {
                self.sanitize_curves(&mut curves);
                self.snapshot_curves(&curves);
                self.solve_bank_aware(&curves)
            }
        };
        for p in &mut self.profilers {
            p.decay();
        }
        plan
    }

    /// Recompute a plan for the *current* mask outside the epoch cadence —
    /// called right after a bank transition so the system is not left
    /// running an invalid assignment until the next boundary. Does not
    /// advance the epoch count or decay the profilers.
    pub fn replan_for_mask(&mut self) -> Option<PartitionPlan> {
        match self.policy {
            Policy::NoPartition => None,
            Policy::Equal => {
                let p = self.equal_plan();
                self.emit_assignment("equal", p.as_ref());
                self.last_plan = p.clone();
                p
            }
            Policy::BankAware => {
                let mut curves = self.curves();
                self.sanitize_curves(&mut curves);
                self.snapshot_curves(&curves);
                self.solve_bank_aware(&curves)
            }
        }
    }

    fn sanitize_curves(&mut self, curves: &mut [MissRatioCurve]) {
        for (i, c) in curves.iter_mut().enumerate() {
            if !c.sanitize_traced(i, &self.tracer).is_clean() {
                self.counters.curves_repaired += 1;
            }
        }
    }

    /// Emit the post-sanitize curves the solver is about to see — the
    /// replay contract: rebuilding these snapshots and re-solving must
    /// reproduce the [`EventKind::AssignmentComputed`] that follows.
    fn snapshot_curves(&self, curves: &[MissRatioCurve]) {
        if !self.tracer.is_enabled() {
            return;
        }
        for (i, c) in curves.iter().enumerate() {
            c.emit_snapshot(i, &self.tracer);
        }
    }

    fn emit_assignment(&self, policy: &str, plan: Option<&PartitionPlan>) {
        if let Some(plan) = plan {
            self.tracer.emit(|| EventKind::AssignmentComputed {
                policy: policy.to_string(),
                ways: (0..self.topo.num_cores())
                    .map(|c| plan.ways_of(CoreId(c as u8)))
                    .collect(),
            });
        }
    }

    fn solve_bank_aware(&mut self, curves: &[MissRatioCurve]) -> Option<PartitionPlan> {
        let machine = DegradedTopology::new(self.topo.clone(), self.mask);
        let t0 = self.tracer.is_enabled().then(std::time::Instant::now);
        let solved = try_bank_aware_partition_traced(
            curves,
            &machine,
            self.bank_ways,
            &self.cfg,
            &self.tracer,
        );
        if let Some(t0) = t0 {
            self.tracer.timing("solve", t0.elapsed().as_nanos() as u64);
        }
        match solved {
            Ok(plan) => {
                self.last_plan = Some(plan.clone());
                Some(plan)
            }
            Err(e) => {
                self.tracer.emit(|| EventKind::SolverFailed {
                    error: e.to_string(),
                });
                self.counters.solver_failures += 1;
                self.degraded_fallback()
            }
        }
    }

    /// The degradation ladder, walked when the solver fails.
    fn degraded_fallback(&mut self) -> Option<PartitionPlan> {
        if let Some(prev) = &self.last_plan {
            // Rung 1: the installed plan survived the damage — keep it.
            if prev.validate_against_mask(&self.mask).is_ok() {
                self.counters.plan_reuses += 1;
                self.tracer.emit(|| EventKind::DegradationRung { rung: 1 });
                return None;
            }
            // Rung 2: strip dead banks from it; if every core still has
            // capacity, run the repaired plan.
            let repaired = prev.restricted_to_mask(&self.mask);
            if repaired.validate_against_mask(&self.mask).is_ok() {
                self.counters.plan_repairs += 1;
                self.tracer.emit(|| EventKind::DegradationRung { rung: 2 });
                self.emit_assignment("plan_repair", Some(&repaired));
                self.last_plan = Some(repaired.clone());
                return Some(repaired);
            }
        }
        // Rung 3: equal split of whatever capacity is left.
        self.counters.equal_fallbacks += 1;
        self.tracer.emit(|| EventKind::DegradationRung { rung: 3 });
        let p = self.equal_plan();
        self.emit_assignment("equal_fallback", p.as_ref());
        if p.is_some() {
            self.last_plan = p.clone();
        }
        p
    }

    /// The Equal policy's plan for the current mask: the paper's private
    /// 2-banks-per-core split when everything is healthy, otherwise an
    /// even division of the healthy ways (each core a contiguous run of
    /// healthy-bank ways; no physical-rule aspirations — this is the
    /// last-resort safety net).
    fn equal_plan(&self) -> Option<PartitionPlan> {
        let n = self.topo.num_cores();
        if self.mask.is_full() {
            return Some(PartitionPlan::equal(
                n,
                self.topo.num_banks(),
                self.bank_ways,
            ));
        }
        let healthy: Vec<BankId> = self.mask.healthy_banks().collect();
        let total = healthy.len() * self.bank_ways;
        if total < n {
            return None; // fewer ways than cores: nothing sane to install
        }
        let base = total / n;
        let extra = total % n;
        let mut plan = PartitionPlan::empty(n, self.topo.num_banks(), self.bank_ways);
        let mut bi = 0usize;
        let mut left = self.bank_ways;
        for c in 0..n {
            let mut need = base + usize::from(c < extra);
            while need > 0 {
                let take = need.min(left);
                plan.per_core[c].push(BankAllocation {
                    bank: healthy[bi],
                    ways: take,
                });
                need -= take;
                left -= take;
                if left == 0 && bi + 1 < healthy.len() {
                    bi += 1;
                    left = self.bank_ways;
                }
            }
        }
        Some(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bap_core_test_util::feed_knee_profile;
    use bap_msa::EngineKind;

    /// Local helper module so the feeding logic is shared across tests.
    mod bap_core_test_util {
        use super::*;

        /// Feed `core`'s profiler a stream whose MSA curve has a knee at
        /// roughly `knee_ways` (per-set distances 0..knee_ways uniformly).
        pub fn feed_knee_profile(
            ctl: &mut Controller,
            core: CoreId,
            knee_ways: usize,
            accesses: u64,
        ) {
            // Round-robin sets, cycling block tags to produce uniform stack
            // distances within 0..knee_ways.
            let sets = 64u64;
            for i in 0..accesses {
                let set = i % sets;
                let tag = (i / sets) % knee_ways as u64;
                ctl.observe(core, BlockAddr(tag * sets + set));
            }
        }
    }

    fn controller(policy: Policy) -> Controller {
        Controller::new(
            policy,
            Topology::baseline(),
            8,
            ProfilerConfig::reference(64, 72),
            BankAwareConfig::default(),
        )
    }

    #[test]
    fn no_partition_never_emits_plans() {
        let mut c = controller(Policy::NoPartition);
        assert_eq!(c.epoch_boundary(), None);
        assert_eq!(c.epoch_boundary(), None);
        assert_eq!(c.epochs(), 2);
    }

    #[test]
    fn equal_emits_once() {
        let mut c = controller(Policy::Equal);
        let p = c.epoch_boundary().expect("first epoch applies the plan");
        assert_eq!(p.ways_of(CoreId(0)), 16);
        assert_eq!(c.epoch_boundary(), None);
    }

    #[test]
    fn bank_aware_adapts_to_observed_appetites() {
        let mut c = controller(Policy::BankAware);
        // Core 0 shows a deep working set; others shallow.
        feed_knee_profile(&mut c, CoreId(0), 60, 60_000);
        for i in 1..8 {
            feed_knee_profile(&mut c, CoreId(i), 3, 20_000);
        }
        let plan = c.epoch_boundary().expect("bank-aware emits every epoch");
        assert!(
            plan.ways_of(CoreId(0)) >= 32,
            "deep-reuse core gets a large share: {plan}"
        );
        assert_eq!(plan.total_ways_used(), 128);
    }

    #[test]
    fn decay_lets_the_profile_track_phases() {
        let mut c = controller(Policy::BankAware);
        feed_knee_profile(&mut c, CoreId(0), 60, 60_000);
        for i in 1..8 {
            feed_knee_profile(&mut c, CoreId(i), 3, 20_000);
        }
        let first = c.epoch_boundary().unwrap();
        assert!(first.ways_of(CoreId(0)) >= 32);
        // Phase change: core 0 goes quiet, core 1 becomes hungry. After a
        // few decayed epochs the assignment follows.
        for _ in 0..6 {
            feed_knee_profile(&mut c, CoreId(1), 60, 60_000);
            c.epoch_boundary();
        }
        feed_knee_profile(&mut c, CoreId(1), 60, 60_000);
        let later = c.epoch_boundary().unwrap();
        assert!(
            later.ways_of(CoreId(1)) > later.ways_of(CoreId(0)),
            "assignment follows the phase change: {later}"
        );
    }

    #[test]
    fn curves_are_scaled_by_sampling() {
        let mut c = Controller::new(
            Policy::BankAware,
            Topology::baseline(),
            8,
            ProfilerConfig {
                num_sets: 64,
                max_ways: 72,
                sample_ratio: 4,
                tag_bits: None,
                engine: EngineKind::default(),
            },
            BankAwareConfig::default(),
        );
        for i in 0..1000u64 {
            c.observe(CoreId(0), BlockAddr(i));
        }
        let curves = c.curves();
        // Sampled 1-in-4 but scaled back up: ~1000 accesses.
        assert!((curves[0].accesses() - 1000.0).abs() < 120.0);
    }

    #[test]
    fn bank_failure_replan_avoids_the_dead_bank() {
        let mut c = controller(Policy::BankAware);
        for i in 0..8 {
            feed_knee_profile(&mut c, CoreId(i), 10, 20_000);
        }
        c.epoch_boundary().unwrap();
        c.bank_failed(BankId(9));
        let plan = c.replan_for_mask().expect("replan after a bank loss");
        assert_eq!(plan.bank_ways_used(BankId(9)), 0);
        assert_eq!(plan.total_ways_used(), 15 * 8);
        assert_eq!(c.counters().banks_failed, 1);
        assert_eq!(c.epochs(), 1, "replan is outside the epoch cadence");
    }

    #[test]
    fn restore_reopens_the_bank() {
        let mut c = controller(Policy::BankAware);
        for i in 0..8 {
            feed_knee_profile(&mut c, CoreId(i), 10, 20_000);
        }
        c.bank_failed(BankId(9));
        c.replan_for_mask().unwrap();
        c.bank_restored(BankId(9));
        let plan = c.replan_for_mask().unwrap();
        assert_eq!(plan.total_ways_used(), 128, "full capacity is back");
        let ctrs = c.counters();
        assert_eq!((ctrs.banks_failed, ctrs.banks_restored), (1, 1));
    }

    #[test]
    fn corrupted_curves_are_repaired_not_fatal() {
        let mut c = controller(Policy::BankAware);
        for i in 0..8 {
            feed_knee_profile(&mut c, CoreId(i), 10, 20_000);
        }
        let mut curves = c.curves();
        let poisoned: Vec<f64> = (0..=curves[0].max_ways())
            .map(|w| {
                if w % 3 == 0 {
                    f64::NAN
                } else {
                    500.0 - w as f64
                }
            })
            .collect();
        curves[2] = MissRatioCurve::from_misses(poisoned, f64::NAN);
        let plan = c
            .epoch_boundary_with_curves(curves)
            .expect("solve survives a corrupted curve");
        assert_eq!(plan.total_ways_used(), 128);
        assert_eq!(c.counters().curves_repaired, 1);
    }

    #[test]
    fn skip_epoch_keeps_the_plan_and_profiles() {
        let mut c = controller(Policy::BankAware);
        feed_knee_profile(&mut c, CoreId(0), 10, 10_000);
        let before = c.curves();
        c.skip_epoch();
        assert_eq!(c.epochs(), 1);
        assert_eq!(
            c.curves()[0].accesses(),
            before[0].accesses(),
            "no decay on a dropped epoch"
        );
    }

    #[test]
    fn equal_policy_falls_back_to_healthy_split() {
        let mut c = controller(Policy::Equal);
        c.bank_failed(BankId(0));
        c.bank_failed(BankId(12));
        let plan = c.replan_for_mask().expect("equal-on-healthy plan");
        plan.validate_against_mask(c.mask()).unwrap();
        assert_eq!(plan.total_ways_used(), 14 * 8);
        // Even split: every core within one way of the others.
        let shares: Vec<usize> = (0..8).map(|i| plan.ways_of(CoreId(i))).collect();
        let (lo, hi) = (*shares.iter().min().unwrap(), *shares.iter().max().unwrap());
        assert!(hi - lo <= 1, "shares {shares:?}");
    }

    #[test]
    fn ladder_reuses_a_surviving_plan_when_the_solver_fails() {
        let mut c = controller(Policy::BankAware);
        for i in 0..8 {
            feed_knee_profile(&mut c, CoreId(i), 10, 20_000);
        }
        let installed = c.epoch_boundary().unwrap();
        // Force an unsolvable machine: min_ways demand above healthy
        // capacity. 15 dead banks leave 8 ways for 8 cores at min 4 each.
        for b in 1..16 {
            c.bank_failed(BankId(b));
        }
        let next = c.epoch_boundary();
        let ctrs = c.counters();
        assert_eq!(ctrs.solver_failures, 1);
        // The installed plan is also dead (it used the lost banks), so the
        // ladder lands on repair or equal-fallback — never a panic.
        assert!(ctrs.plan_repairs + ctrs.equal_fallbacks + ctrs.plan_reuses == 1);
        if let Some(p) = next {
            p.validate_against_mask(c.mask()).unwrap();
            assert_ne!(p, installed);
        }
    }
}

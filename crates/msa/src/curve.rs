//! Miss-ratio curves and marginal utility.
//!
//! A [`MissRatioCurve`] is the projection of an MSA histogram onto "misses
//! as a function of allocated ways" (the curves of Fig. 3). The allocation
//! algorithms consume it through [`MissRatioCurve::marginal_utility`]:
//!
//! ```text
//! MU(c, n) = (misses(c) − misses(c + n)) / n
//! ```
//!
//! the reduction in misses per extra way when growing an allocation of `c`
//! ways by `n` (§III-C, after Wieser's marginal-utility concept).

use crate::histogram::MsaHistogram;
use bap_trace::{EventKind, Tracer};
use serde::{Deserialize, Serialize};

/// Projected misses for every possible way allocation `0..=max_ways`.
///
/// ```
/// use bap_msa::MissRatioCurve;
///
/// // 100 misses with no cache, linearly down to 20 at 4 ways.
/// let curve = MissRatioCurve::from_misses(vec![100.0, 80.0, 60.0, 40.0, 20.0], 100.0);
/// assert_eq!(curve.misses_at(2), 60.0);
/// // Growing from 1 way by 2 saves (80 − 40) / 2 = 20 misses per way.
/// assert_eq!(curve.marginal_utility(1, 2), 20.0);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MissRatioCurve {
    /// `misses[w]` = projected misses with `w` ways, scaled to whole-cache
    /// estimates (sampling already compensated).
    misses: Vec<f64>,
    /// Total accesses (scaled), the denominator for ratios.
    accesses: f64,
}

impl MissRatioCurve {
    /// Build from a histogram, scaling counts by `scale` (the profiler's
    /// set-sampling ratio, 1.0 for a reference profiler).
    pub fn from_histogram(h: &MsaHistogram, scale: f64) -> Self {
        let misses = (0..=h.ways())
            .map(|w| h.misses_at(w) as f64 * scale)
            .collect();
        MissRatioCurve {
            misses,
            accesses: h.accesses() as f64 * scale,
        }
    }

    /// Build directly from projected miss counts (used by synthetic
    /// workload specifications and tests).
    pub fn from_misses(misses: Vec<f64>, accesses: f64) -> Self {
        assert!(!misses.is_empty());
        MissRatioCurve { misses, accesses }
    }

    /// Maximum ways the curve covers.
    pub fn max_ways(&self) -> usize {
        self.misses.len() - 1
    }

    /// Projected misses at `ways` (clamped to the curve's depth: the paper's
    /// maximum-assignable-capacity restriction means deeper allocations are
    /// *assumed* to give no further benefit).
    pub fn misses_at(&self, ways: usize) -> f64 {
        self.misses[ways.min(self.max_ways())]
    }

    /// Projected miss ratio at `ways`.
    pub fn miss_ratio_at(&self, ways: usize) -> f64 {
        if self.accesses == 0.0 {
            0.0
        } else {
            self.misses_at(ways) / self.accesses
        }
    }

    /// Total accesses behind the curve.
    pub fn accesses(&self) -> f64 {
        self.accesses
    }

    /// Marginal utility of growing an allocation of `current` ways by
    /// `extra` ways: misses saved per way. Zero when `extra` is zero.
    pub fn marginal_utility(&self, current: usize, extra: usize) -> f64 {
        if extra == 0 {
            return 0.0;
        }
        (self.misses_at(current) - self.misses_at(current + extra)) / extra as f64
    }

    /// The largest marginal utility achievable from `current` ways with any
    /// `extra ∈ 1..=budget`, and the `extra` achieving it. This is UCP's
    /// *lookahead* device: plain greedy single-way steps are blind to
    /// plateau-then-cliff curves; scanning all reachable growths is not.
    pub fn best_growth(&self, current: usize, budget: usize) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for n in 1..=budget {
            let mu = self.marginal_utility(current, n);
            // Strictly greater: ties keep the smallest growth, so callers
            // never over-commit capacity for no additional utility.
            if best.is_none_or(|(_, b)| mu > b) {
                best = Some((n, mu));
            }
        }
        best
    }

    /// Diagnose the curve without modifying it. A curve straight out of
    /// [`MissRatioCurve::from_histogram`] is always clean; defects only
    /// appear through deserialization of corrupted state or fault
    /// injection.
    /// Cheap emptiness probe — `health().empty` without paying for the
    /// full-curve scan (the solve prologue asks this for every core on
    /// every epoch decision).
    pub fn is_empty(&self) -> bool {
        self.misses.is_empty()
    }

    pub fn health(&self) -> CurveHealth {
        let mut h = CurveHealth {
            empty: self.misses.is_empty(),
            ..CurveHealth::default()
        };
        let mut running_min = f64::INFINITY;
        for &m in &self.misses {
            if !m.is_finite() {
                h.non_finite += 1;
                continue;
            }
            if m < 0.0 {
                h.negative += 1;
            }
            if m > running_min {
                h.non_monotone += 1;
            }
            running_min = running_min.min(m.max(0.0));
        }
        h.bad_accesses = !self.accesses.is_finite() || self.accesses < 0.0;
        h
    }

    /// Repair the curve in place so every consumer invariant holds again:
    /// misses finite, non-negative and non-increasing in ways; accesses
    /// finite and non-negative. Non-finite entries inherit the running
    /// minimum (no utility, rather than inventing some); an empty curve is
    /// patched to a single zero but reported unusable. Returns the health
    /// *before* repair so callers can count what they fixed. A clean curve
    /// is left bit-identical.
    pub fn sanitize(&mut self) -> CurveHealth {
        let health = self.health();
        if health.is_clean() {
            return health;
        }
        if self.misses.is_empty() {
            self.misses.push(0.0);
        }
        // Pass 1: make every entry finite and non-negative. Negatives clamp
        // to zero; a non-finite entry inherits its predecessor (zero utility
        // across that step, rather than inventing some), and a non-finite
        // *prefix* inherits the first usable value to its right.
        let mut prev = self
            .misses
            .iter()
            .copied()
            .find(|m| m.is_finite())
            .unwrap_or(0.0)
            .max(0.0);
        for m in &mut self.misses {
            prev = if m.is_finite() { m.max(0.0) } else { prev };
            *m = prev;
        }
        // Pass 2: restore monotonicity (misses never grow with more ways).
        let mut running_min = f64::INFINITY;
        for m in &mut self.misses {
            running_min = running_min.min(*m);
            *m = running_min;
        }
        if !self.accesses.is_finite() || self.accesses < 0.0 {
            self.accesses = 0.0;
        }
        health
    }

    /// [`MissRatioCurve::sanitize`] with trace emission: when the curve
    /// arrived dirty, a [`EventKind::CurveSanitized`] event records the
    /// defect count for `core`.
    pub fn sanitize_traced(&mut self, core: usize, tracer: &Tracer) -> CurveHealth {
        let health = self.sanitize();
        if !health.is_clean() {
            let defects = health.defects();
            tracer.emit(|| EventKind::CurveSanitized { core, defects });
        }
        health
    }

    /// Emit this curve as a [`EventKind::CurveSnapshot`] for `core`. The
    /// payload is the raw `(accesses, misses[0..=max_ways])` pair, so
    /// offline tooling rebuilds the exact curve with
    /// [`MissRatioCurve::from_misses`] — the replay contract `exp_trace`
    /// checks. Free when the tracer is off (the vector is never built).
    pub fn emit_snapshot(&self, core: usize, tracer: &Tracer) {
        tracer.emit(|| EventKind::CurveSnapshot {
            core,
            accesses: self.accesses,
            misses: self.misses.clone(),
        });
    }

    /// Mean absolute miss-*ratio* difference against another curve — the
    /// phase-change signal of the anti-thrash hysteresis layer.
    ///
    /// Both curves are sampled over the union of their way ranges
    /// ([`MissRatioCurve::misses_at`] clamps, so differing depths compare
    /// sensibly), and the comparison is on *ratios*, which makes the signal
    /// invariant to profiler decay and access-volume drift: only a change
    /// in the curve's **shape** — the workload's cache appetite — moves it.
    /// Returns 0.0 when either curve carries no accesses (no evidence of
    /// change is not evidence of change).
    pub fn relative_delta(&self, other: &MissRatioCurve) -> f64 {
        if self.accesses == 0.0 || other.accesses == 0.0 {
            return 0.0;
        }
        let ways = self.max_ways().max(other.max_ways());
        let mut sum = 0.0;
        for w in 0..=ways {
            let d = self.miss_ratio_at(w) - other.miss_ratio_at(w);
            // Corrupted inputs are sanitized upstream, but a NaN here must
            // not poison the whole signal: skip the sample instead.
            if d.is_finite() {
                sum += d.abs();
            }
        }
        sum / (ways + 1) as f64
    }

    /// Smallest allocation achieving (almost) the minimum attainable misses
    /// — a convenient summary of a workload's appetite ("knee").
    pub fn saturation_ways(&self, tolerance: f64) -> usize {
        let floor = self.misses_at(self.max_ways());
        let span = self.misses_at(0) - floor;
        if span <= 0.0 {
            return 0;
        }
        (0..=self.max_ways())
            .find(|&w| self.misses_at(w) - floor <= tolerance * span)
            .unwrap_or(self.max_ways())
    }
}

/// The per-epoch phase signal over a whole core set: the **maximum**
/// [`MissRatioCurve::relative_delta`] across paired curves. Max, not mean —
/// one core genuinely changing phase is reason enough to re-decide, and a
/// mean would let seven stationary cores mask it. Length mismatches
/// compare only the common prefix (a topology change has its own,
/// stronger signal: the bank mask).
pub fn curves_delta<
    A: std::borrow::Borrow<MissRatioCurve>,
    B: std::borrow::Borrow<MissRatioCurve>,
>(
    now: &[A],
    then: &[B],
) -> f64 {
    now.iter()
        .zip(then.iter())
        .map(|(a, b)| a.borrow().relative_delta(b.borrow()))
        .fold(0.0, f64::max)
}

/// Defect report for a [`MissRatioCurve`], produced by
/// [`MissRatioCurve::health`] and returned (pre-repair) by
/// [`MissRatioCurve::sanitize`]. Each field counts one class of violated
/// consumer invariant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CurveHealth {
    /// The curve has no points at all (not even the 0-way projection).
    pub empty: bool,
    /// Entries that are NaN or infinite.
    pub non_finite: usize,
    /// Entries below zero (misses cannot be negative).
    pub negative: usize,
    /// Entries strictly above the running minimum to their left
    /// (misses must be non-increasing in ways).
    pub non_monotone: usize,
    /// The accesses denominator is NaN, infinite or negative.
    pub bad_accesses: bool,
}

impl CurveHealth {
    /// No defects at all: [`MissRatioCurve::sanitize`] would be a no-op.
    pub fn is_clean(&self) -> bool {
        !self.empty
            && self.non_finite == 0
            && self.negative == 0
            && self.non_monotone == 0
            && !self.bad_accesses
    }

    /// Whether the (possibly repaired) curve carries any signal. An empty
    /// curve is patched to a single zero point, which consumers can read
    /// but should not trust.
    pub fn usable(&self) -> bool {
        !self.empty
    }

    /// Total defective entries (for fault-injection accounting).
    pub fn defects(&self) -> usize {
        self.non_finite
            + self.negative
            + self.non_monotone
            + usize::from(self.empty)
            + usize::from(self.bad_accesses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn knee_curve() -> MissRatioCurve {
        // 1000 accesses; misses drop linearly to a floor of 50 at 6 ways.
        let misses: Vec<f64> = (0..=16)
            .map(|w| {
                if w < 6 {
                    1000.0 - w as f64 * 158.0
                } else {
                    52.0
                }
            })
            .collect();
        MissRatioCurve::from_misses(misses, 1000.0)
    }

    #[test]
    fn from_histogram_projects() {
        let mut h = MsaHistogram::new(4);
        for _ in 0..10 {
            h.record(Some(0));
        }
        for _ in 0..6 {
            h.record(Some(2));
        }
        for _ in 0..4 {
            h.record(None);
        }
        let c = MissRatioCurve::from_histogram(&h, 1.0);
        assert_eq!(c.misses_at(0), 20.0);
        assert_eq!(c.misses_at(1), 10.0);
        assert_eq!(c.misses_at(2), 10.0);
        assert_eq!(c.misses_at(3), 4.0);
        assert_eq!(c.misses_at(4), 4.0);
        assert!((c.miss_ratio_at(4) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn scale_multiplies_counts() {
        let mut h = MsaHistogram::new(2);
        h.record(Some(0));
        h.record(None);
        let c = MissRatioCurve::from_histogram(&h, 32.0);
        assert_eq!(c.misses_at(0), 64.0);
        assert_eq!(c.accesses(), 64.0);
        // Ratios are invariant under scaling.
        assert!((c.miss_ratio_at(2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn deep_allocations_clamp() {
        let c = knee_curve();
        assert_eq!(c.misses_at(100), c.misses_at(16));
    }

    #[test]
    fn marginal_utility_definition() {
        let c = knee_curve();
        let mu = c.marginal_utility(0, 2);
        assert!((mu - (1000.0 - 684.0) / 2.0).abs() < 1e-9);
        assert_eq!(
            c.marginal_utility(8, 4),
            0.0,
            "flat region has zero utility"
        );
        assert_eq!(c.marginal_utility(3, 0), 0.0);
    }

    #[test]
    fn best_growth_sees_past_plateaus() {
        // Plateau then cliff: no gain for 3 ways, everything at the 4th.
        let misses = vec![100.0, 100.0, 100.0, 100.0, 0.0];
        let c = MissRatioCurve::from_misses(misses, 100.0);
        let (n, mu) = c.best_growth(0, 4).unwrap();
        assert_eq!(n, 4);
        assert!((mu - 25.0).abs() < 1e-12);
        // Greedy one-way scanning would have seen zero utility.
        assert_eq!(c.marginal_utility(0, 1), 0.0);
    }

    #[test]
    fn best_growth_respects_budget() {
        let misses = vec![100.0, 100.0, 100.0, 100.0, 0.0];
        let c = MissRatioCurve::from_misses(misses, 100.0);
        let (_, mu) = c.best_growth(0, 3).unwrap();
        assert_eq!(mu, 0.0, "the cliff at 4 is out of budget");
    }

    #[test]
    fn saturation_ways_finds_the_knee() {
        let c = knee_curve();
        assert_eq!(c.saturation_ways(0.01), 6);
        // A flat curve saturates immediately.
        let flat = MissRatioCurve::from_misses(vec![10.0; 9], 100.0);
        assert_eq!(flat.saturation_ways(0.01), 0);
    }

    #[test]
    fn health_is_clean_for_histogram_curves() {
        let mut h = MsaHistogram::new(4);
        h.record(Some(0));
        h.record(None);
        let c = MissRatioCurve::from_histogram(&h, 16.0);
        assert!(c.health().is_clean());
        let mut c2 = c.clone();
        assert!(c2.sanitize().is_clean());
        assert_eq!(c2, c, "sanitizing a clean curve is bit-identical");
    }

    #[test]
    fn sanitize_repairs_nan_and_spikes() {
        let mut c = MissRatioCurve::from_misses(vec![100.0, f64::NAN, 150.0, -3.0, 40.0], 1000.0);
        let before = c.sanitize();
        assert_eq!(before.non_finite, 1);
        assert_eq!(before.negative, 1);
        assert!(before.non_monotone >= 1, "the 150 spike");
        assert!(before.usable());
        // NaN inherited its predecessor, the spike flattened, the negative
        // clamped — and monotone thereafter.
        assert_eq!(c.misses_at(0), 100.0);
        assert_eq!(c.misses_at(1), 100.0);
        assert_eq!(c.misses_at(2), 100.0);
        assert_eq!(c.misses_at(3), 0.0);
        assert_eq!(c.misses_at(4), 0.0);
        assert!(c.health().is_clean());
    }

    #[test]
    fn sanitize_handles_nan_prefix_and_bad_accesses() {
        let mut c = MissRatioCurve::from_misses(vec![f64::NAN, 80.0, 60.0], f64::NAN);
        let before = c.sanitize();
        assert_eq!(before.non_finite, 1);
        assert!(before.bad_accesses);
        // The prefix inherits the first usable value: no fabricated cliff
        // between 0 and 1 ways.
        assert_eq!(c.misses_at(0), 80.0);
        assert_eq!(c.marginal_utility(0, 1), 0.0);
        assert_eq!(c.accesses(), 0.0);
        assert_eq!(c.miss_ratio_at(0), 0.0, "zero accesses ⇒ zero ratio");
        assert!(c.health().is_clean());
    }

    #[test]
    fn sanitize_patches_empty_curve_but_reports_unusable() {
        // `from_misses` refuses empty input, but corrupted serialized state
        // can smuggle one in.
        let mut c: MissRatioCurve =
            serde_json::from_str(r#"{"misses":[],"accesses":0.0}"#).unwrap();
        assert!(c.health().empty);
        let before = c.sanitize();
        assert!(!before.usable());
        assert_eq!(c.max_ways(), 0);
        assert_eq!(c.misses_at(0), 0.0);
        assert!(c.health().is_clean());
    }

    #[test]
    fn relative_delta_is_zero_for_identical_shapes() {
        let c = knee_curve();
        assert_eq!(c.relative_delta(&c), 0.0);
        // Decay scales misses and accesses together: the ratio shape — and
        // therefore the phase signal — is untouched.
        let decayed = MissRatioCurve::from_misses(
            (0..=c.max_ways()).map(|w| c.misses_at(w) * 0.5).collect(),
            c.accesses() * 0.5,
        );
        assert!(c.relative_delta(&decayed) < 1e-12);
    }

    #[test]
    fn relative_delta_sees_a_phase_flip() {
        // Hungry phase: misses fall steeply with ways. Streaming phase:
        // flat, cache-insensitive.
        let hungry = knee_curve();
        let streaming = MissRatioCurve::from_misses(vec![900.0; 17], 1000.0);
        let delta = hungry.relative_delta(&streaming);
        assert!(delta > 0.3, "phase flip must be loud: {delta}");
        assert_eq!(
            hungry.relative_delta(&streaming),
            streaming.relative_delta(&hungry),
            "the signal is symmetric"
        );
    }

    #[test]
    fn relative_delta_handles_empty_and_mismatched_depths() {
        let c = knee_curve();
        let silent = MissRatioCurve::from_misses(vec![0.0], 0.0);
        assert_eq!(c.relative_delta(&silent), 0.0, "no accesses ⇒ no signal");
        // Different depths clamp rather than panic.
        let shallow = MissRatioCurve::from_misses(vec![1000.0, 52.0], 1000.0);
        assert!(c.relative_delta(&shallow).is_finite());
    }

    #[test]
    fn curves_delta_takes_the_loudest_core() {
        let a = knee_curve();
        let b = MissRatioCurve::from_misses(vec![900.0; 17], 1000.0);
        let now = vec![a.clone(), b.clone()];
        let then = vec![a.clone(), a.clone()];
        let d = curves_delta(&now, &then);
        assert!((d - b.relative_delta(&a)).abs() < 1e-12);
        // All-stationary set is silent.
        assert_eq!(curves_delta(&now, &now), 0.0);
        // Empty sets are silent, not panicking.
        let none: Vec<MissRatioCurve> = vec![];
        assert_eq!(curves_delta(&none, &none), 0.0);
    }

    proptest! {
        #[test]
        fn relative_delta_bounded_for_sanitized_curves(
            raw_a in proptest::collection::vec(0.0f64..2000.0, 1..20),
            raw_b in proptest::collection::vec(0.0f64..2000.0, 1..20),
            acc_a in 1.0f64..1e6,
            acc_b in 1.0f64..1e6,
        ) {
            let mut a = MissRatioCurve::from_misses(raw_a, acc_a);
            let mut b = MissRatioCurve::from_misses(raw_b, acc_b);
            a.sanitize();
            b.sanitize();
            let d = a.relative_delta(&b);
            prop_assert!(d.is_finite());
            prop_assert!(d >= 0.0);
            prop_assert!(a.relative_delta(&a) == 0.0);
        }
    }

    proptest! {
        #[test]
        fn sanitized_curves_always_satisfy_consumer_invariants(
            raw in proptest::collection::vec(
                prop_oneof![
                    4 => -50.0f64..2000.0,
                    1 => Just(f64::NAN),
                    1 => Just(f64::INFINITY),
                    1 => Just(f64::NEG_INFINITY),
                ],
                1..20,
            ),
            accesses in prop_oneof![3 => 0.0f64..1e6, 1 => Just(f64::NAN)],
        ) {
            let mut c = MissRatioCurve::from_misses(raw, accesses);
            c.sanitize();
            prop_assert!(c.health().is_clean());
            for w in 0..c.max_ways() {
                prop_assert!(c.misses_at(w).is_finite());
                prop_assert!(c.misses_at(w) >= c.misses_at(w + 1));
                prop_assert!(c.marginal_utility(w, 1) >= 0.0);
            }
            prop_assert!(c.miss_ratio_at(0).is_finite());
        }
    }

    proptest! {
        #[test]
        fn marginal_utility_nonnegative_for_monotone_curves(
            drops in proptest::collection::vec(0.0f64..10.0, 8),
            current in 0usize..8,
            extra in 1usize..8,
        ) {
            // Build a monotone non-increasing curve from random drops.
            let mut misses = vec![100.0];
            for d in &drops {
                let last = *misses.last().unwrap();
                misses.push((last - d).max(0.0));
            }
            let c = MissRatioCurve::from_misses(misses, 100.0);
            prop_assert!(c.marginal_utility(current, extra) >= 0.0);
        }
    }
}

//! Mattson stack-distance (MSA) cache profiling (§III-A of the paper).
//!
//! The partitioning mechanism never inspects the cache itself: it consumes
//! per-core LRU *stack-distance histograms* collected by small hardware
//! profilers on the L2 access stream. By the LRU inclusion property, one
//! histogram predicts the miss count of *every* cache size at once, which is
//! what makes utility-based partitioning cheap.
//!
//! * [`histogram::MsaHistogram`] — the `K+1` counters of Fig. 2.
//! * [`profiler::StackProfiler`] — the profiler itself: per-set LRU tag
//!   stacks, optionally with *partial tags* (Kessler et al.) and *set
//!   sampling*, the two hardware-overhead reductions the paper adopts, plus
//!   the *maximum assignable capacity* cap (9/16 of the cache).
//! * [`curve::MissRatioCurve`] — projected misses as a function of allocated
//!   ways (Fig. 3), and the marginal-utility computation the allocation
//!   algorithm consumes.
//! * [`overhead::OverheadModel`] — the Table II storage equations.

pub mod curve;
pub mod fenwick;
pub mod histogram;
pub mod overhead;
pub mod profiler;

pub use curve::{curves_delta, CurveHealth, MissRatioCurve};
pub use histogram::MsaHistogram;
pub use overhead::OverheadModel;
pub use profiler::{EngineKind, ProfilerConfig, StackProfiler};

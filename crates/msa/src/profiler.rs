//! The hardware stack-distance profiler.
//!
//! A [`StackProfiler`] shadows the tag state of the monitored cache: for
//! each *sampled* set it tracks the LRU recency order of (possibly
//! partial) tags up to the maximum assignable depth `K`, and per access it
//! increments the histogram counter of the stack position touched
//! (Fig. 2).
//!
//! Two interchangeable engines compute the stack distance
//! ([`EngineKind`]):
//!
//! * **Naive** — a literal per-set LRU list, scanned linearly: O(K) per
//!   access. This models the hardware most directly and serves as the
//!   oracle in tests.
//! * **Fenwick** (default) — the [`crate::fenwick`] timestamp engine:
//!   hash map + binary-indexed tree, O(log K) per access, bit-identical
//!   histograms (property-tested against the naive engine over random
//!   streams, partial tags, sampling, depth caps and decay/reset
//!   interleavings).
//!
//! Three hardware-overhead reductions from §III-A are modelled faithfully,
//! including their error sources:
//!
//! * **partial tags** — tags truncated to `tag_bits` bits; distinct blocks
//!   may alias, inflating hit counts slightly;
//! * **set sampling** — only one in `sample_ratio` sets is monitored;
//! * **maximum assignable capacity** — the stack depth is capped at `K`
//!   (the paper uses 72 = 9/16 of the 128-way-equivalent cache).

use crate::fenwick::FenwickSet;
use crate::histogram::MsaHistogram;
use bap_types::BlockAddr;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Which stack-distance engine a profiler runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum EngineKind {
    /// Literal LRU list, O(K) per access — the test oracle.
    Naive,
    /// Timestamp hash map + Fenwick tree, O(log K) per access.
    #[default]
    Fenwick,
}

/// Profiler configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProfilerConfig {
    /// Number of sets of the monitored cache (power of two).
    pub num_sets: usize,
    /// Maximum monitored stack depth `K` (ways).
    pub max_ways: usize,
    /// Monitor one in `sample_ratio` sets (1 = every set).
    pub sample_ratio: usize,
    /// Tag truncation in bits; `None` = full tags.
    pub tag_bits: Option<u32>,
    /// Stack-distance engine (distances are bit-identical either way).
    #[serde(default)]
    pub engine: EngineKind,
}

impl ProfilerConfig {
    /// The paper's hardware configuration for the baseline machine:
    /// 2048 sets, 72-way depth (9/16 of 128), 1-in-32 sampling, 12-bit
    /// partial tags.
    pub fn paper_hardware(num_sets: usize) -> Self {
        ProfilerConfig {
            num_sets,
            max_ways: 72,
            sample_ratio: 32,
            tag_bits: Some(12),
            engine: EngineKind::default(),
        }
    }

    /// An idealised full-tag, all-sets reference profiler of depth `max_ways`.
    pub fn reference(num_sets: usize, max_ways: usize) -> Self {
        ProfilerConfig {
            num_sets,
            max_ways,
            sample_ratio: 1,
            tag_bits: None,
            engine: EngineKind::default(),
        }
    }

    /// The same configuration running the given engine.
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Number of monitored sets.
    pub fn sampled_sets(&self) -> usize {
        self.num_sets.div_ceil(self.sample_ratio)
    }
}

/// Per-set stack-distance state of one engine family.
#[derive(Clone, Debug)]
enum Engine {
    /// One LRU tag list per sampled set, MRU first, length ≤ `max_ways`.
    Naive(Vec<VecDeque<u64>>),
    /// One timestamp/Fenwick structure per sampled set.
    Fenwick(Vec<FenwickSet>),
}

impl Engine {
    fn new(kind: EngineKind, sampled_sets: usize, max_ways: usize) -> Self {
        match kind {
            EngineKind::Naive => Engine::Naive(vec![VecDeque::new(); sampled_sets]),
            EngineKind::Fenwick => Engine::Fenwick(
                (0..sampled_sets)
                    .map(|_| FenwickSet::new(max_ways))
                    .collect(),
            ),
        }
    }

    fn kind(&self) -> EngineKind {
        match self {
            Engine::Naive(_) => EngineKind::Naive,
            Engine::Fenwick(_) => EngineKind::Fenwick,
        }
    }

    /// Record one access; returns the stack distance (`None` = miss).
    #[inline]
    fn observe(&mut self, set: usize, tag: u64, max_ways: usize) -> Option<usize> {
        match self {
            Engine::Naive(stacks) => {
                let stack = &mut stacks[set];
                match stack.iter().position(|&t| t == tag) {
                    Some(pos) => {
                        // INVARIANT: `pos` came from `position()` over this
                        // very stack one line up, with `&mut self` held
                        // throughout, so the index is in bounds.
                        let t = stack.remove(pos).expect("position valid");
                        stack.push_front(t);
                        Some(pos)
                    }
                    None => {
                        stack.push_front(tag);
                        if stack.len() > max_ways {
                            stack.pop_back();
                        }
                        None
                    }
                }
            }
            Engine::Fenwick(sets) => sets[set].observe(tag, max_ways),
        }
    }

    fn clear(&mut self) {
        match self {
            Engine::Naive(stacks) => stacks.iter_mut().for_each(VecDeque::clear),
            Engine::Fenwick(sets) => sets.iter_mut().for_each(FenwickSet::clear),
        }
    }

    /// The logical LRU stacks (MRU first) — engine-independent state.
    fn stacks(&self) -> Vec<Vec<u64>> {
        match self {
            Engine::Naive(stacks) => stacks.iter().map(|s| s.iter().copied().collect()).collect(),
            Engine::Fenwick(sets) => sets.iter().map(FenwickSet::stack).collect(),
        }
    }

    fn from_stacks(kind: EngineKind, stacks: Vec<Vec<u64>>, max_ways: usize) -> Self {
        match kind {
            EngineKind::Naive => {
                Engine::Naive(stacks.into_iter().map(VecDeque::from_iter).collect())
            }
            EngineKind::Fenwick => Engine::Fenwick(
                stacks
                    .iter()
                    .map(|s| FenwickSet::from_stack(s, max_ways))
                    .collect(),
            ),
        }
    }
}

// Both engines serialize as the *logical* LRU stacks plus the engine tag,
// so serialized profilers are engine-portable and the Fenwick internals
// (hash map, tree, stale timestamp slots) never leak into persisted state.
impl Serialize for Engine {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("kind".to_string(), self.kind().to_value()),
            ("stacks".to_string(), self.stacks().to_value()),
        ])
    }
}

/// Deserialization helper: the engine alone cannot know `max_ways`, so
/// [`StackProfiler`]'s `Deserialize` impl rebuilds the engine itself from
/// this intermediate form.
#[derive(Deserialize)]
struct EngineRepr {
    kind: EngineKind,
    stacks: Vec<Vec<u64>>,
}

/// A per-core stack-distance profiler.
#[derive(Clone, Debug)]
pub struct StackProfiler {
    cfg: ProfilerConfig,
    engine: Engine,
    histogram: MsaHistogram,
    /// Accesses presented to the profiler (sampled or not).
    total_accesses: u64,
}

impl Serialize for StackProfiler {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("cfg".to_string(), self.cfg.to_value()),
            ("engine".to_string(), self.engine.to_value()),
            ("histogram".to_string(), self.histogram.to_value()),
            ("total_accesses".to_string(), self.total_accesses.to_value()),
        ])
    }
}

impl Deserialize for StackProfiler {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let cfg: ProfilerConfig = serde::from_field(v, "cfg")?;
        let repr: EngineRepr = serde::from_field(v, "engine")?;
        Ok(StackProfiler {
            engine: Engine::from_stacks(repr.kind, repr.stacks, cfg.max_ways),
            cfg,
            histogram: serde::from_field(v, "histogram")?,
            total_accesses: serde::from_field(v, "total_accesses")?,
        })
    }
}

impl StackProfiler {
    /// Build a profiler.
    pub fn new(cfg: ProfilerConfig) -> Self {
        assert!(cfg.num_sets.is_power_of_two());
        assert!(cfg.sample_ratio >= 1);
        assert!(cfg.max_ways >= 1);
        StackProfiler {
            engine: Engine::new(cfg.engine, cfg.sampled_sets(), cfg.max_ways),
            histogram: MsaHistogram::new(cfg.max_ways),
            cfg,
            total_accesses: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ProfilerConfig {
        &self.cfg
    }

    /// The engine in use.
    pub fn engine_kind(&self) -> EngineKind {
        self.engine.kind()
    }

    /// Observe one access of the monitored stream. Non-sampled sets are
    /// ignored (that is the sampling).
    #[inline]
    pub fn observe(&mut self, block: BlockAddr) {
        self.total_accesses += 1;
        let set = block.set_index(self.cfg.num_sets);
        if !set.is_multiple_of(self.cfg.sample_ratio) {
            return;
        }
        let stack_idx = set / self.cfg.sample_ratio;
        let tag = match self.cfg.tag_bits {
            Some(bits) => block.partial_tag(self.cfg.num_sets, bits),
            None => block.tag(self.cfg.num_sets),
        };
        let distance = self.engine.observe(stack_idx, tag, self.cfg.max_ways);
        self.histogram.record(distance);
    }

    /// The histogram accumulated so far.
    pub fn histogram(&self) -> &MsaHistogram {
        &self.histogram
    }

    /// Total accesses presented (including non-sampled ones).
    pub fn total_accesses(&self) -> u64 {
        self.total_accesses
    }

    /// Scale factor from sampled counts to whole-cache estimates
    /// (= `sample_ratio`).
    pub fn scale(&self) -> f64 {
        self.cfg.sample_ratio as f64
    }

    /// Epoch-boundary decay: halve the histogram. Tag stacks are kept so
    /// stack distances remain meaningful across epochs.
    pub fn decay(&mut self) {
        self.histogram.decay();
    }

    /// Full reset: counters and tag stacks.
    pub fn reset(&mut self) {
        self.histogram.reset();
        self.engine.clear();
        self.total_accesses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn reference(sets: usize, ways: usize) -> StackProfiler {
        StackProfiler::new(ProfilerConfig::reference(sets, ways))
    }

    #[test]
    fn repeated_access_is_mru_hit() {
        let mut p = reference(16, 8);
        let b = BlockAddr(0x40);
        p.observe(b); // cold miss
        p.observe(b); // MRU hit
        p.observe(b);
        assert_eq!(p.histogram().counters()[0], 2);
        assert_eq!(p.histogram().misses(), 1);
    }

    #[test]
    fn stack_distance_counts_distinct_intervening_blocks() {
        let mut p = reference(16, 8);
        // A, B, C, A: A's reuse distance is 2 (B and C in between).
        let set0 = |i: u64| BlockAddr(i * 16);
        p.observe(set0(1));
        p.observe(set0(2));
        p.observe(set0(3));
        p.observe(set0(1));
        assert_eq!(p.histogram().counters()[2], 1);
        assert_eq!(p.histogram().misses(), 3);
    }

    #[test]
    fn duplicate_intervening_blocks_do_not_deepen_distance() {
        let mut p = reference(16, 8);
        let set0 = |i: u64| BlockAddr(i * 16);
        // A, B, B, B, A: distance of the second A is 1.
        p.observe(set0(1));
        p.observe(set0(2));
        p.observe(set0(2));
        p.observe(set0(2));
        p.observe(set0(1));
        assert_eq!(p.histogram().counters()[1], 1);
    }

    #[test]
    fn depth_cap_turns_deep_reuse_into_misses() {
        let mut p = reference(16, 4);
        let set0 = |i: u64| BlockAddr(i * 16);
        // Touch 5 distinct blocks then re-touch the first: beyond depth 4.
        for i in 0..5 {
            p.observe(set0(i));
        }
        p.observe(set0(0));
        assert_eq!(p.histogram().misses(), 6);
        assert_eq!(p.histogram().hits_within(4), 0);
    }

    #[test]
    fn set_sampling_ignores_unsampled_sets() {
        let cfg = ProfilerConfig {
            num_sets: 16,
            max_ways: 4,
            sample_ratio: 4,
            tag_bits: None,
            engine: EngineKind::default(),
        };
        let mut p = StackProfiler::new(cfg);
        // Set 1 is not sampled (1 % 4 != 0).
        p.observe(BlockAddr(1));
        p.observe(BlockAddr(1));
        assert_eq!(p.histogram().accesses(), 0);
        assert_eq!(p.total_accesses(), 2);
        // Set 4 is sampled.
        p.observe(BlockAddr(4));
        assert_eq!(p.histogram().accesses(), 1);
    }

    #[test]
    fn partial_tags_can_alias() {
        let cfg = ProfilerConfig {
            num_sets: 16,
            max_ways: 8,
            sample_ratio: 1,
            tag_bits: Some(2),
            engine: EngineKind::default(),
        };
        let mut p = StackProfiler::new(cfg);
        // Two different blocks in set 0 whose tags agree in the low 2 bits:
        // tags 1 and 5 → both truncate to 1.
        p.observe(BlockAddr(1 << 4));
        p.observe(BlockAddr(5 << 4));
        // The second access falsely hits at MRU.
        assert_eq!(p.histogram().counters()[0], 1);
        assert_eq!(p.histogram().misses(), 1);
    }

    #[test]
    fn full_tags_do_not_alias() {
        let mut p = reference(16, 8);
        p.observe(BlockAddr(1 << 4));
        p.observe(BlockAddr(5 << 4));
        assert_eq!(p.histogram().misses(), 2);
    }

    #[test]
    fn paper_hardware_sampled_sets() {
        let cfg = ProfilerConfig::paper_hardware(2048);
        assert_eq!(cfg.sampled_sets(), 64);
        assert_eq!(cfg.max_ways, 72);
    }

    #[test]
    fn sampled_profile_approximates_reference() {
        // A synthetic stream with a known reuse structure, measured by the
        // reference profiler and by the paper's sampled hardware profiler:
        // the sampled miss *ratio* must track the reference closely.
        let sets = 256;
        let mut reference = StackProfiler::new(ProfilerConfig::reference(sets, 16));
        let mut sampled = StackProfiler::new(ProfilerConfig {
            num_sets: sets,
            max_ways: 16,
            sample_ratio: 8,
            tag_bits: Some(16),
            engine: EngineKind::default(),
        });
        let mut rng = StdRng::seed_from_u64(7);
        let footprint = 4096u64;
        for _ in 0..200_000 {
            // Zipf-ish: small working set touched often.
            let b = if rng.gen_bool(0.8) {
                rng.gen_range(0..footprint / 16)
            } else {
                rng.gen_range(0..footprint)
            };
            reference.observe(BlockAddr(b));
            sampled.observe(BlockAddr(b));
        }
        let ref_ratio =
            reference.histogram().misses() as f64 / reference.histogram().accesses() as f64;
        let smp_ratio = sampled.histogram().misses() as f64 / sampled.histogram().accesses() as f64;
        let err = (ref_ratio - smp_ratio).abs() / ref_ratio;
        assert!(
            err < 0.10,
            "sampling error too large: ref {ref_ratio:.4} vs sampled {smp_ratio:.4}"
        );
    }

    #[test]
    fn decay_halves_histogram_but_keeps_stacks() {
        let mut p = reference(16, 4);
        let b = BlockAddr(0);
        p.observe(b);
        p.observe(b);
        p.observe(b); // one cold miss, two MRU hits
        assert_eq!(p.histogram().counters()[0], 2);
        p.decay();
        assert_eq!(p.histogram().counters()[0], 1);
        // The stack still knows the block: next access is an MRU hit.
        p.observe(b);
        assert_eq!(p.histogram().counters()[0], 2);
    }

    #[test]
    fn reset_clears_everything() {
        for engine in [EngineKind::Naive, EngineKind::Fenwick] {
            let mut p = StackProfiler::new(ProfilerConfig::reference(16, 4).with_engine(engine));
            p.observe(BlockAddr(0));
            p.reset();
            assert_eq!(p.histogram().accesses(), 0);
            p.observe(BlockAddr(0));
            assert_eq!(
                p.histogram().misses(),
                1,
                "stack was cleared: cold miss again"
            );
        }
    }

    #[test]
    fn serde_roundtrip_preserves_stack_state() {
        for engine in [EngineKind::Naive, EngineKind::Fenwick] {
            let mut p = StackProfiler::new(ProfilerConfig::reference(16, 4).with_engine(engine));
            for i in [3u64, 7, 3, 11, 19, 7] {
                p.observe(BlockAddr(i << 4));
            }
            let json = serde_json::to_string(&p).expect("serializable");
            let mut q: StackProfiler = serde_json::from_str(&json).expect("roundtrip");
            assert_eq!(q.engine_kind(), engine);
            assert_eq!(q.histogram(), p.histogram());
            // Distances continue identically after the roundtrip.
            for i in [3u64, 19, 42, 7] {
                p.observe(BlockAddr(i << 4));
                q.observe(BlockAddr(i << 4));
            }
            assert_eq!(q.histogram(), p.histogram());
        }
    }

    /// One step of a cross-engine equivalence stream.
    #[derive(Clone, Copy, Debug)]
    enum Step {
        Observe(u64),
        Decay,
        Reset,
    }

    fn step_strategy(addr_space: u64) -> impl Strategy<Value = Step> {
        prop_oneof![
            40 => (0..addr_space).prop_map(Step::Observe),
            1 => Just(Step::Decay),
            1 => Just(Step::Reset),
        ]
    }

    proptest! {
        /// The defining equivalence of this PR's engine work: over random
        /// streams with partial tags, set sampling, small depth caps and
        /// interleaved decay/reset, the Fenwick engine's histogram is
        /// bit-identical to the naive oracle's at every step.
        #[test]
        fn engines_produce_bit_identical_histograms(
            steps in proptest::collection::vec(step_strategy(1 << 12), 1..400),
            sets_log in 2u32..5,
            max_ways in 1usize..9,
            sample_ratio in 1usize..4,
            tag_bits in prop_oneof![
                1 => Just(None),
                3 => (2u32..8).prop_map(Some),
            ],
        ) {
            let cfg = ProfilerConfig {
                num_sets: 1 << sets_log,
                max_ways,
                sample_ratio,
                tag_bits,
                engine: EngineKind::Naive,
            };
            let mut naive = StackProfiler::new(cfg);
            let mut fenwick = StackProfiler::new(cfg.with_engine(EngineKind::Fenwick));
            for step in steps {
                match step {
                    Step::Observe(b) => {
                        naive.observe(BlockAddr(b));
                        fenwick.observe(BlockAddr(b));
                    }
                    Step::Decay => {
                        naive.decay();
                        fenwick.decay();
                    }
                    Step::Reset => {
                        naive.reset();
                        fenwick.reset();
                    }
                }
                prop_assert_eq!(naive.histogram(), fenwick.histogram());
            }
            prop_assert_eq!(naive.total_accesses(), fenwick.total_accesses());
        }

        /// Long single-set streams with a tight address space force many
        /// Fenwick compactions (capacity 64 at small K): distances must
        /// survive every renumbering.
        #[test]
        fn engines_agree_across_compactions(
            blocks in proptest::collection::vec(0u64..24, 200..1200),
        ) {
            let cfg = ProfilerConfig::reference(1, 6).with_engine(EngineKind::Naive);
            let mut naive = StackProfiler::new(cfg);
            let mut fenwick = StackProfiler::new(cfg.with_engine(EngineKind::Fenwick));
            for &b in &blocks {
                naive.observe(BlockAddr(b));
                fenwick.observe(BlockAddr(b));
            }
            prop_assert_eq!(naive.histogram(), fenwick.histogram());
        }

        /// The profiler's projected misses at the monitored cache's true
        /// associativity must exactly match a real LRU cache of that
        /// associativity simulated on the same stream (full tags, no
        /// sampling) — MSA's defining property. Checked for both engines.
        #[test]
        fn projection_matches_real_lru_cache(blocks in proptest::collection::vec(0u64..256, 1..500)) {
            use std::collections::VecDeque;
            let sets = 8usize;
            let ways = 4usize;
            for engine in [EngineKind::Naive, EngineKind::Fenwick] {
                let mut p = StackProfiler::new(
                    ProfilerConfig::reference(sets, 8).with_engine(engine));
                let mut cache: Vec<VecDeque<u64>> = vec![VecDeque::new(); sets];
                let mut real_misses = 0u64;
                for &raw in &blocks {
                    let b = BlockAddr(raw);
                    p.observe(b);
                    let set = &mut cache[b.set_index(sets)];
                    if let Some(pos) = set.iter().position(|&t| t == raw) {
                        set.remove(pos);
                        set.push_front(raw);
                    } else {
                        real_misses += 1;
                        set.push_front(raw);
                        set.truncate(ways);
                    }
                }
                prop_assert_eq!(p.histogram().misses_at(ways), real_misses);
            }
        }
    }
}

//! The O(log K) stack-distance engine.
//!
//! The naive engine walks a per-set LRU list on every access — O(K) at the
//! paper's K = 72 monitored depth, which dominates the Fig. 7 library
//! build (26 workloads × 20 M instructions). This engine computes the same
//! *exact* stack distance from three per-set structures:
//!
//! * a flat open-addressed index from (possibly partial) tag → timestamp
//!   of its last access;
//! * a bitmap over timestamps, one bit per still-live block;
//! * a Fenwick (binary-indexed) tree over the bitmap's 64-timestamp
//!   words, counting live blocks per word.
//!
//! The stack distance of a re-accessed block is the number of *distinct*
//! blocks touched since its last access — exactly the count of live
//! timestamps newer than its own, i.e. `live − prefix(ts)`, where
//! `prefix` is an O(log n) Fenwick sum over complete words plus one
//! popcount of the partial word. Evicting beyond the depth cap K is
//! "clear the lowest live timestamp": a binary-indexed descent to the
//! first word with a live bit, then trailing-zeros, and an O(1) hop
//! through the timestamp → slot index to delete the victim's table entry.
//!
//! Being asymptotically fast is not enough to beat an O(K) scan of
//! contiguous memory that the hardware prefetcher hides — the layout has
//! to match the asymptotics, so every array is sized by the *live* block
//! count (≤ K + 1), not by some larger universe:
//!
//! * tags live inside the probe table (`slot_tag`/`slot_ts` parallel
//!   arrays indexed by the same probe slot, fetched in parallel), so a
//!   lookup costs one dependent cache line, not a probe plus a detour
//!   through a timestamp-indexed tag array;
//! * bitmap and tree share one allocation ([`FenwickSet::ws`]): at
//!   K = 72 the whole recency state outside the table is ~90 bytes, one
//!   or two cache lines;
//! * the whole per-set footprint is ~2 KB — the same order as the naive
//!   engine's `VecDeque` — where a hash map + per-timestamp tree costs
//!   kilobytes more and loses its asymptotic win to cache misses.
//!
//! Timestamps grow without bound, so when the space fills up the set is
//! *compacted*: live blocks are renumbered `0..live` in recency order,
//! which preserves every relative order and therefore every future
//! distance. Partial-tag aliasing is preserved exactly because the index
//! is keyed on the same truncated tag the naive engine stores in its
//! list.

/// Timestamp slack factor: each set's timestamp space holds
/// `COMPACT_SLACK × K` slots (min [`MIN_CAPACITY`], rounded up to whole
/// 64-bit words) before a compaction renumbers the live blocks. Larger
/// values amortise compaction further at the cost of a wider bitmap and
/// timestamp → slot index.
const COMPACT_SLACK: usize = 4;

/// Floor on the per-set timestamp capacity, so tiny depth caps still
/// compact rarely.
const MIN_CAPACITY: usize = 64;

/// Slot markers of the open-addressed tag index. Real timestamps stay
/// below both (capacity is asserted to fit).
const EMPTY: u16 = u16::MAX;
const TOMB: u16 = u16::MAX - 1;

/// One monitored set's fast stack-distance state.
#[derive(Clone, Debug)]
pub(crate) struct FenwickSet {
    /// Tag of each probe slot (valid only where `slot_ts` holds a live
    /// timestamp). Linear probing, power-of-two length.
    slot_tag: Vec<u64>,
    /// Timestamp of each probe slot, or [`EMPTY`]/[`TOMB`].
    slot_ts: Vec<u16>,
    /// Bitmap words `[0, nw)` then 1-based Fenwick nodes `[nw, 2·nw]`
    /// (node `i` at `ws[nw + i]`; `ws[nw]` is the unused node 0).
    ws: Vec<u64>,
    /// Number of bitmap words (= capacity / 64).
    nw: usize,
    /// Top-bits-of-hash shift for the probe start.
    hash_shift: u32,
    /// Tombstoned slots (table-rebuild trigger).
    tombs: usize,
    /// Timestamp slots before the next compaction (multiple of 64).
    capacity: u32,
    /// Live blocks (≤ the depth cap).
    live: u32,
    /// Next timestamp to hand out.
    next_ts: u32,
}

impl FenwickSet {
    /// An empty set sized for depth cap `max_ways`.
    pub(crate) fn new(max_ways: usize) -> Self {
        let capacity = (max_ways * COMPACT_SLACK).max(MIN_CAPACITY).div_ceil(64) * 64;
        assert!(
            capacity < TOMB as usize,
            "depth cap too large for u16 slots"
        );
        let slot_count = ((max_ways + 2) * 3 / 2).next_power_of_two();
        let nw = capacity / 64;
        FenwickSet {
            slot_tag: vec![0; slot_count],
            slot_ts: vec![EMPTY; slot_count],
            ws: vec![0; 2 * nw + 1],
            nw,
            hash_shift: 64 - slot_count.trailing_zeros(),
            tombs: 0,
            capacity: capacity as u32,
            live: 0,
            next_ts: 0,
        }
    }

    /// Observe one access of `tag` under depth cap `max_ways`. Returns the
    /// exact LRU stack distance (`None` = not on the stack: a miss of the
    /// `max_ways`-deep monitored cache), identical to the naive engine's
    /// linear scan.
    #[inline]
    pub(crate) fn observe(&mut self, tag: u64, max_ways: usize) -> Option<usize> {
        if self.next_ts == self.capacity {
            self.compact();
        }
        // One probe serves lookup, in-place update and insert. The hit
        // test folds tag equality and slot liveness into one branch —
        // the overwhelmingly common first-probe hit takes it immediately
        // (an EMPTY/TOMB slot holds a stale tag, hence the `ts < TOMB`
        // guard inside the same predicate).
        let mask = self.slot_ts.len() - 1;
        let mut idx = self.probe_start(tag);
        let mut insert_at = usize::MAX;
        let hit = loop {
            let ts = self.slot_ts[idx];
            if self.slot_tag[idx] == tag && ts < TOMB {
                break true;
            }
            if ts == EMPTY {
                break false;
            }
            if ts == TOMB && insert_at == usize::MAX {
                insert_at = idx;
            }
            idx = (idx + 1) & mask;
        };
        let new_ts = self.next_ts;
        self.next_ts += 1;
        if hit {
            // Blocks touched since `tag`'s last access = live blocks with
            // a newer timestamp. `prefix` includes `tag` itself, still
            // live at this point, so the subtraction is exact.
            let old_ts = self.slot_ts[idx] as u32;
            let d = self.live - self.prefix(old_ts);
            self.clear_bit(old_ts);
            self.set_bit(new_ts);
            self.slot_ts[idx] = new_ts as u16;
            Some(d as usize)
        } else {
            let slot = if insert_at != usize::MAX {
                self.tombs -= 1;
                insert_at
            } else {
                idx
            };
            self.slot_tag[slot] = tag;
            self.slot_ts[slot] = new_ts as u16;
            self.set_bit(new_ts);
            self.live += 1;
            if self.live as usize > max_ways {
                // Depth cap: drop the LRU block — the lowest live
                // timestamp. Its slot comes from one vectorizable scan
                // of the small timestamp array; keeping a timestamp →
                // slot index up to date instead would cost a write on
                // *every* access to pay only on misses.
                let victim = self.first_live();
                self.clear_bit(victim);
                self.live -= 1;
                let vslot = self.slot_of(victim);
                self.slot_ts[vslot] = TOMB;
                self.tombs += 1;
                if self.live as usize + self.tombs > self.slot_ts.len() * 3 / 4 {
                    self.rebuild_table();
                }
            }
            None
        }
    }

    /// Forget everything (the profiler's full reset).
    pub(crate) fn clear(&mut self) {
        self.slot_ts.fill(EMPTY);
        self.ws.fill(0);
        self.tombs = 0;
        self.live = 0;
        self.next_ts = 0;
    }

    /// Live tags in MRU-first order — the logical LRU stack, as the naive
    /// engine would store it. Used for serialization and cross-engine
    /// checks.
    pub(crate) fn stack(&self) -> Vec<u64> {
        let ts_to_slot = self.timestamp_slots();
        let mut tags: Vec<u64> = self
            .live_timestamps()
            .map(|ts| self.slot_tag[ts_to_slot[ts] as usize])
            .collect();
        tags.reverse();
        tags
    }

    /// Rebuild a set from a logical MRU-first stack (deserialization).
    pub(crate) fn from_stack(tags: &[u64], max_ways: usize) -> Self {
        let mut set = FenwickSet::new(max_ways.max(tags.len()));
        // Oldest first, so recency order (and every future distance)
        // matches the serialized stack.
        for &tag in tags.iter().rev() {
            let ts = set.next_ts;
            set.next_ts += 1;
            set.insert_fresh(tag, ts);
            set.set_bit(ts);
            set.live += 1;
        }
        set
    }

    /// Iterate the live timestamps in ascending (LRU → MRU) order.
    fn live_timestamps(&self) -> impl Iterator<Item = usize> + '_ {
        self.ws[..self.nw]
            .iter()
            .enumerate()
            .flat_map(|(w, &word)| {
                std::iter::successors((word != 0).then_some(word), |b| {
                    let b = b & (b - 1);
                    (b != 0).then_some(b)
                })
                .map(move |b| w * 64 + b.trailing_zeros() as usize)
            })
    }

    /// Renumber live blocks `0..live` in recency order. Relative order is
    /// untouched, so distances are too; everything stale is dropped.
    fn compact(&mut self) {
        let ts_to_slot = self.timestamp_slots();
        let order: Vec<usize> = self
            .live_timestamps()
            .map(|ts| ts_to_slot[ts] as usize)
            .collect();
        for w in self.ws.iter_mut() {
            *w = 0;
        }
        self.next_ts = 0;
        for &slot in &order {
            let ts = self.next_ts;
            self.next_ts += 1;
            self.slot_ts[slot] = ts as u16;
            self.set_bit(ts);
        }
    }

    /// Purge tombstones by re-inserting every live block (insertion order
    /// only changes probe layout, never semantics).
    fn rebuild_table(&mut self) {
        let entries: Vec<(u64, u16)> = self
            .slot_ts
            .iter()
            .enumerate()
            .filter(|&(_, &ts)| ts < TOMB)
            .map(|(slot, &ts)| (self.slot_tag[slot], ts))
            .collect();
        self.slot_ts.fill(EMPTY);
        self.tombs = 0;
        for (tag, ts) in entries {
            self.insert_fresh(tag, ts as u32);
        }
    }

    /// Probe slot currently holding live timestamp `ts` — one linear pass
    /// over the compact timestamp array (eviction path only).
    fn slot_of(&self, ts: u32) -> usize {
        // INVARIANT: callers pass a timestamp read out of the live bitmap,
        // and every live bit is set exactly when `insert_fresh` wrote that
        // timestamp into `slot_ts` (cleared again in lockstep on evict /
        // compact), so the scan always finds it. Not reachable from
        // deserialized state either: restore rebuilds the bitmap from
        // `slot_ts` itself.
        self.slot_ts
            .iter()
            .position(|&t| t == ts as u16)
            .expect("live timestamp has a slot")
    }

    /// Transient timestamp → slot map (compaction / serialization only;
    /// entries outside live timestamps are garbage).
    fn timestamp_slots(&self) -> Vec<u16> {
        let mut map = vec![0u16; self.capacity as usize];
        for (slot, &ts) in self.slot_ts.iter().enumerate() {
            if ts < TOMB {
                map[ts as usize] = slot as u16;
            }
        }
        map
    }

    /// First probe slot of `tag` (top bits of a multiplicative hash — the
    /// tags are block addresses, already well spread by one odd multiply).
    #[inline]
    fn probe_start(&self, tag: u64) -> usize {
        (tag.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> self.hash_shift) as usize
    }

    /// Insert into a table known not to contain `tag` (compaction,
    /// rebuild, deserialization): first free slot wins.
    fn insert_fresh(&mut self, tag: u64, ts: u32) {
        let mask = self.slot_ts.len() - 1;
        let mut idx = self.probe_start(tag);
        while self.slot_ts[idx] != EMPTY && self.slot_ts[idx] != TOMB {
            idx = (idx + 1) & mask;
        }
        self.slot_tag[idx] = tag;
        self.slot_ts[idx] = ts as u16;
    }

    #[inline]
    fn set_bit(&mut self, ts: u32) {
        let w = (ts / 64) as usize;
        self.ws[w] |= 1 << (ts % 64);
        let mut i = w + 1;
        while i <= self.nw {
            self.ws[self.nw + i] += 1;
            i += i & i.wrapping_neg();
        }
    }

    #[inline]
    fn clear_bit(&mut self, ts: u32) {
        let w = (ts / 64) as usize;
        self.ws[w] &= !(1 << (ts % 64));
        let mut i = w + 1;
        while i <= self.nw {
            self.ws[self.nw + i] -= 1;
            i += i & i.wrapping_neg();
        }
    }

    /// Live blocks with timestamp ≤ `ts`: Fenwick prefix over the
    /// complete words below, plus a popcount of the partial word.
    #[inline]
    fn prefix(&self, ts: u32) -> u32 {
        let w = (ts / 64) as usize;
        let mut sum = (self.ws[w] & (u64::MAX >> (63 - ts % 64))).count_ones();
        let mut i = w;
        while i > 0 {
            sum += self.ws[self.nw + i] as u32;
            i -= i & i.wrapping_neg();
        }
        sum
    }

    /// The lowest live timestamp: binary-indexed descent to the first
    /// word holding a live block, then trailing-zeros within it (caller
    /// guarantees at least one live block).
    fn first_live(&self) -> u32 {
        let mut pos = 0usize;
        let mut step = (self.nw + 1).next_power_of_two() / 2;
        while step > 0 {
            let next = pos + step;
            if next <= self.nw && self.ws[self.nw + next] == 0 {
                pos = next;
            }
            step >>= 1;
        }
        debug_assert!(pos < self.nw, "no live block to evict");
        (pos * 64) as u32 + self.ws[pos].trailing_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances_match_a_hand_worked_sequence() {
        let mut s = FenwickSet::new(8);
        assert_eq!(s.observe(1, 8), None);
        assert_eq!(s.observe(2, 8), None);
        assert_eq!(s.observe(3, 8), None);
        assert_eq!(s.observe(1, 8), Some(2)); // 2 and 3 in between
        assert_eq!(s.observe(1, 8), Some(0)); // MRU hit
        assert_eq!(s.observe(2, 8), Some(2)); // 1 and 3 more recent
    }

    #[test]
    fn depth_cap_evicts_lru() {
        let mut s = FenwickSet::new(2);
        s.observe(1, 2);
        s.observe(2, 2);
        s.observe(3, 2); // evicts 1
        assert_eq!(s.observe(1, 2), None, "evicted block is a miss again");
        assert_eq!(s.stack().len(), 2);
    }

    #[test]
    fn compaction_preserves_distances() {
        let mut s = FenwickSet::new(4);
        // Enough traffic to force several compactions (capacity = 64).
        for _round in 0..50 {
            for t in 0..4u64 {
                s.observe(t, 4);
            }
        }
        // 0,1,2,3 cycled: each re-access sees the 3 others in between.
        assert_eq!(s.observe(0, 4), Some(3));
        assert_eq!(s.stack(), vec![0, 3, 2, 1]);
    }

    #[test]
    fn tombstones_are_purged_under_eviction_pressure() {
        // A long all-miss stream over a tiny cap piles up tombstones and
        // forces both table rebuilds and compactions; hits must still
        // resolve afterwards.
        let mut s = FenwickSet::new(3);
        for t in 0..500u64 {
            assert_eq!(s.observe(t, 3), None, "all-distinct stream only misses");
        }
        assert_eq!(s.stack(), vec![499, 498, 497]);
        assert_eq!(s.observe(498, 3), Some(1));
    }

    #[test]
    fn stack_roundtrip() {
        let mut s = FenwickSet::new(8);
        for t in [5u64, 9, 5, 2, 7] {
            s.observe(t, 8);
        }
        let stack = s.stack();
        assert_eq!(stack, vec![7, 2, 5, 9]);
        let mut rebuilt = FenwickSet::from_stack(&stack, 8);
        // Same distances after the roundtrip.
        assert_eq!(rebuilt.observe(9, 8), Some(3));
        assert_eq!(s.observe(9, 8), Some(3));
    }

    #[test]
    fn clear_forgets_everything() {
        let mut s = FenwickSet::new(4);
        s.observe(1, 4);
        s.clear();
        assert_eq!(s.observe(1, 4), None);
        assert_eq!(s.stack(), vec![1]);
    }
}

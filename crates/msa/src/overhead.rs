//! Hardware storage-overhead model for the MSA profiler (Table II).
//!
//! The paper's Table II gives the storage equations for the three profiler
//! structures; this module implements them so the experiment binary can
//! regenerate the table for any configuration:
//!
//! | Structure        | Equation                                               |
//! |------------------|--------------------------------------------------------|
//! | Partial tags     | `tag_width × ways × sampled_sets`                       |
//! | LRU stack        | `((ptr_bits × ways) + head/tail) × sampled_sets`        |
//! | Hit counters     | `ways × counter_bits` (shared across sets)              |
//!
//! With the paper's parameters (12-bit tags, 72 ways, 2048 sets sampled
//! 1-in-32, 6-bit LRU pointers, 32-bit counters) this reproduces the 54 /
//! ≈27 / 2.25 kbit rows and the ≈0.4–0.5 % of the 16 MB LLC total.

use serde::{Deserialize, Serialize};

/// Parameters of the overhead model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct OverheadModel {
    /// Partial-tag width in bits.
    pub tag_bits: u64,
    /// Monitored stack depth (ways).
    pub ways: u64,
    /// Total sets of the monitored cache.
    pub num_sets: u64,
    /// 1-in-N set sampling.
    pub sample_ratio: u64,
    /// Bits per LRU stack pointer.
    pub lru_ptr_bits: u64,
    /// Bits per hit counter.
    pub counter_bits: u64,
    /// Number of profilers on chip (one per core).
    pub num_profilers: u64,
}

impl OverheadModel {
    /// The paper's configuration for the 8-core, 16 MB baseline.
    pub fn paper() -> Self {
        OverheadModel {
            tag_bits: 12,
            ways: 72,
            num_sets: 2048,
            sample_ratio: 32,
            lru_ptr_bits: 6,
            counter_bits: 32,
            num_profilers: 8,
        }
    }

    /// Monitored sets after sampling.
    pub fn sampled_sets(&self) -> u64 {
        self.num_sets.div_ceil(self.sample_ratio)
    }

    /// Partial-tag storage in bits: `tag_width × ways × sampled_sets`.
    pub fn partial_tag_bits(&self) -> u64 {
        self.tag_bits * self.ways * self.sampled_sets()
    }

    /// LRU stack storage in bits:
    /// `((ptr × ways) + head + tail) × sampled_sets`.
    pub fn lru_stack_bits(&self) -> u64 {
        ((self.lru_ptr_bits * self.ways) + 2 * self.lru_ptr_bits) * self.sampled_sets()
    }

    /// Hit-counter storage in bits: `ways × counter_bits` (the counters are
    /// shared over all sampled sets).
    pub fn hit_counter_bits(&self) -> u64 {
        self.ways * self.counter_bits
    }

    /// Total bits for one profiler.
    pub fn total_bits_per_profiler(&self) -> u64 {
        self.partial_tag_bits() + self.lru_stack_bits() + self.hit_counter_bits()
    }

    /// Total bits across all profilers.
    pub fn total_bits(&self) -> u64 {
        self.total_bits_per_profiler() * self.num_profilers
    }

    /// Overhead as a fraction of an LLC with `llc_bytes` of data storage.
    pub fn fraction_of_llc(&self, llc_bytes: u64) -> f64 {
        self.total_bits() as f64 / (llc_bytes as f64 * 8.0)
    }
}

/// Kibibits, the unit Table II reports.
pub fn kbits(bits: u64) -> f64 {
    bits as f64 / 1024.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_partial_tags_row() {
        // 12 × 72 × 64 = 55 296 bits = 54 kbits — exactly Table II.
        let m = OverheadModel::paper();
        assert_eq!(m.sampled_sets(), 64);
        assert_eq!(m.partial_tag_bits(), 55_296);
        assert!((kbits(m.partial_tag_bits()) - 54.0).abs() < 1e-9);
    }

    #[test]
    fn paper_lru_stack_row() {
        // ((6 × 72) + 12) × 64 = 28 416 bits ≈ 27.75 kbits (Table II: 27).
        let m = OverheadModel::paper();
        assert_eq!(m.lru_stack_bits(), 28_416);
        let k = kbits(m.lru_stack_bits());
        assert!((27.0..28.0).contains(&k), "{k}");
    }

    #[test]
    fn paper_hit_counter_row() {
        // 72 × 32 = 2304 bits = 2.25 kbits — exactly Table II.
        let m = OverheadModel::paper();
        assert_eq!(m.hit_counter_bits(), 2_304);
        assert!((kbits(m.hit_counter_bits()) - 2.25).abs() < 1e-9);
    }

    #[test]
    fn paper_total_fraction() {
        // ≈84 kbits per profiler × 8 profilers against a 16 MB LLC: the
        // paper reports ≈0.4 %; the equations give ≈0.5 % of data bits.
        let m = OverheadModel::paper();
        let frac = m.fraction_of_llc(16 * 1024 * 1024);
        assert!(frac > 0.003 && frac < 0.006, "fraction {frac}");
    }

    #[test]
    fn full_tag_configuration_is_far_larger() {
        // Without partial tags and sampling the shadow directory is
        // prohibitive — the motivation for the reductions.
        let full = OverheadModel {
            tag_bits: 28,
            sample_ratio: 1,
            ..OverheadModel::paper()
        };
        let paper = OverheadModel::paper();
        assert!(full.total_bits() > 50 * paper.total_bits());
    }

    #[test]
    fn sampled_sets_rounds_up() {
        let m = OverheadModel {
            num_sets: 100,
            sample_ratio: 32,
            ..OverheadModel::paper()
        };
        assert_eq!(m.sampled_sets(), 4);
    }
}

//! The MSA histogram: `K+1` counters over LRU stack distances (Fig. 2).
//!
//! `counter[d]` for `d < K` counts accesses that hit at stack distance `d`
//! (0 = MRU); `counter[K]` counts accesses beyond the monitored depth —
//! misses of a `K`-way cache.

use serde::{Deserialize, Serialize};

/// Stack-distance histogram for a `K`-way monitored depth.
///
/// ```
/// use bap_msa::MsaHistogram;
///
/// let mut h = MsaHistogram::new(4);
/// h.record(Some(0)); // an MRU hit
/// h.record(Some(3)); // a hit at the LRU edge
/// h.record(None);    // a miss
/// // A 4-way cache hits twice; a 2-way cache loses the distance-3 hit.
/// assert_eq!(h.misses_at(4), 1);
/// assert_eq!(h.misses_at(2), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MsaHistogram {
    /// `K+1` counters; the last is the miss counter.
    counters: Vec<u64>,
}

impl MsaHistogram {
    /// A zeroed histogram with monitored depth `ways`.
    pub fn new(ways: usize) -> Self {
        assert!(ways >= 1);
        MsaHistogram {
            counters: vec![0; ways + 1],
        }
    }

    /// Monitored depth `K`.
    pub fn ways(&self) -> usize {
        self.counters.len() - 1
    }

    /// Record an access at stack distance `distance` (`None` = beyond depth,
    /// i.e. a miss of the `K`-way cache).
    #[inline]
    pub fn record(&mut self, distance: Option<usize>) {
        match distance {
            Some(d) if d < self.ways() => self.counters[d] += 1,
            // INVARIANT: `new(ways)` allocates `ways + 1` counters and no
            // path ever shrinks the vector, so the miss counter exists.
            _ => *self.counters.last_mut().expect("non-empty") += 1,
        }
    }

    /// Raw counter values (`K+1` entries, miss counter last).
    pub fn counters(&self) -> &[u64] {
        &self.counters
    }

    /// Total recorded accesses.
    pub fn accesses(&self) -> u64 {
        self.counters.iter().sum()
    }

    /// Hits at distance strictly less than `ways` — the hits of a cache with
    /// that many ways (LRU inclusion property).
    pub fn hits_within(&self, ways: usize) -> u64 {
        self.counters[..ways.min(self.ways())].iter().sum()
    }

    /// Projected misses of a cache with `ways` ways: everything that did not
    /// hit within the first `ways` stack positions.
    pub fn misses_at(&self, ways: usize) -> u64 {
        self.accesses() - self.hits_within(ways)
    }

    /// Misses of the full monitored depth (the raw miss counter).
    pub fn misses(&self) -> u64 {
        // INVARIANT: see `record` — the counter vector is never empty.
        *self.counters.last().expect("non-empty")
    }

    /// Halve every counter — the exponential decay applied at epoch
    /// boundaries so the profile tracks phase changes without forgetting
    /// everything.
    pub fn decay(&mut self) {
        for c in &mut self.counters {
            *c >>= 1;
        }
    }

    /// Zero all counters.
    pub fn reset(&mut self) {
        self.counters.fill(0);
    }

    /// Element-wise accumulate another histogram of the same depth.
    pub fn merge(&mut self, other: &MsaHistogram) {
        assert_eq!(self.ways(), other.ways(), "histogram depths must match");
        for (a, b) in self.counters.iter_mut().zip(other.counters.iter()) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn record_and_project() {
        let mut h = MsaHistogram::new(8);
        // Fig. 2-style: heavy MRU reuse.
        for _ in 0..50 {
            h.record(Some(0));
        }
        for _ in 0..10 {
            h.record(Some(5));
        }
        for _ in 0..5 {
            h.record(None);
        }
        assert_eq!(h.accesses(), 65);
        assert_eq!(h.misses(), 5);
        // A 8-way cache misses 5; a 4-way cache additionally misses the
        // distance-5 hits.
        assert_eq!(h.misses_at(8), 5);
        assert_eq!(h.misses_at(4), 15);
        assert_eq!(h.misses_at(0), 65);
    }

    #[test]
    fn distances_beyond_depth_count_as_misses() {
        let mut h = MsaHistogram::new(4);
        h.record(Some(4));
        h.record(Some(100));
        h.record(None);
        assert_eq!(h.misses(), 3);
    }

    #[test]
    fn decay_halves() {
        let mut h = MsaHistogram::new(2);
        for _ in 0..10 {
            h.record(Some(0));
        }
        h.record(None);
        h.decay();
        assert_eq!(h.counters(), &[5, 0, 0]);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = MsaHistogram::new(2);
        let mut b = MsaHistogram::new(2);
        a.record(Some(0));
        b.record(Some(0));
        b.record(None);
        a.merge(&b);
        assert_eq!(a.counters(), &[2, 0, 1]);
    }

    #[test]
    fn reset_zeroes() {
        let mut h = MsaHistogram::new(2);
        h.record(Some(1));
        h.reset();
        assert_eq!(h.accesses(), 0);
    }

    proptest! {
        /// Misses must be monotonically non-increasing in allocated ways —
        /// the fundamental property the whole mechanism relies on.
        #[test]
        fn misses_monotone_in_ways(counts in proptest::collection::vec(0u64..1000, 9)) {
            let mut h = MsaHistogram::new(8);
            for (d, &n) in counts.iter().enumerate() {
                for _ in 0..n.min(50) {
                    h.record(if d < 8 { Some(d) } else { None });
                }
            }
            for w in 0..8 {
                prop_assert!(h.misses_at(w) >= h.misses_at(w + 1));
            }
        }

        /// hits_within + misses_at always partition the accesses.
        #[test]
        fn hits_and_misses_partition(counts in proptest::collection::vec(0u64..100, 9), w in 0usize..=8) {
            let mut h = MsaHistogram::new(8);
            for (d, &n) in counts.iter().enumerate() {
                for _ in 0..n {
                    h.record(if d < 8 { Some(d) } else { None });
                }
            }
            prop_assert_eq!(h.hits_within(w) + h.misses_at(w), h.accesses());
        }
    }
}

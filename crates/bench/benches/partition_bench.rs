//! Criterion micro-benchmarks of the partitioning algorithms themselves —
//! the repartitioning work done at every epoch boundary, which the paper
//! argues is cheap enough for a 100 M-cycle cadence.

use bap_core::{bank_aware_partition, unrestricted_partition, BankAwareConfig};
use bap_msa::MissRatioCurve;
use bap_types::Topology;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

/// Eight synthetic curves with assorted knees (what the profilers yield).
fn curves() -> Vec<MissRatioCurve> {
    (0..8)
        .map(|c| {
            let knee = 4 + c * 9;
            let misses: Vec<f64> = (0..=72)
                .map(|w| {
                    if w >= knee {
                        50.0
                    } else {
                        5000.0 - (5000.0 - 50.0) * w as f64 / knee as f64
                    }
                })
                .collect();
            MissRatioCurve::from_misses(misses, 5000.0)
        })
        .collect()
}

fn bench_unrestricted(c: &mut Criterion) {
    let curves = curves();
    c.bench_function("unrestricted_partition", |b| {
        b.iter(|| black_box(unrestricted_partition(black_box(&curves), 128, 1, 72)))
    });
}

fn bench_bank_aware(c: &mut Criterion) {
    let curves = curves();
    let topo = Topology::baseline();
    let cfg = BankAwareConfig::default();
    c.bench_function("bank_aware_partition", |b| {
        b.iter(|| black_box(bank_aware_partition(black_box(&curves), &topo, 8, &cfg)))
    });
}

criterion_group!(benches, bench_unrestricted, bench_bank_aware);
criterion_main!(benches);

//! Criterion micro-benchmarks of workload generation: order-statistic
//! treap operations and end-to-end stream throughput.

use bap_workloads::{spec_by_name, AddressStream, LruStack};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_treap(c: &mut Criterion) {
    let mut stack = LruStack::new(7);
    for v in 0..100_000u64 {
        stack.push_front(v);
    }
    let mut i = 0usize;
    c.bench_function("lru_stack_touch_deep", |b| {
        b.iter(|| {
            i = (i * 31 + 7) % 90_000;
            black_box(stack.touch_at(i))
        })
    });
}

fn bench_stream(c: &mut Criterion) {
    let spec = spec_by_name("mcf").expect("catalog");
    let mut stream = AddressStream::new(spec, 2048, 1, 3);
    c.bench_function("address_stream_next", |b| {
        b.iter(|| black_box(stream.next()))
    });
}

criterion_group!(benches, bench_treap, bench_stream);
criterion_main!(benches);

//! Criterion micro-benchmarks of the cache substrate: single-bank access,
//! DNUCA access under each mode, and partition-plan application.

use bap_cache::{AccessKind, AggregationScheme, BankAllocation, CacheBank, DnucaL2, PartitionPlan};
use bap_types::{BankId, BlockAddr, CacheGeometry, CoreId, Topology};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bank_geom() -> CacheGeometry {
    CacheGeometry::new(256 * 8 * 64, 8, 64)
}

fn bench_bank_access(c: &mut Criterion) {
    let mut bank = CacheBank::new(BankId(0), bank_geom(), 8);
    // Warm a working set.
    for i in 0..1024u64 {
        bank.access(BlockAddr(i), CoreId(0), AccessKind::Read);
        bank.fill_unrestricted(BlockAddr(i), CoreId(0), false);
    }
    let mut i = 0u64;
    c.bench_function("bank_access_hit", |b| {
        b.iter(|| {
            i = (i + 1) % 1024;
            black_box(bank.access(BlockAddr(i), CoreId(0), AccessKind::Read))
        })
    });
}

fn dnuca(mode: &str) -> DnucaL2 {
    let mut l2 = DnucaL2::new(16, bank_geom(), 8);
    match mode {
        "dnuca" => l2.set_shared_dnuca(&Topology::baseline(), 2),
        "static" => l2.set_shared_static(),
        _ => {
            let plan = PartitionPlan::equal(8, 16, 8);
            l2.apply_plan(plan, AggregationScheme::Parallel);
        }
    }
    l2
}

fn bench_dnuca_modes(c: &mut Criterion) {
    for mode in ["dnuca", "static", "partitioned"] {
        let mut l2 = dnuca(mode);
        let mut i = 0u64;
        c.bench_function(format!("l2_access_{mode}"), |b| {
            b.iter(|| {
                i = i.wrapping_add(0x9E37_79B9);
                let core = CoreId((i % 8) as u16);
                black_box(l2.access(BlockAddr(i % 65_536), core, AccessKind::Read))
            })
        });
    }
}

fn bench_plan_application(c: &mut Criterion) {
    let mut l2 = DnucaL2::new(16, bank_geom(), 8);
    let mut plan = PartitionPlan::empty(8, 16, 8);
    for core in 0..8 {
        plan.per_core[core] = vec![
            BankAllocation {
                bank: BankId(core as u16),
                ways: 8,
            },
            BankAllocation {
                bank: BankId(8 + core as u16),
                ways: 8,
            },
        ];
    }
    c.bench_function("apply_plan", |b| {
        b.iter(|| l2.apply_plan(black_box(plan.clone()), AggregationScheme::Parallel))
    });
}

criterion_group!(
    benches,
    bench_bank_access,
    bench_dnuca_modes,
    bench_plan_application,
    coherence_bench::bench_directory
);
criterion_main!(benches);

// ---- appended: coherence directory micro-bench ----
mod coherence_bench {
    use super::*;
    use bap_coherence::{Directory, Request, ShardedDirectory};

    pub fn bench_directory(c: &mut Criterion) {
        let mut d = Directory::new();
        let mut i = 0u64;
        c.bench_function("directory_get_s", |b| {
            b.iter(|| {
                i = i.wrapping_add(1);
                black_box(d.request(CoreId((i % 8) as u16), BlockAddr(i % 4096), Request::GetS))
            })
        });
        let mut sharded = ShardedDirectory::new(16);
        c.bench_function("sharded_directory_get_s", |b| {
            b.iter(|| {
                i = i.wrapping_add(1);
                black_box(sharded.request(
                    CoreId((i % 8) as u16),
                    BlockAddr(i % 4096),
                    Request::GetS,
                ))
            })
        });
    }
}

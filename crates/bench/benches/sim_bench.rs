//! Criterion benchmark of whole-system simulation throughput
//! (instructions simulated per wall-clock second drives every experiment's
//! runtime budget).

use bap_core::Policy;
use bap_system::{SimOptions, System};
use bap_types::SystemConfig;
use bap_workloads::spec_by_name;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_system_run(c: &mut Criterion) {
    let specs: Vec<_> = [
        "mcf", "twolf", "art", "sixtrack", "gcc", "gap", "vpr", "eon",
    ]
    .iter()
    .map(|n| spec_by_name(n).expect("catalog"))
    .collect();
    let mut group = c.benchmark_group("system");
    group.sample_size(10);
    for policy in [Policy::NoPartition, Policy::BankAware] {
        group.bench_function(format!("run_100k_insts_{policy:?}"), |b| {
            b.iter(|| {
                let mut opts = SimOptions::new(SystemConfig::scaled(64), policy);
                opts.warmup_instructions = 0;
                opts.measure_instructions = 100_000 / 8;
                black_box(System::new(opts, specs.clone()).run())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_system_run);
criterion_main!(benches);

//! Criterion micro-benchmarks of the MSA profiler: observe throughput for
//! the reference and hardware configurations, and curve construction.

use bap_msa::{EngineKind, MissRatioCurve, ProfilerConfig, StackProfiler};
use bap_types::BlockAddr;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_observe(c: &mut Criterion) {
    for (label, cfg) in [
        ("reference", ProfilerConfig::reference(2048, 72)),
        ("hardware", ProfilerConfig::paper_hardware(2048)),
    ] {
        for engine in [EngineKind::Naive, EngineKind::Fenwick] {
            let mut p = StackProfiler::new(cfg.with_engine(engine));
            let mut i = 0u64;
            c.bench_function(format!("profiler_observe_{label}_{engine:?}"), |b| {
                b.iter(|| {
                    i = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
                    p.observe(black_box(BlockAddr(i % 300_000)));
                })
            });
        }
    }
}

/// Deep-reuse pattern: every set holds `K` resident tags and each access
/// hits the deepest (distance K − 1), isolating engine compute cost — the
/// case the Fenwick engine's O(log K) prefix sum accelerates over the
/// naive O(K) scan. `bench_baseline` records the same pattern in
/// `BENCH_profiler.json`; this is the interactive view of it.
fn bench_observe_deep(c: &mut Criterion) {
    let sets = 2048usize;
    for k in [72u64, 128] {
        for engine in [EngineKind::Naive, EngineKind::Fenwick] {
            let cfg = ProfilerConfig::reference(sets, k as usize).with_engine(engine);
            let mut p = StackProfiler::new(cfg);
            let block = |t: u64, s: usize| BlockAddr((t << sets.trailing_zeros()) | s as u64);
            // Tag-major population leaves tag k−1 on top of every stack,
            // so cycling t = 0, 1, … afterwards always hits the bottom.
            for t in 0..k {
                for s in 0..sets {
                    p.observe(block(t, s));
                }
            }
            let (mut t, mut s) = (0u64, 0usize);
            c.bench_function(format!("profiler_observe_deep_k{k}_{engine:?}"), |b| {
                b.iter(|| {
                    p.observe(black_box(block(t, s)));
                    t += 1;
                    if t == k {
                        t = 0;
                        s = (s + 1) % sets;
                    }
                })
            });
        }
    }
}

fn bench_curve_build(c: &mut Criterion) {
    let mut p = StackProfiler::new(ProfilerConfig::reference(2048, 72));
    let mut i = 0u64;
    for _ in 0..500_000 {
        i = i.wrapping_add(0x9E37_79B9);
        p.observe(BlockAddr(i % 100_000));
    }
    c.bench_function("curve_from_histogram", |b| {
        b.iter(|| black_box(MissRatioCurve::from_histogram(p.histogram(), 1.0)))
    });
}

fn bench_banked_dram(c: &mut Criterion) {
    use bap_dram::{BankedDram, BankedDramConfig};
    let mut d = BankedDram::new(BankedDramConfig::default());
    let mut i = 0u64;
    c.bench_function("banked_dram_read", |b| {
        b.iter(|| {
            i = i.wrapping_add(37);
            black_box(d.read_block(bap_types::BlockAddr(i % 1_000_000), i))
        })
    });
}

criterion_group!(
    benches,
    bench_observe,
    bench_observe_deep,
    bench_curve_build,
    bench_banked_dram
);
criterion_main!(benches);

//! Criterion micro-benchmarks of the MSA profiler: observe throughput for
//! the reference and hardware configurations, and curve construction.

use bap_msa::{MissRatioCurve, ProfilerConfig, StackProfiler};
use bap_types::BlockAddr;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_observe(c: &mut Criterion) {
    for (label, cfg) in [
        ("reference", ProfilerConfig::reference(2048, 72)),
        ("hardware", ProfilerConfig::paper_hardware(2048)),
    ] {
        let mut p = StackProfiler::new(cfg);
        let mut i = 0u64;
        c.bench_function(format!("profiler_observe_{label}"), |b| {
            b.iter(|| {
                i = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
                p.observe(black_box(BlockAddr(i % 300_000)));
            })
        });
    }
}

fn bench_curve_build(c: &mut Criterion) {
    let mut p = StackProfiler::new(ProfilerConfig::reference(2048, 72));
    let mut i = 0u64;
    for _ in 0..500_000 {
        i = i.wrapping_add(0x9E37_79B9);
        p.observe(BlockAddr(i % 100_000));
    }
    c.bench_function("curve_from_histogram", |b| {
        b.iter(|| black_box(MissRatioCurve::from_histogram(p.histogram(), 1.0)))
    });
}

fn bench_banked_dram(c: &mut Criterion) {
    use bap_dram::{BankedDram, BankedDramConfig};
    let mut d = BankedDram::new(BankedDramConfig::default());
    let mut i = 0u64;
    c.bench_function("banked_dram_read", |b| {
        b.iter(|| {
            i = i.wrapping_add(37);
            black_box(d.read_block(bap_types::BlockAddr(i % 1_000_000), i))
        })
    });
}

criterion_group!(benches, bench_observe, bench_curve_build, bench_banked_dram);
criterion_main!(benches);

//! Workload-mix construction for the evaluation.

use bap_workloads::{spec_by_name, workload_names, WorkloadSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draw one random 8-workload mix (with repetition), as in §IV-A.
pub fn random_mix(rng: &mut StdRng, num_cores: usize) -> Vec<String> {
    let names = workload_names();
    (0..num_cores)
        .map(|_| names[rng.gen_range(0..names.len())].clone())
        .collect()
}

/// Draw the paper's 1000 Monte Carlo mixes deterministically from a seed.
pub fn monte_carlo_mixes(seed: u64, count: usize, num_cores: usize) -> Vec<Vec<String>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| random_mix(&mut rng, num_cores))
        .collect()
}

/// The eight detailed-simulation sets. The paper drew its Table III sets
/// randomly from the Monte Carlo pool; we do the same (seed-pinned) so
/// Table III / Figs. 8–9 use a reproducible selection.
pub fn table3_sets(seed: u64) -> Vec<Vec<String>> {
    monte_carlo_mixes(seed ^ 0x7ab1e3, 8, 8)
}

/// Resolve a mix of names into specs.
pub fn resolve(mix: &[String]) -> Vec<WorkloadSpec> {
    mix.iter()
        .map(|n| spec_by_name(n).unwrap_or_else(|| panic!("unknown workload {n}")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixes_are_deterministic() {
        assert_eq!(monte_carlo_mixes(1, 5, 8), monte_carlo_mixes(1, 5, 8));
        assert_ne!(monte_carlo_mixes(1, 5, 8), monte_carlo_mixes(2, 5, 8));
    }

    #[test]
    fn mixes_have_the_right_shape() {
        let mixes = monte_carlo_mixes(42, 10, 8);
        assert_eq!(mixes.len(), 10);
        for m in &mixes {
            assert_eq!(m.len(), 8);
            resolve(m); // must all resolve
        }
    }

    #[test]
    fn table3_sets_are_eight_mixes() {
        let sets = table3_sets(42);
        assert_eq!(sets.len(), 8);
    }
}

//! Shared experiment plumbing: argument parsing, result persistence.

use serde::Serialize;
use std::path::{Path, PathBuf};

/// Common experiment arguments (parsed from `std::env::args`).
#[derive(Clone, Debug)]
pub struct Args {
    /// Master seed (`--seed N`), default 42.
    pub seed: u64,
    /// Geometry scale divisor for detailed sims (`--scale N`), default 8.
    pub scale: u64,
    /// Quick mode (`--quick`): shrink budgets ~10× for smoke runs.
    pub quick: bool,
    /// Shared-DNUCA chain depth override (`--chain N`).
    pub chain: Option<usize>,
    /// Number of independent seeds for statistics (`--seeds N`, default 1).
    pub seeds: u64,
    /// Core-count sweep override for scalability runs
    /// (`--cores 8,16,32`). `None` = the experiment's default ladder.
    pub cores: Option<Vec<usize>>,
    /// Regression-gate mode (`--check`): compare against the committed
    /// baseline and exit non-zero on a regression.
    pub check: bool,
}

impl Args {
    /// Parse from the process arguments.
    pub fn parse() -> Args {
        let mut args = Args {
            seed: 42,
            scale: 8,
            quick: false,
            chain: None,
            seeds: 1,
            cores: None,
            check: false,
        };
        let argv: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < argv.len() {
            match argv[i].as_str() {
                "--seed" => {
                    i += 1;
                    args.seed = argv[i].parse().expect("--seed takes an integer");
                }
                "--scale" => {
                    i += 1;
                    args.scale = argv[i].parse().expect("--scale takes an integer");
                }
                "--quick" => args.quick = true,
                "--chain" => {
                    i += 1;
                    args.chain = Some(argv[i].parse().expect("--chain takes an integer"));
                }
                "--seeds" => {
                    i += 1;
                    args.seeds = argv[i].parse().expect("--seeds takes an integer");
                    assert!(args.seeds >= 1, "--seeds must be at least 1");
                }
                "--cores" => {
                    i += 1;
                    let list: Vec<usize> = argv[i]
                        .split(',')
                        .map(|c| c.parse().expect("--cores takes a comma-separated list"))
                        .collect();
                    assert!(!list.is_empty(), "--cores needs at least one core count");
                    args.cores = Some(list);
                }
                "--check" => args.check = true,
                other => panic!("unknown argument {other}"),
            }
            i += 1;
        }
        args
    }
}

/// The `results/` directory at the workspace root (created on demand).
pub fn results_dir() -> PathBuf {
    let dir = workspace_root().join("results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

fn workspace_root() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench → two levels up.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root exists")
        .to_path_buf()
}

/// Persist an experiment result as pretty JSON under `results/`.
pub fn write_json<T: Serialize>(name: &str, value: &T) -> PathBuf {
    let path = results_dir().join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialisable");
    std::fs::write(&path, json).expect("write results file");
    path
}

/// Load a previously written result, if present.
pub fn read_json<T: serde::de::DeserializeOwned>(name: &str) -> Option<T> {
    let path = results_dir().join(format!("{name}.json"));
    let data = std::fs::read_to_string(path).ok()?;
    serde_json::from_str(&data).ok()
}

/// Render one row of a fixed-width table.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

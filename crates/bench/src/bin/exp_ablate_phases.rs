//! Dynamic-adaptation ablation — phase-changing workloads.
//!
//! The paper repartitions every 100 M cycles and decays the profilers so
//! the assignment tracks program phases. This experiment builds a mix of
//! phase-alternating workloads (cache-hungry ↔ cache-quiet, staggered
//! across cores) and compares the fully dynamic Bank-aware controller
//! against a frozen one-shot Bank-aware plan and static Equal partitions.

use bap_bench::common::{write_json, Args};
use bap_bench::detailed::sim_options;
use bap_core::Policy;
use bap_system::sim::OpStream;
use bap_system::System;
use bap_workloads::{spec_by_name, Phase, PhasedStream, ScanComponent, WorkloadSpec};
use rayon::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct PhaseRow {
    configuration: String,
    misses: u64,
    miss_ratio: f64,
    mean_cpi: f64,
    epochs: u64,
}

/// Per-core phased streams: a rotating "hungry token". The eight cores
/// form four adjacent pairs; each pair is deep-reuse-hungry (mgrid-like,
/// ≈40 ways) during its slot of a four-slot rotation and near-idle
/// otherwise. At any instant exactly two cores are hungry, so a tracking
/// allocator can always serve them — a frozen plan serves only the pair
/// that was hungry when it froze.
fn streams(args: &Args, slot_insts: u64) -> Vec<OpStream> {
    let blocks_per_way = bap_types::SystemConfig::scaled(args.scale).l2_bank_sets() as u64;
    // A fast-cycling 24-way loop: bigger than an equal share (16 ways) but
    // small enough that several loop iterations fit in one slot, so the
    // profiler can see the cliff while the phase is live.
    let hungry = WorkloadSpec {
        name: "hotloop".into(),
        components: vec![bap_workloads::ReuseComponent {
            lo_ways: 0.0,
            hi_ways: 0.25,
            weight: 0.85,
        }],
        scans: vec![ScanComponent {
            ways: 24.0,
            weight: 0.13,
        }],
        compulsory: 0.003,
        mem_fraction: 0.38,
        write_fraction: 0.2,
        dependent_fraction: 0.1,
        footprint_ways: 48.0,
    };
    hungry.validate().expect("valid hot loop");
    (0..8u64)
        .map(|c| {
            let hungry = hungry.clone();
            let quiet = spec_by_name("eon").expect("catalog");
            let slot = c / 2; // pair index 0..4
            let mut phases = Vec::new();
            if slot > 0 {
                phases.push(Phase {
                    spec: quiet.clone(),
                    instructions: slot * slot_insts,
                });
            }
            phases.push(Phase {
                spec: hungry,
                instructions: slot_insts,
            });
            if slot < 3 {
                phases.push(Phase {
                    spec: quiet,
                    instructions: (3 - slot) * slot_insts,
                });
            }
            Box::new(PhasedStream::new(
                phases,
                blocks_per_way,
                c + 1,
                args.seed ^ c,
            )) as OpStream
        })
        .collect()
}

fn main() {
    let args = Args::parse();
    let base = sim_options(&args, Policy::BankAware);
    // Two full rotations over warm-up + measurement, each slot several
    // repartitioning epochs long.
    let slot_insts = (base.warmup_instructions + base.measure_instructions) / 8;

    let configs: Vec<(&str, Policy, Option<u64>)> = vec![
        ("equal (static)", Policy::Equal, None),
        ("bank-aware frozen", Policy::BankAware, Some(2)),
        ("bank-aware dynamic", Policy::BankAware, None),
    ];
    let rows: Vec<PhaseRow> = configs
        .par_iter()
        .map(|&(label, policy, freeze)| {
            let mut opts = sim_options(&args, policy);
            opts.freeze_plan_after = freeze;
            // Phase tracking requires several epochs per slot (the paper's
            // regime: program phases ≫ 100 M-cycle epochs). At CPI ≈ 2 a
            // slot lasts ≈ 2 × slot_insts cycles; fire ~6 epochs per slot.
            opts.config.epoch_cycles = (slot_insts / 3).max(10_000);
            let r = System::with_streams(opts, streams(&args, slot_insts)).run();
            PhaseRow {
                configuration: label.to_string(),
                misses: r.total_l2_misses(),
                miss_ratio: r.l2_miss_ratio(),
                mean_cpi: r.mean_cpi(),
                epochs: r.epochs,
            }
        })
        .collect();

    println!("Phase-adaptation ablation (rotating hungry-pair token, 24-way hot loop ↔ eon)");
    println!(
        "{:>20} {:>10} {:>11} {:>8} {:>8}",
        "configuration", "misses", "miss ratio", "CPI", "epochs"
    );
    for r in &rows {
        println!(
            "{:>20} {:>10} {:>11.3} {:>8.3} {:>8}",
            r.configuration, r.misses, r.miss_ratio, r.mean_cpi, r.epochs
        );
    }
    println!("\nexpected: dynamic bank-aware tracks the swaps and beats both");
    println!("the frozen plan and static equal partitions.");
    let path = write_json("ablate_phases", &rows);
    println!("wrote {}", path.display());
}

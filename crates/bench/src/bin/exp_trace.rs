//! exp_trace — decision-trace dump + offline replay gate for the canonical
//! Fig. 7 mix (mcf, twolf, art, sixtrack, gcc, gap, vpr, eon).
//!
//! Runs the traced analytic profiler and the detailed simulator under
//! Bank-aware partitioning with a JSONL sink attached, then:
//!
//! 1. writes the raw event ledger to `results/trace_fig7.jsonl`;
//! 2. re-parses it through [`bap_trace::parse_jsonl`], failing on any
//!    schema-invalid line, non-increasing sequence number or backwards
//!    epoch;
//! 3. **replays** every Bank-aware solve offline: rebuilds each epoch's
//!    sanitized curves from their [`EventKind::CurveSnapshot`] payloads,
//!    re-runs the allocation algorithm, and requires the replayed way
//!    assignment to match the recorded `AssignmentComputed` *and* the
//!    `PlanInstalled` that follows, exactly;
//! 4. writes the per-run decision summary to `results/trace_summary.json`.
//!
//! Any divergence exits non-zero — this is the CI gate proving the trace
//! is a faithful, self-sufficient record of the controller's decisions.

use bap_bench::common::{results_dir, write_json, Args};
use bap_core::{try_bank_aware_partition, BankAwareConfig, Policy};
use bap_msa::{MissRatioCurve, ProfilerConfig};
use bap_system::{profile_workloads_traced, SimOptions, System};
use bap_trace::{parse_jsonl, EventKind, TraceEvent, TraceSummary, Tracer};
use bap_types::{BankId, BankMask, CoreId, DegradedTopology, SystemConfig, Topology};
use bap_workloads::{spec_by_name, WorkloadSpec};
use serde::Serialize;
use std::collections::BTreeMap;

/// The canonical Fig. 7 mix: four cache-hungry SPEC analogues and four
/// modest ones, the paper's showcase skew.
const MIX: [&str; 8] = [
    "mcf", "twolf", "art", "sixtrack", "gcc", "gap", "vpr", "eon",
];

#[derive(Serialize)]
struct TraceReport {
    mix: Vec<String>,
    events: usize,
    jsonl_bytes: usize,
    solves_replayed: usize,
    replayed_exactly: bool,
    stage_nanos: BTreeMap<String, u64>,
    summary: TraceSummary,
}

fn mix_specs() -> Vec<WorkloadSpec> {
    MIX.iter()
        .map(|n| spec_by_name(n).expect("catalog"))
        .collect()
}

/// Replay every Bank-aware solve recorded in `events` and check each
/// against the `AssignmentComputed` / `PlanInstalled` events that follow.
/// Returns the number of solves replayed, or an error naming the first
/// divergence.
fn replay_solves(events: &[TraceEvent], cfg: &SystemConfig) -> Result<usize, String> {
    let topo = Topology::new(cfg.num_cores, cfg.l2_min_latency, cfg.l2_max_latency);
    let bank_ways = cfg.l2.bank.ways;
    let ba_cfg = BankAwareConfig::default();
    let mut mask = BankMask::all_healthy(cfg.l2.num_banks);
    // Latest sanitized curve snapshot per core, within the current epoch.
    let mut snapshots: Vec<Option<MissRatioCurve>> = vec![None; cfg.num_cores];
    let mut replayed = 0usize;
    // The assignment awaiting its PlanInstalled confirmation.
    let mut pending_install: Option<(u64, Vec<usize>)> = None;

    for ev in events {
        match &ev.kind {
            EventKind::EpochBegin => snapshots = vec![None; cfg.num_cores],
            EventKind::CurveSnapshot {
                core,
                accesses,
                misses,
            } if ev.epoch > 0 => {
                // Epoch 0 holds the analytic profiles, which feed no solve.
                snapshots[*core] = Some(MissRatioCurve::from_misses(misses.clone(), *accesses));
            }
            EventKind::BankOffline { bank, .. } => {
                mask.disable(BankId(*bank as u16));
            }
            EventKind::BankRestored { bank } => {
                mask.enable(BankId(*bank as u16));
            }
            EventKind::AssignmentComputed { policy, ways } if policy == "bank_aware" => {
                let curves: Vec<MissRatioCurve> = snapshots
                    .iter()
                    .map(|s| {
                        s.clone().ok_or_else(|| {
                            format!("epoch {}: solve without a full curve set", ev.epoch)
                        })
                    })
                    .collect::<Result<_, _>>()?;
                let machine = DegradedTopology::new(topo.clone(), mask);
                let plan = try_bank_aware_partition(&curves, &machine, bank_ways, &ba_cfg)
                    .map_err(|e| format!("epoch {}: replayed solve failed: {e}", ev.epoch))?;
                let replayed_ways: Vec<usize> = (0..cfg.num_cores)
                    .map(|c| plan.ways_of(CoreId(c as u16)))
                    .collect();
                if &replayed_ways != ways {
                    return Err(format!(
                        "epoch {}: replayed assignment {replayed_ways:?} != recorded {ways:?}",
                        ev.epoch
                    ));
                }
                replayed += 1;
                pending_install = Some((ev.epoch, ways.clone()));
            }
            EventKind::PlanInstalled { ways, .. } => {
                if let Some((epoch, expected)) = pending_install.take() {
                    if ways != &expected {
                        return Err(format!(
                            "epoch {epoch}: installed plan {ways:?} != computed assignment \
                             {expected:?}"
                        ));
                    }
                }
            }
            _ => {}
        }
    }
    if replayed == 0 {
        return Err("trace contains no Bank-aware solves to replay".to_string());
    }
    Ok(replayed)
}

fn main() {
    let args = Args::parse();
    let cfg = SystemConfig::scaled(args.scale.max(8));
    let specs = mix_specs();
    let tracer = Tracer::jsonl(true);

    // Stage 1: stand-alone profiles (the analytic pipeline), traced.
    let profile_instructions = if args.quick { 200_000 } else { 2_000_000 };
    eprintln!("profiling the mix ({profile_instructions} instructions each)...");
    let pcfg = ProfilerConfig::reference(cfg.l2_bank_sets(), 72);
    profile_workloads_traced(&specs, &cfg, pcfg, profile_instructions, args.seed, &tracer);

    // Stage 2: the detailed simulator with the same tracer attached.
    let mut opts = SimOptions::new(cfg.clone(), Policy::BankAware);
    opts.seed = args.seed;
    // Warm starts stay replay-exact at the default zero threshold: a reused
    // cluster sub-plan is bit-identical to what a full solve would produce,
    // so gate 2 below doubles as the incremental-solver fidelity check.
    opts.control = opts.control.with_warm_starts();
    opts.config.epoch_cycles = if args.quick { 60_000 } else { 250_000 };
    opts.warmup_instructions = if args.quick { 50_000 } else { 200_000 };
    opts.measure_instructions = if args.quick { 150_000 } else { 1_000_000 };
    eprintln!(
        "simulating the mix under Bank-aware partitioning ({} instructions/core)...",
        opts.measure_instructions
    );
    let mut system = System::new(opts.clone(), specs);
    system.set_tracer(tracer.clone());
    let result = system.run();

    // Dump the ledger.
    let jsonl = tracer.take_output().expect("jsonl sink buffers text");
    let path = results_dir().join("trace_fig7.jsonl");
    std::fs::write(&path, &jsonl).expect("write trace file");
    println!("wrote {} ({} bytes)", path.display(), jsonl.len());

    // Gate 1: the dump must re-parse under the strict schema.
    let events = match parse_jsonl(&jsonl) {
        Ok(ev) => ev,
        Err(e) => {
            eprintln!("FAIL: trace is schema-invalid: {e}");
            std::process::exit(1);
        }
    };
    println!("parsed {} schema-valid events", events.len());

    // Gate 2: offline replay must reproduce every installed plan.
    let solves = match replay_solves(&events, &opts.config) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("FAIL: replay diverged: {e}");
            std::process::exit(1);
        }
    };
    println!("replayed {solves} Bank-aware solves exactly");

    // Per-stage wall-clock totals out of the timing channel, plus the bank
    // masks the solver was timed under (stamped on every solve event).
    let mut stage_nanos: BTreeMap<String, u64> = BTreeMap::new();
    let mut masks_seen: Vec<u64> = Vec::new();
    for ev in &events {
        if let EventKind::StageTiming { stage, nanos, mask } = &ev.kind {
            *stage_nanos.entry(stage.clone()).or_insert(0) += nanos;
            if *stage == "solve" && *mask != 0 && !masks_seen.contains(mask) {
                masks_seen.push(*mask);
            }
        }
    }
    for (stage, nanos) in &stage_nanos {
        println!("stage {stage:>16}: {:.3} ms total", *nanos as f64 / 1e6);
    }
    for mask in &masks_seen {
        println!("solve timed under bank mask {mask:#06x}");
    }

    let summary = result.trace.expect("traced run carries a summary");
    println!(
        "decisions: {} events over {} epochs — {} center grants, {} local grants, \
         {} pairs, {} shares, {} rule rejections, {} plans installed",
        summary.events,
        summary.epochs,
        summary.center_grants,
        summary.local_grants,
        summary.pairs_formed,
        summary.shares_taken,
        summary.rules_rejected,
        summary.plans_installed,
    );

    let report = TraceReport {
        mix: MIX.iter().map(|s| s.to_string()).collect(),
        events: events.len(),
        jsonl_bytes: jsonl.len(),
        solves_replayed: solves,
        replayed_exactly: true,
        stage_nanos,
        summary,
    };
    let path = write_json("trace_summary", &report);
    println!("wrote {}", path.display());
}

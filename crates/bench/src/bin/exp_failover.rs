//! Seeded chaos bench for replicated `bap serve`: kill -9 the primary
//! mid-flood, promote the follower, and prove the guarantees the
//! replication tier sells — the failover tier's proving run.
//!
//! Three scenarios run in sequence, all on in-process `Server` pairs so
//! the kill point is exact and reproducible from the seed:
//!
//! * **Divergence** — a follower joins a primary that has already
//!   re-anchored its bounded log (cold join = checkpoint + suffix),
//!   catches up to the primary's exact tick and plan fingerprints, then a
//!   single bit is flipped in one shipped session digest. The follower's
//!   replay cross-check must report the divergence and refuse promotion
//!   with the pinned `divergence` code.
//! * **Failover** — client threads flood `call_with_retry` against a
//!   `[primary, follower]` replica list; mid-flood the primary is killed
//!   *after* shipping a batch but *before* answering it (the durability
//!   window), the follower is promoted, and the flood finishes against
//!   it. Verdicts: **zero acknowledged-decision loss** (no client call
//!   gives up, every retried id is answered exactly once), the surviving
//!   answer stream is **byte-identical** to a serial ground-truth replay
//!   of each client's id-ordered sequence on a fresh unreplicated
//!   service, and **promotion latency** (primary confirmed dead → first
//!   decision served by the successor) stays under the target.
//! * **Fencing** — a follower is promoted while the old primary still
//!   runs at the stale term; once the client has observed the new term,
//!   any answer the deposed primary produces must be demoted to the
//!   pinned `fenced` error before the caller sees it.
//!
//! Any violation writes `results/failover_failing_seed.txt` with the
//! master seed and exits non-zero; the seed re-runs the identical load.
//! `--quick` is the CI smoke, and `--check` gates promotion latency
//! against the committed baseline with 2x headroom. Results land in
//! `results/BENCH_failover.json`.

use bap_bench::common::{results_dir, write_json, Args};
use bap_core::{DecisionService, KillMode, ServeConfig, Server};
use bap_trace::wire::{
    encode_response, RequestKind, ResponseKind, WireCurve, WireRequest, WireResponse,
};
use bap_types::{ReplicationConfig, RetryConfig};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Committed reference point for the `--check` regression gate.
const BASELINE_JSON: &str = include_str!("../baselines/failover_baseline.json");

/// The gate trips when promotion latency exceeds baseline x this factor.
const CHECK_HEADROOM: f64 = 2.0;

/// Cores per session (smaller than exp_serve's 32: the interesting work
/// here is the replication protocol, not the solver).
const CORES: usize = 8;

/// Full-run headline target: primary death confirmed to first decision
/// answered by the promoted follower.
const TARGET_PROMOTE_MS: f64 = 1000.0;

#[derive(Serialize)]
struct FailoverStats {
    sessions: usize,
    rounds_per_client: usize,
    decisions: usize,
    acked_before_kill: usize,
    acked_after_kill: usize,
    promote_latency_ms: f64,
    promote_term: u64,
    divergences_detected: u64,
    promote_refused_on_divergence: bool,
    anchor_tick_after_rollover: u64,
    log_entries_bound: usize,
    fenced_rejections: usize,
    gave_up: usize,
    byte_identical_responses: usize,
}

#[derive(Deserialize)]
struct Baseline {
    promote_latency_ms: f64,
}

fn knee_curves(session: u64, round: usize, master_seed: u64) -> Vec<WireCurve> {
    let seed = master_seed ^ session.wrapping_mul(0x9E37_79B9) ^ (round as u64) << 8;
    (0..CORES)
        .map(|core| {
            let h = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((core as u64).wrapping_mul(0x0100_0000_01B3));
            let base = 30_000.0 + (h % 90_000) as f64;
            let knee = 2 + ((h >> 17) % 40) as usize;
            let floor = ((h >> 33) % 3_000) as f64;
            let misses = (0..=72)
                .map(|w| {
                    if w >= knee {
                        floor
                    } else {
                        base - (base - floor) * w as f64 / knee as f64
                    }
                })
                .collect();
            WireCurve {
                accesses: base.max(1.0) * 4.0,
                misses,
            }
        })
        .collect()
}

/// The id-ordered request sequence one client sends for its session.
/// Ids are globally unique: client `c` owns the band `(c+1) * 10^6`.
fn client_requests(client: usize, rounds: usize, master_seed: u64) -> Vec<WireRequest> {
    let session = client as u64 + 1;
    let mut id = (client as u64 + 1) * 1_000_000;
    let mut req = |kind: RequestKind| {
        id += 1;
        WireRequest::new(id, kind)
    };
    let mut out = vec![req(RequestKind::Open {
        session,
        cores: CORES,
    })];
    for round in 0..rounds {
        out.push(req(RequestKind::Snapshot {
            session,
            curves: knee_curves(session, round, master_seed),
        }));
    }
    out
}

/// One response, normalized for byte-comparison against the serial
/// ground truth: tick depends on batching and term on which replica
/// answered, so both are masked before encoding. Everything else —
/// the id and the full response kind — must match byte for byte.
fn normalized(resp: &WireResponse) -> String {
    encode_response(&WireResponse {
        id: resp.id,
        tick: 0,
        term: None,
        kind: resp.kind.clone(),
    })
}

/// What one flooding client observed: every acknowledged answer in
/// arrival order, with its wall-clock instant.
struct Acked {
    encoded: String,
    decision: bool,
    at: Instant,
}

struct ClientOut {
    acked: Vec<Acked>,
    gave_up: Vec<String>,
}

fn run_client(
    reqs: Vec<WireRequest>,
    fleet: bap_core::ServeClient,
    retry: RetryConfig,
    progress: &AtomicUsize,
) -> ClientOut {
    let mut out = ClientOut {
        acked: Vec::new(),
        gave_up: Vec::new(),
    };
    for req in reqs {
        let id = req.id;
        match fleet.call_with_retry(req, &retry) {
            Ok(resp) => {
                let decision = matches!(resp.kind, ResponseKind::Decision { .. });
                out.acked.push(Acked {
                    encoded: normalized(&resp),
                    decision,
                    at: Instant::now(),
                });
                if decision {
                    progress.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(e) => out.gave_up.push(format!("id {id}: {e}")),
        }
    }
    out
}

fn fail(master_seed: u64, violation: &str) -> ! {
    let path = results_dir().join("failover_failing_seed.txt");
    std::fs::write(
        &path,
        format!("seed={master_seed}\nviolation={violation}\n"),
    )
    .expect("write failing seed");
    eprintln!("FAILOVER FAILURE: {violation}");
    eprintln!("reproduce with: cargo run --release --bin exp_failover -- --seed {master_seed}");
    eprintln!("failing seed written to {}", path.display());
    std::process::exit(1);
}

fn repl_cfg(follower: bool, log_capacity: usize) -> ServeConfig {
    ServeConfig {
        replication: Some(ReplicationConfig {
            follower,
            log_capacity,
            ack_timeout_ms: 500,
        }),
        ..ServeConfig::default()
    }
}

fn call(conn: &bap_core::ServeClient, id: u64, kind: RequestKind) -> WireResponse {
    conn.call(WireRequest::new(id, kind))
        .expect("replica answered")
}

/// Scenario 1: bounded-log catch-up, the digest cross-check, and the
/// `divergence` promotion refusal. Returns (divergences seen, refusal
/// observed, anchor tick after rollover, retained log entries).
fn scenario_divergence(seed: u64, rounds: usize) -> (u64, bool, u64, usize) {
    const LOG_CAPACITY: usize = 8;
    let primary = Server::spawn(DecisionService::new(repl_cfg(false, LOG_CAPACITY)));
    let follower = Server::spawn(DecisionService::new(repl_cfg(true, LOG_CAPACITY)));
    let pconn = primary.client();
    let fconn = follower.client();

    // Flood the primary past its log capacity BEFORE the follower joins,
    // so the join path must restore a re-anchored checkpoint, not replay
    // from tick zero.
    let mut id = 0;
    let mut next = || {
        id += 1;
        id
    };
    call(
        &pconn,
        next(),
        RequestKind::Open {
            session: 1,
            cores: CORES,
        },
    );
    for round in 0..rounds {
        let resp = call(
            &pconn,
            next(),
            RequestKind::Snapshot {
                session: 1,
                curves: knee_curves(1, round, seed),
            },
        );
        if !matches!(resp.kind, ResponseKind::Decision { .. }) {
            fail(
                seed,
                &format!("pre-join decision got {}", resp.kind.label()),
            );
        }
    }
    let (anchor_tick, log_entries) = match call(&pconn, next(), RequestKind::ReplStatus).kind {
        ResponseKind::ReplStatus {
            anchor_tick,
            log_entries,
            ..
        } => (anchor_tick, log_entries),
        other => fail(seed, &format!("primary status got {}", other.label())),
    };
    if rounds > LOG_CAPACITY && anchor_tick == 0 {
        fail(
            seed,
            &format!("{rounds} decisions never rolled the capacity-{LOG_CAPACITY} log anchor"),
        );
    }
    if log_entries > LOG_CAPACITY {
        fail(
            seed,
            &format!("log retained {log_entries} entries past capacity {LOG_CAPACITY}"),
        );
    }

    // Cold join: checkpoint + suffix, then live shipping.
    primary.replicate_to(&follower);
    let ptick: u64 = {
        // One more decision lands after the join and must arrive live.
        let resp = call(
            &pconn,
            next(),
            RequestKind::Snapshot {
                session: 1,
                curves: knee_curves(1, rounds, seed),
            },
        );
        if !matches!(resp.kind, ResponseKind::Decision { .. }) {
            fail(
                seed,
                &format!("post-join decision got {}", resp.kind.label()),
            );
        }
        match call(&pconn, next(), RequestKind::ReplStatus).kind {
            ResponseKind::ReplStatus { tick, .. } => tick,
            other => fail(seed, &format!("primary status got {}", other.label())),
        }
    };
    // The primary answers only after every live follower acked, so by the
    // time we read its tick the follower has applied it.
    match call(&fconn, 1_000_001, RequestKind::ReplStatus).kind {
        ResponseKind::ReplStatus {
            role,
            tick,
            divergences,
            ..
        } => {
            if role != "follower" {
                fail(seed, &format!("joined replica reports role {role}"));
            }
            if tick != ptick {
                fail(
                    seed,
                    &format!("follower applied tick {tick}, primary committed {ptick}"),
                );
            }
            if divergences != 0 {
                fail(seed, &format!("{divergences} divergences before the flip"));
            }
        }
        other => fail(seed, &format!("follower status got {}", other.label())),
    }
    // Replayed state must carry the same plan, byte for byte. The two
    // queries ride different request ids, so mask the id too.
    let masked = |resp: WireResponse| normalized(&WireResponse { id: 0, ..resp });
    let pplan = masked(call(&pconn, next(), RequestKind::Plan { session: 1 }));
    let fplan = masked(call(&fconn, 1_000_002, RequestKind::Plan { session: 1 }));
    if pplan != fplan {
        fail(
            seed,
            &format!("replayed plan differs from primary: {fplan} vs {pplan}"),
        );
    }

    // Flip one bit in the next shipped digest. The primary's own log and
    // state stay clean — only the follower's cross-check sees the lie.
    primary.chaos_flip_next_digest();
    call(
        &pconn,
        next(),
        RequestKind::Snapshot {
            session: 1,
            curves: knee_curves(1, rounds + 1, seed),
        },
    );
    let divergences = match call(&fconn, 1_000_003, RequestKind::ReplStatus).kind {
        ResponseKind::ReplStatus { divergences, .. } => divergences,
        other => fail(seed, &format!("follower status got {}", other.label())),
    };
    if divergences == 0 {
        fail(seed, "injected digest bit-flip was not detected");
    }
    // A diverged follower must refuse promotion.
    let refused = match call(&fconn, 1_000_004, RequestKind::Promote).kind {
        ResponseKind::Error { code, .. } if code == "divergence" => true,
        other => fail(
            seed,
            &format!("diverged follower answered promote with {}", other.label()),
        ),
    };
    call(&pconn, next(), RequestKind::Shutdown);
    call(&fconn, 1_000_005, RequestKind::Shutdown);
    primary.join();
    follower.join();
    (divergences, refused, anchor_tick, log_entries)
}

/// What the kill-9 flood produced.
struct FailoverOut {
    clients: Vec<ClientOut>,
    promote_latency_ms: f64,
    promote_term: u64,
    acked_before_kill: usize,
    acked_after_kill: usize,
}

/// Scenario 2: the kill-9 flood.
fn scenario_failover(seed: u64, sessions: usize, rounds: usize) -> FailoverOut {
    let primary = Server::spawn(DecisionService::new(repl_cfg(false, 64)));
    let follower = Server::spawn(DecisionService::new(repl_cfg(true, 64)));
    primary.replicate_to(&follower);

    let fleet = Server::client_of(&[&primary, &follower]);
    let retry = RetryConfig {
        max_attempts: 60,
        base_backoff_ms: 1,
        max_backoff_ms: 20,
        jitter_frac: 0.3,
        seed,
    };
    let progress = Arc::new(AtomicUsize::new(0));
    let kill_after = sessions * rounds / 3;

    let out = thread::scope(|scope| {
        let handles: Vec<_> = (0..sessions)
            .map(|c| {
                let reqs = client_requests(c, rounds, seed);
                let fleet = fleet.clone();
                let progress = Arc::clone(&progress);
                scope.spawn(move || run_client(reqs, fleet, retry, &progress))
            })
            .collect();

        // Chaos controller: wait for a third of the flood to be
        // acknowledged, then kill the primary in the durability window —
        // after it ships the in-flight batch, before it answers it.
        while progress.load(Ordering::Relaxed) < kill_after {
            thread::sleep(Duration::from_millis(1));
        }
        primary.kill(KillMode::AfterShip);
        let pprobe = primary.client();
        let deadline = Instant::now() + Duration::from_secs(30);
        while pprobe
            .call(WireRequest::new(900_000_000, RequestKind::Stats))
            .is_ok()
        {
            if Instant::now() > deadline {
                fail(seed, "primary did not die within 30s of the kill");
            }
            thread::sleep(Duration::from_millis(1));
        }
        let kill_confirmed = Instant::now();

        // Fenced promotion: bump the follower to term 2.
        let fdirect = follower.client();
        let promote = call(&fdirect, 910_000_000, RequestKind::Promote);
        let term = match promote.kind {
            ResponseKind::Promoted { term, .. } => term,
            other => fail(seed, &format!("promote answered {}", other.label())),
        };

        let outs: Vec<ClientOut> = handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect();

        // Promotion latency: primary confirmed dead -> first decision any
        // client got from the successor.
        let first_after = outs
            .iter()
            .flat_map(|o| &o.acked)
            .filter(|a| a.decision && a.at > kill_confirmed)
            .map(|a| a.at)
            .min();
        let latency_ms = match first_after {
            Some(at) => at.duration_since(kill_confirmed).as_secs_f64() * 1e3,
            None => fail(seed, "no client completed a decision after the failover"),
        };
        let decisions = |after: bool| {
            outs.iter()
                .flat_map(|o| &o.acked)
                .filter(|a| a.decision && (a.at > kill_confirmed) == after)
                .count()
        };
        FailoverOut {
            acked_before_kill: decisions(false),
            acked_after_kill: decisions(true),
            clients: outs,
            promote_latency_ms: latency_ms,
            promote_term: term,
        }
    });

    primary.join();
    let fconn = follower.client();
    call(&fconn, u64::MAX - 1, RequestKind::Shutdown);
    follower.join();
    out
}

/// Scenario 3: the deposed primary's answers are demoted to `fenced`.
fn scenario_fencing(seed: u64) -> usize {
    let primary = Server::spawn(DecisionService::new(repl_cfg(false, 64)));
    let follower = Server::spawn(DecisionService::new(repl_cfg(true, 64)));
    primary.replicate_to(&follower);
    let pconn = primary.client();

    call(
        &pconn,
        1,
        RequestKind::Open {
            session: 1,
            cores: CORES,
        },
    );
    call(
        &pconn,
        2,
        RequestKind::Snapshot {
            session: 1,
            curves: knee_curves(1, 0, seed),
        },
    );

    // Promote the follower while the stale primary keeps running, then
    // let one shared client observe the new term from the successor.
    let fdirect = follower.client();
    match call(&fdirect, 3, RequestKind::Promote).kind {
        ResponseKind::Promoted { term: 2, .. } => {}
        other => fail(seed, &format!("promote answered {}", other.label())),
    }
    let fleet = Server::client_of(&[&follower, &primary]);
    match call(&fleet, 4, RequestKind::Stats).kind {
        ResponseKind::Stats { .. } => {}
        other => fail(seed, &format!("stats on successor got {}", other.label())),
    }

    // Kill the successor: the fleet client falls back to the deposed
    // primary, whose stale-termed answers must be demoted to `fenced`.
    follower.kill(KillMode::Now);
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut fenced = 0usize;
    let mut probe_id = 5u64;
    while fenced == 0 {
        if Instant::now() > deadline {
            fail(
                seed,
                "deposed primary's answers were never demoted to `fenced`",
            );
        }
        probe_id += 1;
        match fleet.call(WireRequest::new(probe_id, RequestKind::Stats)) {
            Ok(resp) => match resp.kind {
                ResponseKind::Error { ref code, .. } if code == "fenced" => fenced += 1,
                // Until the kill lands, the successor still answers at
                // term 2; those are legitimate.
                ResponseKind::Stats { .. } => thread::sleep(Duration::from_millis(1)),
                other => fail(seed, &format!("fencing probe got {}", other.label())),
            },
            // Both targets momentarily unreachable mid-kill: sweep again.
            Err(_) => thread::sleep(Duration::from_millis(1)),
        }
    }
    call(&pconn, u64::MAX - 2, RequestKind::Shutdown);
    primary.join();
    follower.join();
    fenced
}

fn main() {
    let args = Args::parse();
    let sessions: usize = if args.quick { 2 } else { 4 };
    let rounds: usize = if args.quick { 40 } else { 150 };

    // ---- Scenario 1: divergence detection -------------------------------
    let (divergences, refused, anchor_tick, log_entries) =
        scenario_divergence(args.seed, if args.quick { 12 } else { 40 });
    println!(
        "divergence: {} mismatch(es) caught from one flipped bit, promote refused, \
         log bounded at {} entries (anchor tick {})",
        divergences, log_entries, anchor_tick
    );

    // ---- Scenario 2: kill-9 failover ------------------------------------
    let failover = scenario_failover(args.seed, sessions, rounds);
    let outs = &failover.clients;

    let gave_up: Vec<&String> = outs.iter().flat_map(|o| &o.gave_up).collect();
    if let Some(g) = gave_up.first() {
        fail(
            args.seed,
            &format!(
                "{} acknowledged decisions lost to give-ups, first: {g}",
                gave_up.len()
            ),
        );
    }

    // Byte-identity: each client's acknowledged stream must equal a
    // serial ground-truth replay of its id-ordered sequence on a fresh
    // unreplicated service — same answers, same order, byte for byte.
    let mut byte_identical = 0usize;
    for (c, out) in outs.iter().enumerate() {
        let mut truth = DecisionService::new(ServeConfig::default());
        let mut expect = Vec::new();
        for req in client_requests(c, rounds, args.seed) {
            for resp in truth.process_batch(std::slice::from_ref(&req)) {
                expect.push(normalized(&resp));
            }
        }
        let got: Vec<&String> = out.acked.iter().map(|a| &a.encoded).collect();
        if got.len() != expect.len() {
            fail(
                args.seed,
                &format!(
                    "session {}: {} acknowledged answers, ground truth has {}",
                    c + 1,
                    got.len(),
                    expect.len()
                ),
            );
        }
        for (i, (g, e)) in got.iter().zip(&expect).enumerate() {
            if *g != e {
                fail(
                    args.seed,
                    &format!(
                        "session {}: answer {} diverged from ground truth across the \
                         failover:\n  got      {g}\n  expected {e}",
                        c + 1,
                        i
                    ),
                );
            }
        }
        byte_identical += got.len();
    }

    let decisions = failover.acked_before_kill + failover.acked_after_kill;
    println!(
        "failover: {} sessions x {} rounds, {} decisions ({} before the kill, {} after) \
         survived a mid-flood kill -9",
        sessions, rounds, decisions, failover.acked_before_kill, failover.acked_after_kill
    );
    println!(
        "  promoted to term {} in {:.1} ms, {} answers byte-identical to serial ground truth",
        failover.promote_term, failover.promote_latency_ms, byte_identical
    );

    // ---- Scenario 3: fencing --------------------------------------------
    let fenced = scenario_fencing(args.seed);
    println!("fencing: deposed primary demoted to `fenced` on {fenced} stale answer(s)");

    // ---- Report ---------------------------------------------------------
    let stats = FailoverStats {
        sessions,
        rounds_per_client: rounds,
        decisions,
        acked_before_kill: failover.acked_before_kill,
        acked_after_kill: failover.acked_after_kill,
        promote_latency_ms: failover.promote_latency_ms,
        promote_term: failover.promote_term,
        divergences_detected: divergences,
        promote_refused_on_divergence: refused,
        anchor_tick_after_rollover: anchor_tick,
        log_entries_bound: log_entries,
        fenced_rejections: fenced,
        gave_up: 0,
        byte_identical_responses: byte_identical,
    };

    if !args.quick && stats.promote_latency_ms > TARGET_PROMOTE_MS {
        eprintln!(
            "FAIL: promotion latency {:.1} ms over the {TARGET_PROMOTE_MS} ms target",
            stats.promote_latency_ms
        );
        std::process::exit(1);
    }

    let path = write_json("BENCH_failover", &stats);
    println!("wrote {}", path.display());

    if args.check {
        let baseline: Baseline = serde_json::from_str(BASELINE_JSON).expect("baseline parses");
        let limit = baseline.promote_latency_ms * CHECK_HEADROOM;
        println!(
            "check: promote {:.1} ms vs limit {:.1} ms (baseline {:.1} ms x {CHECK_HEADROOM})",
            stats.promote_latency_ms, limit, baseline.promote_latency_ms
        );
        if stats.promote_latency_ms > limit {
            eprintln!("FAIL: promotion latency regression past the committed baseline");
            std::process::exit(1);
        }
    }
}

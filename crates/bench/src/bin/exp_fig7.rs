//! Fig. 7 — Monte Carlo comparison of Unrestricted vs Bank-aware
//! partitioning over 1000 random 8-workload mixes (§IV-A).
//!
//! Projected miss rates relative to fixed even shares, sorted by the
//! Unrestricted reduction, plus the headline averages (paper: Unrestricted
//! ≈30 % reduction, Bank-aware ≈27 %).

use bap_bench::common::{write_json, Args};
use bap_bench::mc::{evaluate_mix, load_or_build_library, MixOutcome};
use bap_bench::mixes::monte_carlo_mixes;
use bap_types::{SystemConfig, Topology};
use rayon::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct Fig7 {
    sorted_unrestricted_relative: Vec<f64>,
    sorted_bank_aware_relative: Vec<f64>,
    mean_unrestricted_relative: f64,
    mean_bank_aware_relative: f64,
    mixes: usize,
}

fn main() {
    let args = Args::parse();
    let cfg = SystemConfig::scaled(args.scale);
    let profile_instructions = if args.quick { 1_000_000 } else { 20_000_000 };
    let num_mixes = if args.quick { 100 } else { 1000 };

    eprintln!("profiling 26 workload analogues (cached when intact)...");
    let lib = load_or_build_library(&cfg, profile_instructions, args.seed);
    let topo = Topology::baseline();

    eprintln!("evaluating {num_mixes} random mixes...");
    let mixes = monte_carlo_mixes(args.seed, num_mixes, 8);
    let mut outcomes: Vec<MixOutcome> = mixes
        .par_iter()
        .map(|m| evaluate_mix(&lib, m, &topo))
        .collect();

    // Sort by the Unrestricted reduction, as the paper plots it.
    outcomes.sort_by(|a, b| {
        a.unrestricted_relative()
            .partial_cmp(&b.unrestricted_relative())
            .expect("finite")
    });
    let unrestricted: Vec<f64> = outcomes.iter().map(|o| o.unrestricted_relative()).collect();
    let bank_aware: Vec<f64> = outcomes.iter().map(|o| o.bank_aware_relative()).collect();
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;

    let out = Fig7 {
        mean_unrestricted_relative: mean(&unrestricted),
        mean_bank_aware_relative: mean(&bank_aware),
        sorted_unrestricted_relative: unrestricted,
        sorted_bank_aware_relative: bank_aware,
        mixes: outcomes.len(),
    };

    println!(
        "Fig. 7 — relative miss ratio to fixed even shares ({} mixes)",
        out.mixes
    );
    println!(
        "{:>11} {:>14} {:>12}",
        "percentile", "unrestricted", "bank-aware"
    );
    for pct in [0usize, 10, 25, 50, 75, 90, 100] {
        let idx = (pct * (out.mixes - 1)) / 100;
        println!(
            "{pct:>10}% {:>14.3} {:>12.3}",
            out.sorted_unrestricted_relative[idx], out.sorted_bank_aware_relative[idx]
        );
    }
    println!(
        "\nmean relative miss ratio: unrestricted {:.3} ({:.1}% reduction, paper ~30%)",
        out.mean_unrestricted_relative,
        100.0 * (1.0 - out.mean_unrestricted_relative)
    );
    println!(
        "mean relative miss ratio: bank-aware   {:.3} ({:.1}% reduction, paper ~27%)",
        out.mean_bank_aware_relative,
        100.0 * (1.0 - out.mean_bank_aware_relative)
    );
    let path = write_json("fig7_monte_carlo", &out);
    println!("wrote {}", path.display());
}

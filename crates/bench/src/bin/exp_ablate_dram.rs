//! Memory-model ablation — flat Table I pipe vs banked DRAM with row
//! buffers.
//!
//! Partitioning shapes the *address stream* memory sees: protected working
//! sets stop thrashing, so fewer scattered misses reach DRAM and the
//! surviving traffic is more row-local (streams). This run repeats one
//! Table III set under both memory models.

use bap_bench::common::{write_json, Args};
use bap_bench::detailed::sim_options;
use bap_bench::mixes::{resolve, table3_sets};
use bap_core::Policy;
use bap_system::System;
use bap_types::config::DramKind;
use rayon::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct DramRow {
    dram: String,
    policy: String,
    misses: u64,
    mean_cpi: f64,
    row_hit_rate: Option<f64>,
}

fn main() {
    let args = Args::parse();
    let mix = table3_sets(args.seed).remove(0);
    let cases: Vec<(DramKind, Policy)> = [DramKind::Flat, DramKind::Banked]
        .into_iter()
        .flat_map(|d| {
            [Policy::NoPartition, Policy::Equal, Policy::BankAware]
                .into_iter()
                .map(move |p| (d, p))
        })
        .collect();
    let rows: Vec<DramRow> = cases
        .par_iter()
        .map(|&(dram, policy)| {
            let mut opts = sim_options(&args, policy);
            opts.config.dram_kind = dram;
            let r = System::new(opts, resolve(&mix)).run();
            DramRow {
                dram: format!("{dram:?}"),
                policy: format!("{policy:?}"),
                misses: r.total_l2_misses(),
                mean_cpi: r.mean_cpi(),
                row_hit_rate: r.dram_rows.as_ref().map(|s| s.hit_rate()),
            }
        })
        .collect();

    println!("Memory-model ablation (mix: {})", mix.join(", "));
    println!(
        "{:>7} {:>13} {:>10} {:>8} {:>13}",
        "dram", "policy", "misses", "CPI", "row hit rate"
    );
    for r in &rows {
        println!(
            "{:>7} {:>13} {:>10} {:>8.3} {:>13}",
            r.dram,
            r.policy,
            r.misses,
            r.mean_cpi,
            r.row_hit_rate.map_or("-".into(), |h| format!("{h:.3}")),
        );
    }
    println!("\nexpected: the policy ordering holds under both models. Note the");
    println!("near-zero row-hit rate: eight interleaved miss streams destroy row");
    println!("locality under FCFS scheduling — cache partitioning alone does not");
    println!("manage memory-side interference, which is exactly the motivation");
    println!("for the authors' follow-up bandwidth-aware resource management work.");
    let path = write_json("ablate_dram", &rows);
    println!("wrote {}", path.display());
}

//! Scalability — the paper's §I claim that the mechanism "can scale with
//! the number of cores".
//!
//! Two measurements per core count:
//!
//! * detailed-simulation miss reductions (8/16 cores only — the sizes the
//!   detailed model was validated at);
//! * the wall-clock cost of one repartitioning decision on a clustered
//!   ring floorplan, out to 256 cores, under four solver modes: serial
//!   cold solve, sharded cold solve, warm-start (unchanged curves), and a
//!   sharded solve with two banks dead.
//!
//! `--cores 8,16,32` overrides the sweep; `--check` gates the 32-core
//! sharded decision time against the committed baseline (2× headroom) and
//! exits non-zero on a regression. Results land in
//! `results/BENCH_scalability.json`.

use bap_bench::common::{write_json, Args};
use bap_bench::mixes::monte_carlo_mixes;
use bap_core::{
    try_bank_aware_partition, try_bank_aware_partition_serial, BankAwareConfig, IncrementalSolver,
    Policy, SolveBudget,
};
use bap_msa::{MissRatioCurve, ProfilerConfig};
use bap_system::{profile_workloads, SimOptions, System};
use bap_trace::Tracer;
use bap_types::{BankId, BankMask, DegradedTopology, SystemConfig, Topology};
use bap_workloads::spec_by_name;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Committed reference point for the `--check` regression gate.
const BASELINE_JSON: &str = include_str!("../baselines/scalability_baseline.json");

/// The gate trips when the current time exceeds baseline × this factor.
const CHECK_HEADROOM: f64 = 2.0;

/// The ISSUE's headline target for a 128-core epoch decision.
const TARGET_128_US: f64 = 57.2;

#[derive(Serialize)]
struct ScaleRow {
    cores: usize,
    banks: usize,
    clusters: usize,
    /// The healthy-bank mask the degraded solves ran under.
    degraded_bank_mask: u64,
    /// Detailed-sim miss ratios; only populated at the validated sizes.
    ba_relative_to_none: Option<f64>,
    ba_relative_to_equal: Option<f64>,
    /// One cold decision, clusters solved one after another.
    cold_serial_us: f64,
    /// One cold decision, clusters solved in parallel shards.
    cold_sharded_us: f64,
    /// One warm decision with unchanged curves (every shard reused).
    warm_us: f64,
    /// Sharded cold decision with two banks offline.
    degraded_decision_us: f64,
    /// cold_serial / cold_sharded.
    shard_speedup: f64,
    /// cold_sharded / warm.
    warm_speedup: f64,
}

#[derive(Deserialize)]
struct Baseline {
    cores: usize,
    cold_sharded_us: f64,
}

fn config_for(cores: usize, scale: u64) -> SystemConfig {
    let mut cfg = SystemConfig::scaled(scale);
    cfg.num_cores = cores;
    cfg.l2.num_banks = 2 * cores;
    cfg
}

/// Deterministic per-core synthetic curve for the timing sweep: a linear
/// ramp from `base` misses at zero ways down to a floor at the knee, flat
/// beyond. Knee position, height, and floor vary with the core index so
/// clusters are heterogeneous and the solver does real work.
fn synthetic_curve(core: usize, seed: u64) -> MissRatioCurve {
    let h = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((core as u64).wrapping_mul(0x0100_0000_01B3));
    let base = 40_000.0 + (h % 120_000) as f64;
    let knee = 2 + ((h >> 17) % 46) as usize;
    let floor = ((h >> 33) % 4_000) as f64;
    let misses = (0..=128)
        .map(|w| {
            if w >= knee {
                floor
            } else {
                base - (base - floor) * w as f64 / knee as f64
            }
        })
        .collect();
    MissRatioCurve::from_misses(misses, base.max(1.0) * 4.0)
}

/// Median-of-runs wall-clock for one call, in microseconds.
fn time_us<F: FnMut()>(iterations: usize, mut f: F) -> f64 {
    let mut samples = Vec::with_capacity(iterations);
    for _ in 0..iterations {
        let t = Instant::now();
        f();
        samples.push(t.elapsed().as_secs_f64() * 1e6);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Detailed three-policy simulation; returns (BA/none, BA/equal) miss
/// ratios. Only run at the sizes the detailed model targets.
fn detailed_ratios(cores: usize, args: &Args, div: u64) -> (f64, f64) {
    let cfg = config_for(cores, args.scale);
    let mix: Vec<String> = monte_carlo_mixes(args.seed, 2, cores).remove(0);
    let specs: Vec<_> = mix
        .iter()
        .map(|n| spec_by_name(n).expect("catalog"))
        .collect();
    let run = |policy: Policy| {
        let mut opts = SimOptions::new(cfg.clone(), policy);
        opts.warmup_instructions = 2_000_000 / div;
        opts.measure_instructions = 4_000_000 / div;
        opts.config.epoch_cycles = 2_000_000 / div;
        opts.seed = args.seed;
        System::new(opts, specs.clone()).run()
    };
    let results: Vec<_> = [Policy::NoPartition, Policy::Equal, Policy::BankAware]
        .par_iter()
        .map(|&p| run(p))
        .collect();
    let (none, equal, ba) = (&results[0], &results[1], &results[2]);

    // Sanity-anchor the synthetic timing curves: the real profiled curves
    // must also solve at this size (cheap, and catches catalog drift).
    let pcfg = ProfilerConfig::reference(cfg.l2_bank_sets(), cfg.l2.total_ways() * 9 / 16);
    let curves = profile_workloads(&specs, &cfg, pcfg, 2_000_000 / div, args.seed);
    let machine = DegradedTopology::healthy(Topology::ring_of_paper_dies(cores));
    try_bank_aware_partition(&curves, &machine, 8, &BankAwareConfig::default())
        .expect("profiled curves stay solvable on the ring floorplan");

    (
        ba.total_l2_misses() as f64 / none.total_l2_misses().max(1) as f64,
        ba.total_l2_misses() as f64 / equal.total_l2_misses().max(1) as f64,
    )
}

fn main() {
    let args = Args::parse();
    let div = if args.quick { 10 } else { 1 };
    let default_sweep: Vec<usize> = if args.quick {
        vec![8, 16, 32]
    } else {
        vec![8, 16, 32, 64, 128, 256]
    };
    let sweep = args.cores.clone().unwrap_or(default_sweep);
    for &c in &sweep {
        assert!(
            c >= 8 && c % 8 == 0,
            "core counts must be multiples of 8 (rings of 8-core paper dies), got {c}"
        );
    }

    let cfg = BankAwareConfig::default();
    let iterations = if args.quick { 20 } else { 60 };
    let mut rows = Vec::new();
    for &cores in &sweep {
        let topo = Topology::ring_of_paper_dies(cores);
        let clusters = topo.num_clusters();
        let banks = 2 * cores;
        let machine = DegradedTopology::healthy(topo.clone());
        let curves: Vec<MissRatioCurve> =
            (0..cores).map(|c| synthetic_curve(c, args.seed)).collect();

        // Detailed sims only at the validated sizes; timing rows everywhere.
        let (rel_none, rel_equal) = if cores <= 16 {
            let (n, e) = detailed_ratios(cores, &args, div);
            (Some(n), Some(e))
        } else {
            (None, None)
        };

        let cold_serial_us = time_us(iterations, || {
            try_bank_aware_partition_serial(&curves, &machine, 8, &cfg, SolveBudget::unlimited())
                .expect("serial solve feasible");
        });
        let cold_sharded_us = time_us(iterations, || {
            try_bank_aware_partition(&curves, &machine, 8, &cfg).expect("sharded solve feasible");
        });

        // Warm path: prime once, then measure steady-state epochs where no
        // curve moved — the common case the incremental solver targets.
        let tracer = Tracer::off();
        let mut incr = IncrementalSolver::new();
        incr.solve(
            &curves,
            &machine,
            8,
            &cfg,
            &tracer,
            SolveBudget::unlimited(),
            0.0,
        )
        .expect("priming solve feasible");
        let warm_us = time_us(iterations, || {
            incr.solve(
                &curves,
                &machine,
                8,
                &cfg,
                &tracer,
                SolveBudget::unlimited(),
                0.0,
            )
            .expect("warm solve feasible");
        });

        // Degraded: two banks dead, one of them a Center bank — the
        // out-of-cadence replan the fault path pays at a death boundary.
        let mut mask = BankMask::all_healthy(banks);
        mask.disable(BankId(0));
        mask.disable(BankId(cores as u16));
        let degraded = DegradedTopology::new(topo.clone(), mask);
        let degraded_decision_us = time_us(iterations, || {
            try_bank_aware_partition(&curves, &degraded, 8, &cfg)
                .expect("degraded solve stays feasible");
        });

        rows.push(ScaleRow {
            cores,
            banks,
            clusters,
            degraded_bank_mask: mask.bits(),
            ba_relative_to_none: rel_none,
            ba_relative_to_equal: rel_equal,
            cold_serial_us,
            cold_sharded_us,
            warm_us,
            degraded_decision_us,
            shard_speedup: cold_serial_us / cold_sharded_us.max(1e-9),
            warm_speedup: cold_sharded_us / warm_us.max(1e-9),
        });
    }

    println!("Scalability: decision cost on clustered ring floorplans");
    println!(
        "{:>6} {:>6} {:>5} {:>12} {:>13} {:>9} {:>13} {:>8} {:>7}",
        "cores",
        "banks",
        "clust",
        "serial (us)",
        "sharded (us)",
        "warm(us)",
        "degraded(us)",
        "shard x",
        "warm x"
    );
    for r in &rows {
        println!(
            "{:>6} {:>6} {:>5} {:>12.1} {:>13.1} {:>9.2} {:>13.1} {:>8.2} {:>7.1}",
            r.cores,
            r.banks,
            r.clusters,
            r.cold_serial_us,
            r.cold_sharded_us,
            r.warm_us,
            r.degraded_decision_us,
            r.shard_speedup,
            r.warm_speedup
        );
    }
    if let Some(r) = rows.iter().find(|r| r.cores == 8) {
        println!(
            "\ndetailed sims at 8/16 cores: BA/none {:.3}, BA/equal {:.3}",
            r.ba_relative_to_none.unwrap_or(f64::NAN),
            r.ba_relative_to_equal.unwrap_or(f64::NAN)
        );
    }
    if let Some(r) = rows.iter().find(|r| r.cores == 128) {
        let best = r.warm_us.min(r.cold_sharded_us);
        let verdict = if best <= TARGET_128_US {
            "PASS"
        } else {
            "MISS"
        };
        println!(
            "128-core epoch decision: {best:.1} us against the {TARGET_128_US} us target \
             [{verdict}] (warm {:.1} us, cold sharded {:.1} us)",
            r.warm_us, r.cold_sharded_us
        );
    }
    let path = write_json("BENCH_scalability", &rows);
    println!("wrote {}", path.display());

    if args.check {
        let baseline: Baseline = serde_json::from_str(BASELINE_JSON).expect("baseline file parses");
        match rows.iter().find(|r| r.cores == baseline.cores) {
            Some(r) => {
                let limit = baseline.cold_sharded_us * CHECK_HEADROOM;
                println!(
                    "check: {}-core sharded decision {:.1} us vs limit {:.1} us \
                     (baseline {:.1} us x {CHECK_HEADROOM})",
                    baseline.cores, r.cold_sharded_us, limit, baseline.cold_sharded_us
                );
                if r.cold_sharded_us > limit {
                    eprintln!("FAIL: decision-time regression past the committed baseline");
                    std::process::exit(1);
                }
            }
            None => {
                println!(
                    "check: sweep skipped {} cores; nothing to gate",
                    baseline.cores
                );
            }
        }
    }
}

//! Scalability — the paper's §I claim that the mechanism "can scale with
//! the number of cores".
//!
//! Runs the same evaluation on 8-core/16-bank and 16-core/32-bank machines:
//! detailed-simulation miss reductions, plus the wall-clock cost of one
//! repartitioning decision (the hardware-relevant overhead, since the
//! algorithm runs every 100 M cycles).

use bap_bench::common::{write_json, Args};
use bap_bench::mixes::monte_carlo_mixes;
use bap_core::{bank_aware_partition, try_bank_aware_partition, BankAwareConfig, Policy};
use bap_msa::ProfilerConfig;
use bap_system::{profile_workloads, SimOptions, System};
use bap_types::{BankMask, DegradedTopology, SystemConfig, Topology};
use bap_workloads::spec_by_name;
use rayon::prelude::*;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct ScaleRow {
    cores: usize,
    banks: usize,
    /// The healthy-bank mask the timed solves ran under.
    bank_mask: u64,
    ba_relative_to_none: f64,
    ba_relative_to_equal: f64,
    partition_decision_us: f64,
    /// Decision cost with two banks offline — the degraded-solve overhead
    /// the fault path pays at a bank-death boundary.
    degraded_decision_us: f64,
}

fn config_for(cores: usize, scale: u64) -> SystemConfig {
    let mut cfg = SystemConfig::scaled(scale);
    cfg.num_cores = cores;
    cfg.l2.num_banks = 2 * cores;
    cfg
}

fn main() {
    let args = Args::parse();
    let div = if args.quick { 10 } else { 1 };

    let mut rows = Vec::new();
    for cores in [8usize, 16] {
        let cfg = config_for(cores, args.scale);
        let topo = Topology::new(cores, cfg.l2_min_latency, cfg.l2_max_latency);
        let mix: Vec<String> = monte_carlo_mixes(args.seed, 2, cores).remove(0);
        let specs: Vec<_> = mix
            .iter()
            .map(|n| spec_by_name(n).expect("catalog"))
            .collect();

        // Detailed runs under the three policies.
        let run = |policy: Policy| {
            let mut opts = SimOptions::new(cfg.clone(), policy);
            opts.warmup_instructions = 2_000_000 / div;
            opts.measure_instructions = 4_000_000 / div;
            opts.config.epoch_cycles = 2_000_000 / div;
            opts.seed = args.seed;
            System::new(opts, specs.clone()).run()
        };
        let results: Vec<_> = [Policy::NoPartition, Policy::Equal, Policy::BankAware]
            .par_iter()
            .map(|&p| run(p))
            .collect();
        let (none, equal, ba) = (&results[0], &results[1], &results[2]);

        // Decision cost: profile offline, then time the assignment alone.
        let pcfg = ProfilerConfig::reference(cfg.l2_bank_sets(), cfg.l2.total_ways() * 9 / 16);
        let curves = profile_workloads(&specs, &cfg, pcfg, 2_000_000 / div, args.seed);
        let t0 = Instant::now();
        let iterations = 100;
        for _ in 0..iterations {
            let _ = bank_aware_partition(&curves, &topo, 8, &BankAwareConfig::default());
        }
        let decision_us = t0.elapsed().as_secs_f64() * 1e6 / iterations as f64;

        // Same solve with two banks dead — the cost the degradation path
        // pays when a bank-death boundary forces an out-of-cadence replan.
        let mut mask = BankMask::all_healthy(2 * cores);
        mask.disable(bap_types::BankId(0));
        mask.disable(bap_types::BankId(cores as u8));
        let degraded = DegradedTopology::new(topo.clone(), mask);
        let t1 = Instant::now();
        for _ in 0..iterations {
            let _ = try_bank_aware_partition(&curves, &degraded, 8, &BankAwareConfig::default())
                .expect("degraded solve stays feasible");
        }
        let degraded_us = t1.elapsed().as_secs_f64() * 1e6 / iterations as f64;

        rows.push(ScaleRow {
            cores,
            banks: 2 * cores,
            bank_mask: BankMask::all_healthy(2 * cores).bits(),
            ba_relative_to_none: ba.total_l2_misses() as f64 / none.total_l2_misses().max(1) as f64,
            ba_relative_to_equal: ba.total_l2_misses() as f64
                / equal.total_l2_misses().max(1) as f64,
            partition_decision_us: decision_us,
            degraded_decision_us: degraded_us,
        });
    }

    println!("Scalability: 8-core/16-bank vs 16-core/32-bank");
    println!(
        "{:>6} {:>6} {:>14} {:>15} {:>14} {:>14}",
        "cores", "banks", "BA/none miss", "BA/equal miss", "decision (us)", "degraded (us)"
    );
    for r in &rows {
        println!(
            "{:>6} {:>6} {:>14.3} {:>15.3} {:>14.1} {:>14.1}",
            r.cores,
            r.banks,
            r.ba_relative_to_none,
            r.ba_relative_to_equal,
            r.partition_decision_us,
            r.degraded_decision_us
        );
    }
    println!("\nexpected: benefits persist at 16 cores and the decision stays");
    println!("microseconds-cheap — trivially amortised over a 100 M-cycle epoch.");
    let path = write_json("scalability", &rows);
    println!("wrote {}", path.display());
}

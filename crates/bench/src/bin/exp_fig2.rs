//! Fig. 2 — an MSA LRU-histogram example on an 8-way cache.
//!
//! Reproduces the shape of the paper's figure: a temporal-reuse-heavy
//! workload whose MRU positions hold most of the hits, plus the miss
//! counter `C9`.

use bap_bench::common::{write_json, Args};
use bap_msa::{ProfilerConfig, StackProfiler};
use bap_workloads::{spec_by_name, AddressStream};
use serde::Serialize;

#[derive(Serialize)]
struct Fig2 {
    workload: String,
    counters: Vec<u64>,
    accesses: u64,
}

fn main() {
    let args = Args::parse();
    // gzip analogue: strong temporal reuse → MRU-heavy histogram.
    let spec = spec_by_name("gzip").expect("catalog");
    let mut profiler = StackProfiler::new(ProfilerConfig::reference(64, 8));
    let mut stream = AddressStream::new(spec.clone(), 64, 1, args.seed);
    let mut fed = 0u64;
    let budget = if args.quick { 50_000 } else { 500_000 };
    while fed < budget {
        if let Some(addr) = stream.next().expect("infinite").addr() {
            profiler.observe(addr.block());
            fed += 1;
        }
    }
    let h = profiler.histogram();
    let out = Fig2 {
        workload: spec.name.clone(),
        counters: h.counters().to_vec(),
        accesses: h.accesses(),
    };

    println!(
        "Fig. 2 — MSA LRU histogram ({} analogue, 8-way monitored cache)",
        out.workload
    );
    println!("{:<10} {:>12} {:>8}", "counter", "accesses", "share");
    for (i, &c) in out.counters.iter().enumerate() {
        let label = if i < 8 {
            format!("C{} (d={})", i + 1, i)
        } else {
            "C9 (miss)".to_string()
        };
        println!(
            "{label:<10} {c:>12} {:>7.2}%",
            100.0 * c as f64 / out.accesses as f64
        );
    }
    let path = write_json("fig2_histogram", &out);
    println!("\nwrote {}", path.display());
}

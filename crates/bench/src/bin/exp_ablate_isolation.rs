//! Lookup-isolation ablation.
//!
//! §III-B can be read two ways: lookups search all ways (the usual
//! hardware realisation; stale blocks stranded by a repartition still hit
//! and migrate home) or *only the owner's ways* (strict isolation, with
//! lost ways flushed at each repartition). This run measures what the
//! strict reading costs across repartitioning transitions.

use bap_bench::common::{write_json, Args};
use bap_bench::detailed::sim_options;
use bap_bench::mixes::{resolve, table3_sets};
use bap_core::Policy;
use bap_system::System;
use rayon::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct IsolationRow {
    lookup: String,
    misses: u64,
    remote_hits: u64,
    writebacks: u64,
    mean_cpi: f64,
}

fn main() {
    let args = Args::parse();
    let mix = table3_sets(args.seed).remove(0);
    let rows: Vec<IsolationRow> = [false, true]
        .par_iter()
        .map(|&strict| {
            let mut opts = sim_options(&args, Policy::BankAware);
            opts.lookup_isolation = strict;
            let r = System::new(opts, resolve(&mix)).run();
            IsolationRow {
                lookup: if strict {
                    "strict".into()
                } else {
                    "migrating".into()
                },
                misses: r.total_l2_misses(),
                remote_hits: r.l2.remote_hits,
                writebacks: r.l2.writebacks,
                mean_cpi: r.mean_cpi(),
            }
        })
        .collect();

    println!("Lookup-isolation ablation (mix: {})", mix.join(", "));
    println!(
        "{:>11} {:>10} {:>12} {:>12} {:>8}",
        "lookup", "misses", "remote hits", "writebacks", "CPI"
    );
    for r in &rows {
        println!(
            "{:>11} {:>10} {:>12} {:>12} {:>8.3}",
            r.lookup, r.misses, r.remote_hits, r.writebacks, r.mean_cpi
        );
    }
    println!("\nexpected: strict isolation loses the stranded-block hits at every");
    println!("repartition (zero remote hits, slightly more misses/write-backs).");
    let path = write_json("ablate_isolation", &rows);
    println!("wrote {}", path.display());
}

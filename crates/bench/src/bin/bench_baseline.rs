//! Machine-readable performance baseline of the profiling stack.
//!
//! Times `StackProfiler::observe` for both stack-distance engines and
//! writes the numbers to `results/BENCH_profiler.json` so the perf
//! trajectory is comparable across PRs without scraping bench output.
//!
//! Two access patterns are measured:
//!
//! * **deep-reuse** — every sampled set holds `K` resident tags and each
//!   access hits the deepest one (stack distance `K − 1`). All profiler
//!   state is cache-resident, so this isolates engine *compute* cost at
//!   the paper's reference depth — the case the Fenwick engine's
//!   `O(log K)` prefix sum accelerates over the naive `O(K)` scan, and
//!   the acceptance number for this repo (`speedup_at_reference_depth`,
//!   must stay ≥ 3 for K ≥ 72).
//! * **uniform** — pseudo-random blocks over a 300 k-block footprint.
//!   This spreads accesses over every set's stack and is dominated by
//!   memory latency, not engine arithmetic; it is recorded as the
//!   end-to-end sanity number, not the engine comparison.
//!
//! Runs are noisy on shared hosts, so every measurement is best-of-N
//! repetitions (2 quick / 5 full).
//!
//! ```sh
//! cargo run --release --bin bench_baseline            # full windows
//! cargo run --release --bin bench_baseline -- --quick # smoke
//! ```

use bap_bench::common::{write_json, Args};
use bap_core::{bank_aware_partition, BankAwareConfig};
use bap_msa::{EngineKind, MissRatioCurve, ProfilerConfig, StackProfiler};
use bap_types::{BlockAddr, Topology};
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

/// One engine × configuration measurement.
#[derive(Serialize)]
struct EngineRow {
    config: String,
    engine: String,
    ns_per_access: f64,
    accesses: u64,
}

/// The persisted `BENCH_profiler.json` payload.
#[derive(Serialize)]
struct BenchProfiler {
    rows: Vec<EngineRow>,
    /// naive / fenwick ns-per-access, deep-reuse pattern at K = 72.
    speedup_reference_k72: f64,
    /// naive / fenwick ns-per-access, deep-reuse pattern at K = 128.
    speedup_reference_k128: f64,
    /// The acceptance number: best engine speedup at reference depth
    /// (K ≥ 72), i.e. the max of the two rows above. Must stay ≥ 3.
    speedup_at_reference_depth: f64,
    /// One full Bank-aware allocation on 8 curves, microseconds.
    partition_decision_us: f64,
    quick: bool,
}

/// The block whose tag is `t` in set `s`.
fn block(t: u64, s: usize, num_sets: usize) -> BlockAddr {
    BlockAddr((t << num_sets.trailing_zeros()) | s as u64)
}

/// Deep-reuse pattern: populate each set with `k` tags, then cycle them in
/// insertion order so every access hits at stack distance `k − 1`. Returns
/// best-of-`reps` ns/access over `rounds` measured passes.
fn time_observe_deep(cfg: ProfilerConfig, rounds: u32, reps: u32) -> f64 {
    let (sets, k) = (cfg.num_sets, cfg.max_ways);
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let mut p = StackProfiler::new(cfg);
        // Populate: tag-major order leaves tag k−1 at the top of every
        // stack, so cycling t = 0, 1, … afterwards always hits the bottom.
        for t in 0..k as u64 {
            for s in 0..sets {
                p.observe(block(t, s, sets));
            }
        }
        // One untimed round to reach the steady state.
        for s in 0..sets {
            for t in 0..k as u64 {
                p.observe(block(t, s, sets));
            }
        }
        let accesses = (rounds as u64) * (sets as u64) * (k as u64);
        let start = Instant::now();
        for _ in 0..rounds {
            for s in 0..sets {
                for t in 0..k as u64 {
                    p.observe(black_box(block(t, s, sets)));
                }
            }
        }
        let elapsed = start.elapsed();
        black_box(p.histogram());
        best = best.min(elapsed.as_nanos() as f64 / accesses as f64);
    }
    best
}

/// Uniform pattern: `accesses` pseudo-random blocks over a 300 k-block
/// footprint. Best-of-`reps` ns/access.
fn time_observe_uniform(cfg: ProfilerConfig, accesses: u64, reps: u32) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let mut p = StackProfiler::new(cfg);
        let mut i = 0u64;
        // Warm the stacks so steady-state cost is measured, not cold misses.
        for _ in 0..accesses / 4 {
            i = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
            p.observe(BlockAddr(i % 300_000));
        }
        let start = Instant::now();
        for _ in 0..accesses {
            i = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
            p.observe(black_box(BlockAddr(i % 300_000)));
        }
        let elapsed = start.elapsed();
        black_box(p.histogram());
        best = best.min(elapsed.as_nanos() as f64 / accesses as f64);
    }
    best
}

fn time_partition_decision(iterations: u64) -> f64 {
    let curves: Vec<MissRatioCurve> = (0..8)
        .map(|c| {
            let knee = 8 + 6 * c;
            let misses = (0..=128)
                .map(|w| {
                    if w >= knee {
                        50.0
                    } else {
                        5000.0 - (5000.0 - 50.0) * w as f64 / knee as f64
                    }
                })
                .collect();
            MissRatioCurve::from_misses(misses, 5000.0)
        })
        .collect();
    let topo = Topology::baseline();
    let cfg = BankAwareConfig::default();
    let start = Instant::now();
    for _ in 0..iterations {
        black_box(bank_aware_partition(black_box(&curves), &topo, 8, &cfg));
    }
    start.elapsed().as_nanos() as f64 / iterations as f64 / 1000.0
}

fn main() {
    let args = Args::parse();
    let reps: u32 = if args.quick { 2 } else { 5 };
    let rounds: u32 = if args.quick { 2 } else { 4 };
    let accesses: u64 = if args.quick { 300_000 } else { 3_000_000 };
    let decisions: u64 = if args.quick { 20 } else { 200 };

    let mut rows = Vec::new();
    let mut deep = [[0.0f64; 2]; 2];
    for (d, (label, cfg)) in [
        ("deep_k72", ProfilerConfig::reference(2048, 72)),
        ("deep_k128", ProfilerConfig::reference(2048, 128)),
    ]
    .into_iter()
    .enumerate()
    {
        for (e, engine) in [EngineKind::Naive, EngineKind::Fenwick]
            .into_iter()
            .enumerate()
        {
            let ns = time_observe_deep(cfg.with_engine(engine), rounds, reps);
            println!("{label:<16} {engine:?}: {ns:8.2} ns/access");
            deep[d][e] = ns;
            rows.push(EngineRow {
                config: label.to_string(),
                engine: format!("{engine:?}"),
                ns_per_access: ns,
                accesses: (rounds as u64) * 2048 * cfg.max_ways as u64,
            });
        }
    }
    for (label, cfg) in [
        ("uniform_k72", ProfilerConfig::reference(2048, 72)),
        ("paper_hardware", ProfilerConfig::paper_hardware(2048)),
    ] {
        for engine in [EngineKind::Naive, EngineKind::Fenwick] {
            let ns = time_observe_uniform(cfg.with_engine(engine), accesses, reps);
            println!("{label:<16} {engine:?}: {ns:8.2} ns/access");
            rows.push(EngineRow {
                config: label.to_string(),
                engine: format!("{engine:?}"),
                ns_per_access: ns,
                accesses,
            });
        }
    }
    let speedup_k72 = deep[0][0] / deep[0][1];
    let speedup_k128 = deep[1][0] / deep[1][1];
    let partition_us = time_partition_decision(decisions);
    println!("deep-reuse K=72  speedup (naive/fenwick): {speedup_k72:.2}x");
    println!("deep-reuse K=128 speedup (naive/fenwick): {speedup_k128:.2}x");
    println!("bank-aware partition decision: {partition_us:.1} us");

    let out = BenchProfiler {
        rows,
        speedup_reference_k72: speedup_k72,
        speedup_reference_k128: speedup_k128,
        speedup_at_reference_depth: speedup_k72.max(speedup_k128),
        partition_decision_us: partition_us,
        quick: args.quick,
    };
    let path = write_json("BENCH_profiler", &out);
    println!("wrote {}", path.display());
}

//! Design ablation — repartitioning epoch length.
//!
//! The paper fixes epochs at 100 M cycles without sensitivity data. This
//! sweep runs one Table III set under Bank-aware with epochs from very
//! short (noisy profiles, frequent reconfiguration) to very long (stale
//! assignments), reporting the miss ratio and CPI.

use bap_bench::common::{write_json, Args};
use bap_bench::detailed::sim_options;
use bap_bench::mixes::{resolve, table3_sets};
use bap_core::Policy;
use bap_system::System;
use rayon::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct EpochRow {
    epoch_cycles: u64,
    epochs_fired: u64,
    miss_ratio: f64,
    mean_cpi: f64,
    total_misses: u64,
}

fn main() {
    let args = Args::parse();
    let mix = table3_sets(args.seed).remove(0);
    let base = sim_options(&args, Policy::BankAware);
    let sweep: Vec<u64> = vec![
        base.config.epoch_cycles / 16,
        base.config.epoch_cycles / 4,
        base.config.epoch_cycles,
        base.config.epoch_cycles * 4,
        base.config.epoch_cycles * 16,
    ];
    let rows: Vec<EpochRow> = sweep
        .par_iter()
        .map(|&epoch| {
            let mut opts = sim_options(&args, Policy::BankAware);
            opts.config.epoch_cycles = epoch;
            let r = System::new(opts, resolve(&mix)).run();
            EpochRow {
                epoch_cycles: epoch,
                epochs_fired: r.epochs,
                miss_ratio: r.l2_miss_ratio(),
                mean_cpi: r.mean_cpi(),
                total_misses: r.total_l2_misses(),
            }
        })
        .collect();

    println!("Epoch-length ablation (mix: {})", mix.join(", "));
    println!(
        "{:>14} {:>8} {:>11} {:>9} {:>12}",
        "epoch cycles", "fired", "miss ratio", "CPI", "misses"
    );
    for r in &rows {
        println!(
            "{:>14} {:>8} {:>11.3} {:>9.3} {:>12}",
            r.epoch_cycles, r.epochs_fired, r.miss_ratio, r.mean_cpi, r.total_misses
        );
    }
    let path = write_json("ablate_epoch", &rows);
    println!("wrote {}", path.display());
}

//! Fig. 8 — relative miss rate of Equal-partitions and Bank-aware over
//! No-partitions, for the eight Table III sets (detailed simulation).

use bap_bench::common::{write_json, Args};
use bap_bench::detailed::run_all_cached;
use bap_types::stats::geometric_mean;
use serde::Serialize;

#[derive(Serialize)]
struct Fig8 {
    sets: Vec<Vec<String>>,
    relative_equal: Vec<f64>,
    relative_bank_aware: Vec<f64>,
    gm_equal: f64,
    gm_bank_aware: f64,
}

fn main() {
    let args = Args::parse();
    let results = run_all_cached(&args);

    let mut rel_eq = Vec::new();
    let mut rel_ba = Vec::new();
    for runs in &results.runs {
        let none = runs[0].misses.max(1) as f64;
        rel_eq.push(runs[1].misses as f64 / none);
        rel_ba.push(runs[2].misses as f64 / none);
    }
    let out = Fig8 {
        sets: results.sets.clone(),
        gm_equal: geometric_mean(&rel_eq),
        gm_bank_aware: geometric_mean(&rel_ba),
        relative_equal: rel_eq,
        relative_bank_aware: rel_ba,
    };

    println!("Fig. 8 — relative L2 miss rate over the No-partitions scheme");
    println!("{:>6} {:>14} {:>12}", "set", "equal", "bank-aware");
    for i in 0..out.relative_equal.len() {
        println!(
            "{:>6} {:>14.3} {:>12.3}",
            format!("Set{}", i + 1),
            out.relative_equal[i],
            out.relative_bank_aware[i]
        );
    }
    println!(
        "{:>6} {:>14.3} {:>12.3}",
        "GM", out.gm_equal, out.gm_bank_aware
    );
    println!(
        "\nbank-aware vs no-partitions: {:.1}% miss reduction (paper ~70%)",
        100.0 * (1.0 - out.gm_bank_aware)
    );
    println!(
        "bank-aware vs equal:         {:.1}% miss reduction (paper ~25%)",
        100.0 * (1.0 - out.gm_bank_aware / out.gm_equal)
    );
    let path = write_json("fig8_relative_miss", &out);
    println!("wrote {}", path.display());
}

//! Stability experiment: plan churn, anti-thrash hysteresis and the epoch
//! decision budget.
//!
//! Two layers:
//!
//! * **Controller-level synthetic sweeps** — deterministic knee-curve
//!   workloads driven straight into the epoch controller, isolating the
//!   hysteresis state machine from profiling noise: a stationary mix (no
//!   churn expected), a marginally oscillating A↔B mix with the gate off
//!   vs. the tuned gate (the headline ≥5× churn-reduction claim), a phase
//!   shift landing inside an active hold-off (the bypass must follow it),
//!   and a budget-starved oscillation (every decision sheds to the
//!   last-good plan, never to the equal fallback).
//! * **Full-simulation paper mixes** — Table III mixes through the
//!   integrated system with behaviour-neutral defaults, asserting the shed
//!   rate is exactly zero and the invariant guard stays silent, plus one
//!   tuned-hysteresis run reporting what the gate does to a real workload.
//!
//! The binary is self-asserting: CI runs it with `--quick` and a non-zero
//! exit means a stability regression.

use bap_bench::common::{row, write_json, Args};
use bap_bench::detailed::sim_options;
use bap_bench::mixes::{resolve, table3_sets};
use bap_cache::PartitionPlan;
use bap_core::{BankAwareConfig, Controller, Policy};
use bap_msa::{MissRatioCurve, ProfilerConfig};
use bap_system::{RunResult, System};
use bap_types::{ControlConfig, Topology};
use rayon::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct StabilityRow {
    scenario: String,
    epochs: u64,
    /// Plans actually installed (controller sweeps) or epoch-history
    /// allocation changes (full-simulation rows).
    installs: u64,
    /// (bank, way) slots that changed owner across all installs.
    ways_moved: u64,
    plans_held: u64,
    holdoffs: u64,
    phase_bypasses: u64,
    budget_sheds: u64,
    guard_trips: u64,
    equal_fallbacks: u64,
    /// Only meaningful for full-simulation rows.
    miss_ratio: Option<f64>,
}

/// Synthetic miss curves with a sharp utility knee per core: steep gains up
/// to `knee` ways, flat afterwards. Mirrors the controller unit tests.
fn knee_curves(knees: &[usize], amp: f64) -> Vec<MissRatioCurve> {
    knees
        .iter()
        .map(|&k| {
            let misses: Vec<f64> = (0..=72)
                .map(|w| {
                    if w < k {
                        amp * (k - w) as f64 + 100.0
                    } else {
                        100.0
                    }
                })
                .collect();
            MissRatioCurve::from_misses(misses, 100_000.0)
        })
        .collect()
}

fn controller(control: ControlConfig) -> Controller {
    let mut c = Controller::new(
        Policy::BankAware,
        Topology::baseline(),
        8,
        ProfilerConfig::reference(64, 72),
        BankAwareConfig::default(),
    );
    c.set_control(control);
    c
}

/// Drive `epochs` boundaries with externally supplied curves, counting the
/// installs and the total way movement between consecutive installed plans.
fn drive(
    c: &mut Controller,
    epochs: u64,
    mut curves_for: impl FnMut(u64) -> Vec<MissRatioCurve>,
) -> (u64, u64) {
    let mut installs = 0u64;
    let mut ways_moved = 0u64;
    let mut installed: Option<PartitionPlan> = None;
    for e in 0..epochs {
        if let Some(plan) = c.epoch_boundary_with_curves(curves_for(e)) {
            installs += 1;
            if let Some(prev) = &installed {
                ways_moved += plan.way_churn(prev) as u64;
            }
            installed = Some(plan);
        }
    }
    (installs, ways_moved)
}

fn ctrl_row(scenario: &str, c: &Controller, epochs: u64, installs: u64, ways: u64) -> StabilityRow {
    let f = c.counters();
    StabilityRow {
        scenario: scenario.to_string(),
        epochs,
        installs,
        ways_moved: ways,
        plans_held: f.plans_held,
        holdoffs: f.holdoffs,
        phase_bypasses: f.phase_bypasses,
        budget_sheds: f.budget_sheds,
        guard_trips: f.guard_trips,
        equal_fallbacks: f.equal_fallbacks,
        miss_ratio: None,
    }
}

fn sim_row(scenario: &str, r: &RunResult) -> StabilityRow {
    // Allocation changes across epoch boundaries: the full-sim analogue of
    // an install count (the history records per-core ways per epoch).
    let installs = r.epoch_history.windows(2).filter(|w| w[0] != w[1]).count() as u64
        + u64::from(!r.epoch_history.is_empty());
    let f = r.fault;
    StabilityRow {
        scenario: scenario.to_string(),
        epochs: r.epochs,
        installs,
        ways_moved: 0,
        plans_held: f.plans_held,
        holdoffs: f.holdoffs,
        phase_bypasses: f.phase_bypasses,
        budget_sheds: f.budget_sheds,
        guard_trips: f.guard_trips,
        equal_fallbacks: f.equal_fallbacks,
        miss_ratio: Some(r.l2_miss_ratio()),
    }
}

fn main() {
    let args = Args::parse();
    let epochs = 96u64;
    // Marginal oscillation: the hot core flips between core 0 and core 1,
    // with a curve delta (~0.11) below the tuned 0.15 phase threshold — the
    // flip-flop detector, not the phase detector, must catch it.
    let mix_a = knee_curves(&[40, 4, 4, 4, 4, 4, 4, 4], 1000.0);
    let mix_b = knee_curves(&[4, 40, 4, 4, 4, 4, 4, 4], 1000.0);
    // A genuine phase change: demand moves to core 7 and deepens past any
    // knee seen before (delta ~0.36, above the 0.15 bypass threshold).
    let shifted = knee_curves(&[4, 4, 4, 4, 4, 4, 4, 72], 1000.0);

    let mut rows: Vec<StabilityRow> = Vec::new();

    // Stationary workload, tuned gate: after the first install the solver
    // keeps re-deriving the same plan and nothing further happens.
    let mut c = controller(ControlConfig::tuned());
    let (installs, ways) = drive(&mut c, epochs, |_| mix_a.clone());
    assert!(
        installs <= 1,
        "stationary workload churned: {installs} installs"
    );
    rows.push(ctrl_row("stationary_tuned", &c, epochs, installs, ways));

    // The adversarial oscillation, gate off: the paper's controller follows
    // every flip.
    let mut c = controller(ControlConfig::default());
    let (off_installs, off_ways) = drive(&mut c, epochs, |e| {
        if e % 2 == 0 {
            mix_a.clone()
        } else {
            mix_b.clone()
        }
    });
    rows.push(ctrl_row(
        "oscillation_no_hyst",
        &c,
        epochs,
        off_installs,
        off_ways,
    ));

    // Same oscillation, tuned gate: flip-flop detection arms an exponential
    // hold-off and the churn collapses.
    let mut c = controller(ControlConfig::tuned());
    let (on_installs, on_ways) = drive(&mut c, epochs, |e| {
        if e % 2 == 0 {
            mix_a.clone()
        } else {
            mix_b.clone()
        }
    });
    let hyst = c.counters();
    assert!(hyst.holdoffs >= 1, "oscillation never armed a hold-off");
    assert!(
        off_installs >= 5 * on_installs.max(1),
        "churn reduction below 5x: {off_installs} installs without hysteresis, \
         {on_installs} with"
    );
    rows.push(ctrl_row(
        "oscillation_tuned",
        &c,
        epochs,
        on_installs,
        on_ways,
    ));

    // Phase shift during an armed hold-off: the bypass must follow the
    // workload instead of sitting out the back-off.
    let mut c = controller(ControlConfig::tuned());
    let (installs, ways) = drive(&mut c, 12, |e| {
        if e >= 5 {
            shifted.clone()
        } else if e % 2 == 0 {
            mix_a.clone()
        } else {
            mix_b.clone()
        }
    });
    assert!(
        c.counters().phase_bypasses >= 1,
        "phase change never bypassed the hold-off"
    );
    rows.push(ctrl_row("phase_shift_tuned", &c, 12, installs, ways));

    // Budget starvation after one good decision: every later epoch sheds to
    // the last-good plan — the ladder's equal fallback must stay untouched.
    let mut c = controller(ControlConfig::default());
    let (first, _) = drive(&mut c, 1, |_| mix_a.clone());
    assert_eq!(first, 1, "unlimited first epoch must install");
    c.set_control(ControlConfig::default().with_step_budget(1));
    let (starved, _) = drive(&mut c, epochs - 1, |e| {
        if e % 2 == 0 {
            mix_b.clone()
        } else {
            mix_a.clone()
        }
    });
    let f = c.counters();
    assert_eq!(starved, 0, "a starved solver must not install");
    assert_eq!(f.budget_sheds, epochs - 1, "every starved epoch sheds");
    assert_eq!(f.equal_fallbacks, 0, "sheds keep the last-good plan");
    assert!(
        c.last_plan().is_some(),
        "last-good plan survives starvation"
    );
    rows.push(ctrl_row("oscillation_starved", &c, epochs, first, 0));

    // Full-simulation paper mixes under behaviour-neutral defaults: the
    // budget never sheds and the guard never trips.
    let mixes = table3_sets(args.seed);
    let n_mixes = if args.quick { 1 } else { 2 };
    let indexed: Vec<(usize, Vec<String>)> = mixes[..n_mixes].iter().cloned().enumerate().collect();
    let sim_rows: Vec<StabilityRow> = indexed
        .par_iter()
        .map(|(i, mix)| {
            let r = System::new(sim_options(&args, Policy::BankAware), resolve(mix)).run();
            assert_eq!(r.fault.budget_sheds, 0, "paper mix {i} shed a decision");
            assert_eq!(r.fault.guard_trips, 0, "paper mix {i} tripped the guard");
            sim_row(&format!("paper_mix_{i}"), &r)
        })
        .collect();
    rows.extend(sim_rows);

    // One real mix through the tuned gate, for the report: how much churn
    // the gate absorbs on a non-adversarial workload.
    let mut opts = sim_options(&args, Policy::BankAware);
    opts.control = ControlConfig::tuned();
    let r = System::new(opts, resolve(&mixes[0])).run();
    assert_eq!(r.fault.budget_sheds, 0, "tuned paper mix shed a decision");
    rows.push(sim_row("paper_mix_0_tuned", &r));

    println!("Stability: plan churn, hysteresis and decision budget");
    println!(
        "oscillation churn reduction: {off_installs} installs -> {on_installs} \
         ({:.1}x), ways moved {off_ways} -> {on_ways}",
        off_installs as f64 / on_installs.max(1) as f64
    );
    let widths = [20, 7, 9, 6, 5, 9, 7, 6, 6, 7];
    println!(
        "{}",
        row(
            &[
                "scenario", "epochs", "installs", "held", "hold", "bypasses", "sheds", "guard",
                "equal", "miss"
            ]
            .map(String::from),
            &widths
        )
    );
    for r in &rows {
        println!(
            "{}",
            row(
                &[
                    r.scenario.clone(),
                    format!("{}", r.epochs),
                    format!("{}", r.installs),
                    format!("{}", r.plans_held),
                    format!("{}", r.holdoffs),
                    format!("{}", r.phase_bypasses),
                    format!("{}", r.budget_sheds),
                    format!("{}", r.guard_trips),
                    format!("{}", r.equal_fallbacks),
                    r.miss_ratio
                        .map(|m| format!("{m:.3}"))
                        .unwrap_or_else(|| "-".into()),
                ],
                &widths
            )
        );
    }
    let path = write_json("stability", &rows);
    println!("wrote {}", path.display());
}

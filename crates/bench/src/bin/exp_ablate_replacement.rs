//! Design ablation — replacement policy vs the paper's LRU assumption.
//!
//! The MSA profiler and the partitioning mathematics assume true LRU in
//! every bank; real hardware ships tree-PLRU or NRU. This experiment runs
//! one Table III set under Bank-aware with each policy and reports how much
//! of the scheme's benefit survives the approximation.

use bap_bench::common::{write_json, Args};
use bap_bench::detailed::sim_options;
use bap_bench::mixes::{resolve, table3_sets};
use bap_cache::ReplacementPolicy;
use bap_core::Policy;
use bap_system::System;
use rayon::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct ReplacementRow {
    policy: String,
    bank_aware_misses: u64,
    no_partition_misses: u64,
    relative: f64,
    mean_cpi: f64,
}

fn main() {
    let args = Args::parse();
    let mix = table3_sets(args.seed).remove(0);
    let policies = [
        ReplacementPolicy::TrueLru,
        ReplacementPolicy::TreePlru,
        ReplacementPolicy::Nru,
        ReplacementPolicy::Random,
    ];
    let rows: Vec<ReplacementRow> = policies
        .par_iter()
        .map(|&replacement| {
            let run = |p: Policy| {
                let mut opts = sim_options(&args, p);
                opts.replacement = replacement;
                System::new(opts, resolve(&mix)).run()
            };
            let ba = run(Policy::BankAware);
            let none = run(Policy::NoPartition);
            ReplacementRow {
                policy: format!("{replacement:?}"),
                bank_aware_misses: ba.total_l2_misses(),
                no_partition_misses: none.total_l2_misses(),
                relative: ba.total_l2_misses() as f64 / none.total_l2_misses().max(1) as f64,
                mean_cpi: ba.mean_cpi(),
            }
        })
        .collect();

    println!("Replacement-policy ablation (mix: {})", mix.join(", "));
    println!(
        "{:>10} {:>14} {:>14} {:>10} {:>8}",
        "policy", "BA misses", "none misses", "relative", "CPI"
    );
    for r in &rows {
        println!(
            "{:>10} {:>14} {:>14} {:>10.3} {:>8.3}",
            r.policy, r.bank_aware_misses, r.no_partition_misses, r.relative, r.mean_cpi
        );
    }
    println!("\nexpected: the bank-aware benefit survives PLRU/NRU nearly intact;");
    println!("Random degrades hit rates across the board.");
    let path = write_json("ablate_replacement", &rows);
    println!("wrote {}", path.display());
}

//! Run every experiment in sequence (the full reproduction pass).
//!
//! ```sh
//! cargo run --release -p bap-bench --bin exp_all            # full budgets
//! cargo run --release -p bap-bench --bin exp_all -- --quick # smoke pass
//! ```
//!
//! Each experiment is spawned as its own binary so their outputs and JSON
//! artefacts are identical to running them individually.

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "exp_table1",
    "exp_table2",
    "exp_fig2",
    "exp_fig3",
    "exp_fig7",
    "exp_table3",
    "exp_fig8",
    "exp_fig9",
    "exp_ablate_aggregation",
    "exp_ablate_profiler",
    "exp_ablate_epoch",
    "exp_ablate_maxcap",
    "exp_ablate_replacement",
    "exp_fairness",
    "exp_ablate_phases",
    "exp_scalability",
    "exp_ablate_floorplan",
    "exp_ablate_dram",
    "exp_ablate_isolation",
    "exp_validation",
    "exp_serve",
    "exp_overload",
    "exp_failover",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let self_path = std::env::current_exe().expect("own path");
    let bin_dir = self_path.parent().expect("bin dir");
    for exp in EXPERIMENTS {
        println!("\n================ {exp} ================");
        let status = Command::new(bin_dir.join(exp))
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {exp}: {e}"));
        assert!(status.success(), "{exp} failed");
    }
    println!("\nall experiments complete; see results/ and EXPERIMENTS.md");
}

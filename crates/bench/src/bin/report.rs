//! Render `results/*.json` into a single self-contained HTML report with
//! inline SVG charts — the paper's figures, regenerated.
//!
//! ```sh
//! cargo run --release -p bap-bench --bin report
//! # → results/report.html
//! ```

use bap_bench::common::{read_json, results_dir};
use serde_json::Value;
use std::fmt::Write as _;

/// One chart series: (name, colour, points).
type Series<'a> = (&'a str, &'a str, Vec<(f64, f64)>);
/// An owned chart series (name built at run time).
type OwnedSeries = (String, &'static str, Vec<(f64, f64)>);

const W: f64 = 640.0;
const H: f64 = 300.0;
const ML: f64 = 56.0; // left margin
const MB: f64 = 36.0; // bottom margin
const MT: f64 = 18.0;

/// Map a data point into the plot area.
fn xy(x: f64, x_max: f64, y: f64, y_max: f64) -> (f64, f64) {
    let px = ML + (x / x_max) * (W - ML - 12.0);
    let py = (H - MB) - (y / y_max).min(1.0) * (H - MB - MT);
    (px, py)
}

fn axes(svg: &mut String, y_max: f64, x_label: &str, y_label: &str) {
    let _ = write!(
        svg,
        r##"<line x1="{ML}" y1="{MT}" x2="{ML}" y2="{y0}" stroke="#333"/>
<line x1="{ML}" y1="{y0}" x2="{x1}" y2="{y0}" stroke="#333"/>
<text x="{xm}" y="{ylab}" font-size="11" text-anchor="middle">{x_label}</text>
<text x="14" y="{ym}" font-size="11" text-anchor="middle" transform="rotate(-90 14 {ym})">{y_label}</text>
<text x="{tick}" y="{ty}" font-size="10" text-anchor="end">{y_max:.2}</text>
<text x="{tick}" y="{by}" font-size="10" text-anchor="end">0</text>"##,
        y0 = H - MB,
        x1 = W - 8.0,
        xm = (ML + W) / 2.0,
        ylab = H - 8.0,
        ym = H / 2.0,
        tick = ML - 4.0,
        ty = MT + 10.0,
        by = H - MB,
    );
}

/// A multi-series line chart.
fn line_chart(title: &str, series: &[Series], x_label: &str, y_label: &str) -> String {
    let x_max = series
        .iter()
        .flat_map(|(_, _, pts)| pts.iter().map(|p| p.0))
        .fold(1.0f64, f64::max);
    let y_max = series
        .iter()
        .flat_map(|(_, _, pts)| pts.iter().map(|p| p.1))
        .fold(1e-9f64, f64::max)
        * 1.05;
    let mut svg = format!(
        r##"<svg viewBox="0 0 {W} {H}" width="{W}" xmlns="http://www.w3.org/2000/svg">
<text x="{}" y="12" font-size="13" text-anchor="middle" font-weight="bold">{title}</text>"##,
        W / 2.0
    );
    axes(&mut svg, y_max, x_label, y_label);
    for (i, (name, colour, pts)) in series.iter().enumerate() {
        let path: Vec<String> = pts
            .iter()
            .enumerate()
            .map(|(j, &(x, y))| {
                let (px, py) = xy(x, x_max, y, y_max);
                format!("{}{px:.1},{py:.1}", if j == 0 { "M" } else { "L" })
            })
            .collect();
        let _ = write!(
            svg,
            r##"<path d="{}" fill="none" stroke="{colour}" stroke-width="1.8"/>
<text x="{}" y="{}" font-size="11" fill="{colour}">{name}</text>"##,
            path.join(" "),
            W - 140.0,
            MT + 14.0 * (i as f64 + 1.0),
        );
    }
    svg.push_str("</svg>");
    svg
}

/// A grouped bar chart: one group per label, one bar per series.
fn bar_chart(
    title: &str,
    labels: &[String],
    series: &[(&str, &str, Vec<f64>)],
    y_label: &str,
) -> String {
    let y_max = series
        .iter()
        .flat_map(|(_, _, v)| v.iter().copied())
        .fold(1e-9f64, f64::max)
        * 1.1;
    let mut svg = format!(
        r##"<svg viewBox="0 0 {W} {H}" width="{W}" xmlns="http://www.w3.org/2000/svg">
<text x="{}" y="12" font-size="13" text-anchor="middle" font-weight="bold">{title}</text>"##,
        W / 2.0
    );
    axes(&mut svg, y_max, "", y_label);
    let plot_w = W - ML - 12.0;
    let group_w = plot_w / labels.len() as f64;
    let bar_w = (group_w * 0.8) / series.len() as f64;
    for (g, label) in labels.iter().enumerate() {
        let gx = ML + g as f64 * group_w;
        let _ = write!(
            svg,
            r##"<text x="{:.1}" y="{}" font-size="10" text-anchor="middle">{label}</text>"##,
            gx + group_w / 2.0,
            H - MB + 14.0
        );
        for (sidx, (_, colour, values)) in series.iter().enumerate() {
            let v = values.get(g).copied().unwrap_or(0.0);
            let h = (v / y_max).min(1.0) * (H - MB - MT);
            let _ = write!(
                svg,
                r##"<rect x="{:.1}" y="{:.1}" width="{:.1}" height="{:.1}" fill="{colour}"/>"##,
                gx + group_w * 0.1 + sidx as f64 * bar_w,
                (H - MB) - h,
                bar_w * 0.92,
                h
            );
        }
    }
    for (i, (name, colour, _)) in series.iter().enumerate() {
        let _ = write!(
            svg,
            r##"<text x="{}" y="{}" font-size="11" fill="{colour}">{name}</text>"##,
            W - 150.0,
            MT + 14.0 * (i as f64 + 1.0),
        );
    }
    svg.push_str("</svg>");
    svg
}

fn section(html: &mut String, title: &str, body: &str) {
    let _ = write!(html, "<h2>{title}</h2>\n{body}\n");
}

fn main() {
    let mut html = String::from(
        "<!doctype html><html><head><meta charset=\"utf-8\">\
         <title>bankaware — reproduction report</title>\
         <style>body{font-family:sans-serif;max-width:760px;margin:2em auto;}\
         h2{border-bottom:1px solid #ccc;padding-bottom:4px;}</style></head><body>\
         <h1>Bank-aware Dynamic Cache Partitioning — reproduction report</h1>\
         <p>Charts regenerated from <code>results/*.json</code>. Paper: Kaseridis,\
         Stuecheli, John, ICPP 2009.</p>",
    );

    // Fig. 3 — miss-ratio curves.
    if let Some(curves) = read_json::<Vec<Value>>("fig3_curves") {
        let colours = ["#1f77b4", "#d62728", "#2ca02c"];
        let series: Vec<OwnedSeries> = curves
            .iter()
            .zip(colours)
            .map(|(c, colour)| {
                let name = c["workload"].as_str().unwrap_or("?").to_string();
                let ways = c["ways"].as_array().cloned().unwrap_or_default();
                let ratios = c["cumulative_miss_ratio"]
                    .as_array()
                    .cloned()
                    .unwrap_or_default();
                let pts = ways
                    .iter()
                    .zip(&ratios)
                    .map(|(w, r)| (w.as_f64().unwrap_or(0.0), r.as_f64().unwrap_or(0.0)))
                    .collect();
                (name, colour, pts)
            })
            .collect();
        let series_ref: Vec<Series> = series
            .iter()
            .map(|(n, c, p)| (n.as_str(), *c, p.clone()))
            .collect();
        section(
            &mut html,
            "Fig. 3 — cumulative miss ratio vs dedicated ways",
            &line_chart("", &series_ref, "dedicated cache ways", "miss ratio"),
        );
    }

    // Fig. 7 — Monte Carlo curves.
    if let Some(mc) = read_json::<Value>("fig7_monte_carlo") {
        let to_pts = |key: &str| -> Vec<(f64, f64)> {
            mc[key]
                .as_array()
                .map(|a| {
                    a.iter()
                        .enumerate()
                        .map(|(i, v)| (i as f64, v.as_f64().unwrap_or(1.0)))
                        .collect()
                })
                .unwrap_or_default()
        };
        let series = vec![
            (
                "unrestricted",
                "#1f77b4",
                to_pts("sorted_unrestricted_relative"),
            ),
            (
                "bank-aware",
                "#d62728",
                to_pts("sorted_bank_aware_relative"),
            ),
        ];
        section(
            &mut html,
            "Fig. 7 — relative miss ratio to fixed even shares (1000 mixes)",
            &line_chart(
                "",
                &series,
                "mix (sorted by unrestricted)",
                "relative miss ratio",
            ),
        );
    }

    // Figs. 8/9 — relative bars.
    for (file, title, paper) in [
        (
            "fig8_relative_miss",
            "Fig. 8 — relative L2 miss rate over No-partitions",
            "paper GM ≈ 0.30",
        ),
        (
            "fig9_relative_cpi",
            "Fig. 9 — relative CPI over No-partitions",
            "paper GM ≈ 0.57",
        ),
    ] {
        if let Some(fig) = read_json::<Value>(file) {
            let eq: Vec<f64> = fig["relative_equal"]
                .as_array()
                .map(|a| a.iter().filter_map(Value::as_f64).collect())
                .unwrap_or_default();
            let ba: Vec<f64> = fig["relative_bank_aware"]
                .as_array()
                .map(|a| a.iter().filter_map(Value::as_f64).collect())
                .unwrap_or_default();
            let mut labels: Vec<String> = (1..=eq.len()).map(|i| format!("Set{i}")).collect();
            let mut eq = eq;
            let mut ba = ba;
            eq.push(fig["gm_equal"].as_f64().unwrap_or(0.0));
            ba.push(fig["gm_bank_aware"].as_f64().unwrap_or(0.0));
            labels.push("GM".into());
            let series = vec![("equal", "#7f7f7f", eq), ("bank-aware", "#d62728", ba)];
            section(
                &mut html,
                &format!("{title} ({paper})"),
                &bar_chart("", &labels, &series, "relative to no-partitions"),
            );
        }
    }

    // Aggregation ablation — migrations and energy bars.
    if let Some(rows) = read_json::<Vec<Value>>("ablate_aggregation") {
        let labels: Vec<String> = rows
            .iter()
            .map(|r| r["scheme"].as_str().unwrap_or("?").to_string())
            .collect();
        let grab = |key: &str| -> Vec<f64> {
            rows.iter()
                .map(|r| r[key].as_f64().unwrap_or(0.0))
                .collect()
        };
        section(
            &mut html,
            "§III-B — bank-aggregation schemes",
            &bar_chart(
                "",
                &labels,
                &[
                    (
                        "migrations / 1k accesses",
                        "#d62728",
                        grab("migrations_per_1k"),
                    ),
                    (
                        "tag probes / 1k ÷ 100",
                        "#1f77b4",
                        grab("probes_per_1k").iter().map(|v| v / 100.0).collect(),
                    ),
                ],
                "per 1000 L2 accesses",
            ),
        );
    }

    // Epoch-length sensitivity.
    if let Some(rows) = read_json::<Vec<Value>>("ablate_epoch") {
        let pts: Vec<(f64, f64)> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| (i as f64, r["miss_ratio"].as_f64().unwrap_or(0.0)))
            .collect();
        let labels: Vec<String> = rows
            .iter()
            .map(|r| format!("{}", r["epoch_cycles"].as_u64().unwrap_or(0)))
            .collect();
        section(
            &mut html,
            &format!("Epoch-length sensitivity (cycles: {})", labels.join(", ")),
            &line_chart(
                "",
                &[("miss ratio", "#2ca02c", pts)],
                "epoch (index into the sweep)",
                "L2 miss ratio",
            ),
        );
    }

    // Phase adaptation.
    if let Some(rows) = read_json::<Vec<Value>>("ablate_phases") {
        let labels: Vec<String> = rows
            .iter()
            .map(|r| r["configuration"].as_str().unwrap_or("?").to_string())
            .collect();
        let misses: Vec<f64> = rows
            .iter()
            .map(|r| r["misses"].as_f64().unwrap_or(0.0))
            .collect();
        section(
            &mut html,
            "Phase adaptation — dynamic vs frozen vs equal",
            &bar_chart("", &labels, &[("L2 misses", "#9467bd", misses)], "misses"),
        );
    }

    // Decision-trace summary (exp_trace).
    if let Some(tr) = read_json::<Value>("trace_summary") {
        let s = &tr["summary"];
        let grab = |k: &str| s[k].as_f64().unwrap_or(0.0);
        let labels: Vec<String> = [
            "center grants",
            "local grants",
            "pairs",
            "shares",
            "rules applied",
            "rules rejected",
            "plans installed",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let values = vec![
            grab("center_grants"),
            grab("local_grants"),
            grab("pairs_formed"),
            grab("shares_taken"),
            grab("rules_applied"),
            grab("rules_rejected"),
            grab("plans_installed"),
        ];
        let verdict = if tr["replayed_exactly"].as_bool().unwrap_or(false) {
            "reproduced every installed plan exactly"
        } else {
            "DIVERGED"
        };
        let body = format!(
            "<p>{} events over {} epochs; offline replay of {} Bank-aware solves {}.</p>{}",
            s["events"].as_u64().unwrap_or(0),
            s["epochs"].as_u64().unwrap_or(0),
            tr["solves_replayed"].as_u64().unwrap_or(0),
            verdict,
            bar_chart(
                "",
                &labels,
                &[("decisions", "#8c564b", values)],
                "events per run",
            )
        );
        section(
            &mut html,
            "Decision trace — Bank-aware allocation events (exp_trace)",
            &body,
        );
    }

    let _ = write!(html, "</body></html>");
    let path = results_dir().join("report.html");
    std::fs::write(&path, html).expect("write report");
    println!("wrote {}", path.display());
}

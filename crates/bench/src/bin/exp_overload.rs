//! `bap serve` past its capacity: an open-loop chaos soak at 4× the
//! calibrated decision rate, with mid-run bank faults and a full
//! crash/restart between flood waves — the overload tier's proving run.
//!
//! The harness first calibrates the per-decision solve cost on an
//! unregulated service, then floods a *regulated* server (queue cap,
//! per-session cap, tick budget, brownout ladder) with open-loop
//! `submit()` producers at `FLOOD_MULTIPLIER`× that capacity. Every third
//! flood request carries a tight `deadline_ms`. Between the two flood
//! waves the server is checkpointed, shut down, joined, hit with bank
//! faults on two sessions, and respawned — the same service, degraded
//! hardware. A closed-loop probe client runs `call_with_retry` throughout,
//! and a calm phase afterwards lets the brownout ladder walk home.
//!
//! The run fails (writing `results/overload_failing_seed.txt`) unless:
//!
//! * **nothing panics** — every thread joins, no session is quarantined;
//! * **every response is typed** — a `Decision`, an `overloaded` shed, or
//!   a `deadline-exceeded` expiry; anything else is a violation;
//! * **every shed carries a retry hint** — `retry_after_ms >= 1`, always;
//! * **deadlines actually fire** — at least one request expires in queue;
//! * **the brownout ladder moves** — at least one `BrownoutEnter` under
//!   flood and at least one `BrownoutExit` once the load drops;
//! * **the mid-run checkpoint restores** — a fresh service cold-starts
//!   from the file with every session intact.
//!
//! The full run additionally enforces a goodput floor and a p99 bound for
//! admitted requests; `--quick` is the CI smoke, and `--check` gates the
//! quick-mode *calm-phase* median round trip against the committed
//! baseline with 2× headroom (the flood-tail p99 swings with the seed's
//! solver-cost luck; post-recovery latency does not). Results land in
//! `results/BENCH_overload.json`.

use bap_bench::common::{results_dir, write_json, Args};
use bap_core::{DecisionService, ServeConfig, Server};
use bap_trace::wire::{RequestKind, ResponseKind, WireCurve, WireRequest};
use bap_trace::Tracer;
use bap_types::{OverloadConfig, RetryConfig};
use serde::{Deserialize, Serialize};
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

/// Committed reference point for the `--check` regression gate.
const BASELINE_JSON: &str = include_str!("../baselines/overload_baseline.json");

/// The gate trips when the quick-mode calm-phase median round trip
/// exceeds baseline × this factor.
const CHECK_HEADROOM: f64 = 2.0;

/// Cores per flooding session: half the serve tier's 32 keeps single
/// decisions cheap enough that the tick budget, not the solver, is the
/// binding constraint.
const CORES: usize = 16;

/// Offered load as a multiple of the calibrated serial capacity.
const FLOOD_MULTIPLIER: f64 = 4.0;

/// Every `DEADLINE_EVERY`-th flood request carries this deadline — far
/// shorter than a flooded queue wait, so expiries must occur.
const DEADLINE_EVERY: u64 = 3;
const DEADLINE_MS: u64 = 8;

/// Producers pace their open-loop sends in bursts on this interval.
const BURST_INTERVAL: Duration = Duration::from_millis(5);

/// The probe's own session id, outside the producer band.
const PROBE_SESSION: u64 = 999;

/// Admitted decisions per producer-wave excluded from the latency
/// percentiles: the governor's first tick runs before it has a cost
/// model and may admit one outsized cold batch.
const WARMUP_ADMITTED: usize = 8;

/// Full-run floors. Typical runs admit 70–85% of the flood (batched
/// ticks serve well past the serial calibration rate), but the floor is
/// deliberately conservative: the claim under test is *no collapse*
/// under sustained 4× overload, not a precise admission ratio. The p99
/// bound says no admitted request waits past ~a second even then.
const TARGET_GOODPUT_FRAC: f64 = 0.05;
const TARGET_P99_ADMITTED_US: f64 = 1_000_000.0;

#[derive(Serialize)]
struct OverloadStats {
    sessions: usize,
    cores_per_session: usize,
    calibrated_cost_us: f64,
    offered_rate_multiplier: f64,
    flood_requests: usize,
    decisions: usize,
    shed: usize,
    deadline_exceeded: usize,
    goodput_frac: f64,
    p50_admitted_us: f64,
    p99_admitted_us: f64,
    max_admitted_us: f64,
    sheds_missing_hint: usize,
    probe_ok: usize,
    probe_gave_up: usize,
    calm_decisions: usize,
    calm_p50_us: f64,
    calm_p99_us: f64,
    shed_events: u64,
    deadline_events: u64,
    brownout_enters: u64,
    brownout_exits: u64,
    quarantined: usize,
    bank_faults: usize,
    checkpoint_tick: u64,
    restored_sessions: usize,
}

#[derive(Deserialize)]
struct Baseline {
    calm_p50_us: f64,
}

/// Per-core knee curves, distinct every round: an overload flood must pay
/// real solves, not warm-start reuse (the calm phase pins `round` to get
/// the cheap path on purpose).
fn round_curves(session: u64, round: u64, master_seed: u64) -> Vec<WireCurve> {
    let seed = master_seed ^ session.wrapping_mul(0x9E37_79B9) ^ round.wrapping_mul(0x1_0000_01B3);
    (0..CORES)
        .map(|core| {
            let h = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((core as u64).wrapping_mul(0x0100_0000_01B3));
            let base = 30_000.0 + (h % 90_000) as f64;
            let knee = 2 + ((h >> 17) % 40) as usize;
            let floor = ((h >> 33) % 3_000) as f64;
            let misses = (0..=72)
                .map(|w| {
                    if w >= knee {
                        floor
                    } else {
                        base - (base - floor) * w as f64 / knee as f64
                    }
                })
                .collect();
            WireCurve {
                accesses: base.max(1.0) * 4.0,
                misses,
            }
        })
        .collect()
}

/// What one flood producer observed (all receivers drained).
#[derive(Default)]
struct FloodOut {
    sent: usize,
    decisions: usize,
    shed: usize,
    deadline_exceeded: usize,
    missing_hint: usize,
    latencies_us: Vec<f64>,
    violations: Vec<String>,
}

/// One open-loop flood wave for one session: submit without waiting at
/// the paced rate, then drain every reply channel and classify.
#[allow(clippy::too_many_arguments)]
fn flood_producer(
    server: &Server,
    session: u64,
    open: bool,
    n_reqs: usize,
    burst: usize,
    id_base: u64,
    master_seed: u64,
) -> FloodOut {
    let conn = server.client();
    let mut out = FloodOut::default();
    if open {
        match conn.call_with_retry(
            WireRequest::new(
                id_base,
                RequestKind::Open {
                    session,
                    cores: CORES,
                },
            ),
            &RetryConfig::default(),
        ) {
            Ok(resp) if matches!(resp.kind, ResponseKind::Opened { .. }) => {}
            Ok(resp) => out
                .violations
                .push(format!("session {session}: open got {}", resp.kind.label())),
            Err(e) => out
                .violations
                .push(format!("session {session}: open failed: {e}")),
        }
    }
    // A collector thread drains reply channels *as answers arrive*, so
    // admitted latencies are measured at arrival, not after the sender
    // finishes its open loop. Per-producer admitted answers arrive in
    // submission order (ticks complete monotonically), so blocking on
    // each receiver in turn never inflates a Decision's timestamp.
    type Pending = (u64, Instant, mpsc::Receiver<bap_trace::wire::WireResponse>);
    let (pending_tx, pending_rx) = mpsc::channel::<Pending>();
    let collector = thread::spawn(move || {
        let mut out = FloodOut::default();
        while let Ok((id, sent_at, rx)) = pending_rx.recv() {
            let resp = match rx.recv() {
                Ok(resp) => resp,
                Err(_) => {
                    out.violations
                        .push(format!("session {session}: reply {id} dropped"));
                    continue;
                }
            };
            if resp.id != id {
                out.violations
                    .push(format!("session {session}: sent id {id}, got {}", resp.id));
            }
            match &resp.kind {
                ResponseKind::Decision { .. } => {
                    out.decisions += 1;
                    if out.decisions > WARMUP_ADMITTED {
                        out.latencies_us.push(sent_at.elapsed().as_secs_f64() * 1e6);
                    }
                }
                ResponseKind::Error {
                    code,
                    retry_after_ms,
                    ..
                } if code == "overloaded" => {
                    out.shed += 1;
                    if retry_after_ms.is_none_or(|ms| ms == 0) {
                        out.missing_hint += 1;
                    }
                }
                ResponseKind::Error { code, .. } if code == "deadline-exceeded" => {
                    out.deadline_exceeded += 1;
                }
                other => out.violations.push(format!(
                    "session {session}: request {id} answered {}",
                    other.label()
                )),
            }
        }
        out
    });
    for i in 0..n_reqs as u64 {
        let mut req = WireRequest::new(
            id_base + 1 + i,
            RequestKind::Snapshot {
                session,
                curves: round_curves(session, i, master_seed),
            },
        );
        if i % DEADLINE_EVERY == 0 {
            req = req.with_deadline_ms(DEADLINE_MS);
        }
        let sent_at = Instant::now();
        match conn.submit(req) {
            Ok(rx) => {
                out.sent += 1;
                let _ = pending_tx.send((id_base + 1 + i, sent_at, rx));
            }
            Err(e) => out
                .violations
                .push(format!("session {session}: submit failed mid-flood: {e}")),
        }
        if (i + 1) % burst as u64 == 0 {
            thread::sleep(BURST_INTERVAL);
        }
    }
    drop(pending_tx);
    let collected = collector.join().expect("collector thread");
    out.decisions = collected.decisions;
    out.shed = collected.shed;
    out.deadline_exceeded = collected.deadline_exceeded;
    out.missing_hint = collected.missing_hint;
    out.latencies_us = collected.latencies_us;
    out.violations.extend(collected.violations);
    out
}

/// The closed-loop probe: `call_with_retry` against its own session while
/// the flood rages — the client back-off story under real contention.
fn probe_client(
    server: &Server,
    open: bool,
    calls: usize,
    id_base: u64,
    master_seed: u64,
) -> (usize, usize, Vec<String>) {
    let conn = server.client();
    let retry = RetryConfig::default();
    let (mut ok, mut gave_up) = (0usize, 0usize);
    let mut violations = Vec::new();
    if open {
        if let Err(e) = conn.call_with_retry(
            WireRequest::new(
                id_base,
                RequestKind::Open {
                    session: PROBE_SESSION,
                    cores: CORES,
                },
            ),
            &retry,
        ) {
            violations.push(format!("probe: open failed: {e}"));
            return (0, 0, violations);
        }
    }
    for i in 0..calls as u64 {
        let req = WireRequest::new(
            id_base + 1 + i,
            RequestKind::Snapshot {
                session: PROBE_SESSION,
                curves: round_curves(PROBE_SESSION, i, master_seed),
            },
        );
        match conn.call_with_retry(req, &retry) {
            Ok(resp) if matches!(resp.kind, ResponseKind::Decision { .. }) => ok += 1,
            Ok(resp) => violations.push(format!("probe: got {}", resp.kind.label())),
            Err(bap_core::ClientError::GaveUp { .. }) => gave_up += 1,
            Err(e) => violations.push(format!("probe: {e}")),
        }
        thread::sleep(Duration::from_millis(2));
    }
    (ok, gave_up, violations)
}

fn fail(master_seed: u64, violation: &str) -> ! {
    let path = results_dir().join("overload_failing_seed.txt");
    std::fs::write(
        &path,
        format!("seed={master_seed}\nviolation={violation}\n"),
    )
    .expect("write failing seed");
    eprintln!("OVERLOAD FAILURE: {violation}");
    eprintln!("reproduce with: cargo run --release --bin exp_overload -- --seed {master_seed}");
    eprintln!("failing seed written to {}", path.display());
    std::process::exit(1);
}

/// Serve one control request on a fresh client, or die with context.
fn control(server: &Server, seed: u64, id: u64, kind: RequestKind) -> ResponseKind {
    let what = kind.label();
    match server.client().call(WireRequest::new(id, kind)) {
        Ok(resp) => resp.kind,
        Err(e) => fail(seed, &format!("control {what} failed: {e}")),
    }
}

fn main() {
    let args = Args::parse();
    let sessions: usize = if args.quick { 3 } else { 4 };
    let reqs_per_wave: usize = if args.quick { 150 } else { 600 };
    let probe_calls: usize = if args.quick { 8 } else { 20 };
    let calm_calls: usize = 30;
    let checkpoint_path = results_dir().join("overload_checkpoint.json");

    // ---- Calibrate: serial per-decision cost through an unregulated
    // server — thread hop, batch machinery and all, so "4x capacity"
    // means 4x what this exact pipeline can actually serve.
    let cal = Server::spawn(DecisionService::new(ServeConfig::default()));
    let conn = cal.client();
    conn.call(WireRequest::new(
        1,
        RequestKind::Open {
            session: 1,
            cores: CORES,
        },
    ))
    .expect("calibration open");
    // Warm the pipeline (worker pool spawn, first-touch allocations) off
    // the clock, then measure *sustained throughput*: one open-loop batch
    // of distinct-curve decisions, timed to the last answer. A large
    // sample swallows the solver's heavy cost tail (single solves range
    // ~50 us to ~80 ms with curve shape), which per-call round-trip
    // timings systematically miss.
    for i in 0..4u64 {
        conn.call(WireRequest::new(
            2 + i,
            RequestKind::Snapshot {
                session: 1,
                curves: round_curves(1, i, args.seed ^ 0xCA11),
            },
        ))
        .expect("calibration warmup");
    }
    let n_cal = 160u64;
    let t0 = Instant::now();
    let replies: Vec<_> = (0..n_cal)
        .map(|i| {
            conn.submit(WireRequest::new(
                100 + i,
                RequestKind::Snapshot {
                    session: 1,
                    curves: round_curves(1, 4 + i, args.seed ^ 0xCA11),
                },
            ))
            .expect("calibration submit")
        })
        .collect();
    for rx in replies {
        rx.recv().expect("calibration decision");
    }
    let cost_us = t0.elapsed().as_secs_f64() * 1e6 / n_cal as f64;
    conn.call(WireRequest::new(999, RequestKind::Shutdown))
        .expect("calibration shutdown");
    cal.join();
    // Offered load: FLOOD_MULTIPLIER × capacity, split across producers,
    // sent in bursts every BURST_INTERVAL.
    let rate_per_producer = FLOOD_MULTIPLIER * 1e6 / cost_us / sessions as f64;
    let burst = ((rate_per_producer * BURST_INTERVAL.as_secs_f64()).ceil() as usize).max(1);
    // A wave must span at least 20 pacing intervals: a sustained flood,
    // not one spike — the ladder needs ticks to walk. On a machine fast
    // enough that the configured count would drain in fewer, send more.
    let reqs_per_wave = reqs_per_wave.max(burst * 20);
    println!(
        "calibrated: {cost_us:.0} us/decision at {CORES} cores; \
         flooding {sessions} sessions at {FLOOD_MULTIPLIER}x ({burst} reqs / {:?} each)",
        BURST_INTERVAL
    );

    // ---- The regulated server under test.
    let tracer = Tracer::ring();
    let cfg = ServeConfig {
        tracer: tracer.clone(),
        // A small queue cap bounds the *first* tick, which runs before
        // the governor has a cost model and would otherwise admit one
        // giant batch whose latency dominates the tail. Enter-on-one /
        // exit-after-three is the shed-early-recover-slowly posture: any
        // over-budget tick steps the ladder down, and only a sustained
        // calm walks it back up.
        overload: Some(OverloadConfig {
            max_queue_depth: 16,
            max_session_inflight: 8,
            tick_budget_ms: 4,
            brownout_enter_ticks: 1,
            brownout_exit_ticks: 3,
        }),
        checkpoint_path: Some(checkpoint_path.clone()),
        ..ServeConfig::default()
    };
    let mut server = Server::spawn(DecisionService::new(cfg));

    let mut waves: Vec<FloodOut> = Vec::new();
    let (mut probe_ok, mut probe_gave_up) = (0usize, 0usize);
    let mut checkpoint_tick = 0u64;
    let bank_faults = 2usize;

    for wave in 0..2u64 {
        let first = wave == 0;
        let outs: Vec<FloodOut> = thread::scope(|scope| {
            let producers: Vec<_> = (0..sessions)
                .map(|c| {
                    let session = c as u64 + 1;
                    let id_base = session * 10_000_000 + wave * 1_000_000;
                    let server = &server;
                    scope.spawn(move || {
                        flood_producer(
                            server,
                            session,
                            first,
                            reqs_per_wave,
                            burst,
                            id_base,
                            args.seed ^ wave,
                        )
                    })
                })
                .collect();
            let probe = {
                let server = &server;
                scope.spawn(move || {
                    probe_client(
                        server,
                        first,
                        probe_calls,
                        900_000_000 + wave * 1_000_000,
                        args.seed ^ 0x9909 ^ wave,
                    )
                })
            };
            let (ok, gave_up, violations) = probe.join().expect("probe thread");
            if let Some(v) = violations.first() {
                fail(args.seed, v);
            }
            probe_ok += ok;
            probe_gave_up += gave_up;
            producers
                .into_iter()
                .map(|h| h.join().expect("producer thread"))
                .collect()
        });
        waves.extend(outs);

        if first {
            // ---- Chaos: checkpoint, crash, fault two banks, restart.
            match control(&server, args.seed, 950_000_001, RequestKind::Checkpoint) {
                ResponseKind::Checkpointed { tick, .. } => checkpoint_tick = tick,
                other => fail(args.seed, &format!("checkpoint got {}", other.label())),
            }
            match control(&server, args.seed, 950_000_002, RequestKind::Shutdown) {
                ResponseKind::Bye { .. } => {}
                other => fail(args.seed, &format!("shutdown got {}", other.label())),
            }
            let mut service = server.join();
            if service.num_quarantined() > 0 {
                fail(
                    args.seed,
                    &format!("{} sessions quarantined mid-run", service.num_quarantined()),
                );
            }
            service.fail_bank(1, 0);
            service.fail_bank(2, 1);
            println!(
                "wave 1 done: checkpointed at tick {checkpoint_tick}, crashed, \
                 faulted {bank_faults} banks, restarting"
            );
            server = Server::spawn(service);
        }
    }

    // ---- Calm: a trickle of closed-loop decisions walks the ladder home.
    let conn = server.client();
    let retry = RetryConfig::default();
    let mut calm_decisions = 0usize;
    let mut calm_lat_us: Vec<f64> = Vec::with_capacity(calm_calls);
    for i in 0..calm_calls as u64 {
        let req = WireRequest::new(
            980_000_000 + i,
            RequestKind::Snapshot {
                session: 1,
                curves: round_curves(1, 10_000, args.seed), // steady curves: warm reuse
            },
        );
        let t = Instant::now();
        match conn.call_with_retry(req, &retry) {
            Ok(resp) if matches!(resp.kind, ResponseKind::Decision { .. }) => {
                calm_decisions += 1;
                calm_lat_us.push(t.elapsed().as_secs_f64() * 1e6);
            }
            Ok(resp) => fail(args.seed, &format!("calm call got {}", resp.kind.label())),
            Err(e) => fail(args.seed, &format!("calm call failed: {e}")),
        }
        thread::sleep(Duration::from_millis(8));
    }
    match control(&server, args.seed, 999_999_999, RequestKind::Shutdown) {
        ResponseKind::Bye { .. } => {}
        other => fail(args.seed, &format!("final shutdown got {}", other.label())),
    }
    let service = server.join();

    // ---- Verdicts -------------------------------------------------------
    let quarantined = service.num_quarantined();
    if quarantined > 0 {
        fail(args.seed, &format!("{quarantined} sessions quarantined"));
    }
    if let Some(v) = waves.iter().flat_map(|w| &w.violations).next() {
        fail(args.seed, v);
    }
    let sent: usize = waves.iter().map(|w| w.sent).sum();
    let decisions: usize = waves.iter().map(|w| w.decisions).sum();
    let shed: usize = waves.iter().map(|w| w.shed).sum();
    let deadline_exceeded: usize = waves.iter().map(|w| w.deadline_exceeded).sum();
    let missing_hint: usize = waves.iter().map(|w| w.missing_hint).sum();
    if decisions + shed + deadline_exceeded != sent {
        fail(
            args.seed,
            &format!(
                "{sent} sent but {} classified",
                decisions + shed + deadline_exceeded
            ),
        );
    }
    if missing_hint > 0 {
        fail(
            args.seed,
            &format!("{missing_hint} sheds without a retry_after_ms hint"),
        );
    }
    if deadline_exceeded == 0 {
        fail(
            args.seed,
            "no deadline ever expired under a 4x flood with 8ms deadlines",
        );
    }
    if decisions == 0 {
        fail(args.seed, "zero goodput: every flood request was shed");
    }
    let summary = tracer.summary().expect("ring tracer carries a summary");
    if summary.brownout_enters == 0 {
        fail(args.seed, "the brownout ladder never engaged under flood");
    }
    if summary.brownout_exits == 0 {
        fail(
            args.seed,
            "the brownout ladder never exited after the load dropped",
        );
    }

    // The mid-run checkpoint must cold-start a fresh service.
    let mut restored = DecisionService::new(ServeConfig::default());
    let tick = match restored.restore_from_path(&checkpoint_path) {
        Ok(tick) => tick,
        Err(e) => fail(args.seed, &format!("checkpoint did not restore: {e}")),
    };
    if tick != checkpoint_tick {
        fail(
            args.seed,
            &format!("restored tick {tick} != checkpointed {checkpoint_tick}"),
        );
    }
    let expected_sessions = sessions + 1; // producers + the probe
    if restored.num_sessions() != expected_sessions {
        fail(
            args.seed,
            &format!(
                "restored {} of {expected_sessions} sessions",
                restored.num_sessions()
            ),
        );
    }

    // ---- Report ---------------------------------------------------------
    let mut lat: Vec<f64> = waves.iter().flat_map(|w| w.latencies_us.clone()).collect();
    lat.sort_by(|a, b| a.total_cmp(b));
    let pct = |p: f64| lat[((lat.len() as f64 * p) as usize).min(lat.len() - 1)];
    calm_lat_us.sort_by(|a, b| a.total_cmp(b));
    let calm_pct =
        |p: f64| calm_lat_us[((calm_lat_us.len() as f64 * p) as usize).min(calm_lat_us.len() - 1)];
    let goodput_frac = decisions as f64 / sent as f64;
    let stats = OverloadStats {
        sessions,
        cores_per_session: CORES,
        calibrated_cost_us: cost_us,
        offered_rate_multiplier: FLOOD_MULTIPLIER,
        flood_requests: sent,
        decisions,
        shed,
        deadline_exceeded,
        goodput_frac,
        p50_admitted_us: pct(0.50),
        p99_admitted_us: pct(0.99),
        max_admitted_us: *lat.last().expect("at least one admitted decision"),
        sheds_missing_hint: missing_hint,
        probe_ok,
        probe_gave_up,
        calm_decisions,
        calm_p50_us: calm_pct(0.50),
        calm_p99_us: calm_pct(0.99),
        shed_events: summary.overload_sheds,
        deadline_events: summary.deadline_exceeded,
        brownout_enters: summary.brownout_enters,
        brownout_exits: summary.brownout_exits,
        quarantined,
        bank_faults,
        checkpoint_tick,
        restored_sessions: restored.num_sessions(),
    };

    println!(
        "flood: {} requests at {FLOOD_MULTIPLIER}x -> {} decisions ({:.1}% goodput), \
         {} shed, {} deadline-exceeded",
        sent,
        decisions,
        goodput_frac * 100.0,
        shed,
        deadline_exceeded
    );
    println!(
        "  admitted p50 {:.0} us, p99 {:.0} us, max {:.0} us",
        stats.p50_admitted_us, stats.p99_admitted_us, stats.max_admitted_us
    );
    println!(
        "  probe: {} ok, {} gave up; calm: {}/{} decisions, p50 {:.0} us, p99 {:.0} us",
        probe_ok, probe_gave_up, calm_decisions, calm_calls, stats.calm_p50_us, stats.calm_p99_us
    );
    println!(
        "  ladder: {} enters, {} exits; {} shed events, {} deadline events; \
         {} quarantined",
        stats.brownout_enters,
        stats.brownout_exits,
        stats.shed_events,
        stats.deadline_events,
        quarantined
    );
    println!(
        "  chaos: {} bank faults across a crash/restart; checkpoint tick {} restored {} sessions",
        bank_faults, checkpoint_tick, stats.restored_sessions
    );

    if !args.quick {
        if goodput_frac < TARGET_GOODPUT_FRAC {
            eprintln!(
                "FAIL: goodput {:.1}% under the {:.0}% floor",
                goodput_frac * 100.0,
                TARGET_GOODPUT_FRAC * 100.0
            );
            std::process::exit(1);
        }
        if stats.p99_admitted_us > TARGET_P99_ADMITTED_US {
            eprintln!(
                "FAIL: admitted p99 {:.0} us over the {TARGET_P99_ADMITTED_US} us bound",
                stats.p99_admitted_us
            );
            std::process::exit(1);
        }
        println!(
            "  targets: goodput >= {:.0}% and admitted p99 <= {TARGET_P99_ADMITTED_US} us [PASS]",
            TARGET_GOODPUT_FRAC * 100.0
        );
    }

    let path = write_json("BENCH_overload", &stats);
    println!("wrote {}", path.display());

    // The gate metric is the *calm-phase* median round trip: it is what a
    // stuck ladder, a leaking backlog, or a slowed shed path would move,
    // and unlike the flood-tail p99 it does not swing with the seed's
    // solver-cost luck.
    if args.check {
        let baseline: Baseline = serde_json::from_str(BASELINE_JSON).expect("baseline parses");
        let limit = baseline.calm_p50_us * CHECK_HEADROOM;
        println!(
            "check: calm p50 {:.0} us vs limit {:.0} us (baseline {:.0} us x {CHECK_HEADROOM})",
            stats.calm_p50_us, limit, baseline.calm_p50_us
        );
        if stats.calm_p50_us > limit {
            eprintln!(
                "FAIL: post-overload recovery latency regression past the committed baseline"
            );
            std::process::exit(1);
        }
    }
}

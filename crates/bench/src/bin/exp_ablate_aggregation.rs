//! §III-B ablation — bank-aggregation schemes.
//!
//! The paper rejects pure Cascade because simulated migration rates are
//! "prohibitively high", and chooses Parallel over Address-Hash despite its
//! wider directory look-ups. This experiment measures all three on one
//! Table III set: migrations and bank probes per 1000 L2 accesses, plus
//! the resulting miss ratio.

use bap_bench::common::{write_json, Args};
use bap_bench::detailed::sim_options;
use bap_bench::mixes::{resolve, table3_sets};
use bap_cache::AggregationScheme;
use bap_core::Policy;
use bap_energy::{estimate, EnergyParams};
use bap_system::System;
use rayon::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct SchemeRow {
    scheme: String,
    migrations_per_1k: f64,
    probes_per_1k: f64,
    miss_ratio: f64,
    mean_cpi: f64,
    energy_uj: f64,
    tag_energy_uj: f64,
    migration_energy_uj: f64,
}

fn main() {
    let args = Args::parse();
    let mix = table3_sets(args.seed).remove(0);
    let schemes = [
        AggregationScheme::Cascade,
        AggregationScheme::AddressHash,
        AggregationScheme::Parallel,
    ];
    let rows: Vec<SchemeRow> = schemes
        .par_iter()
        .map(|&scheme| {
            let mut opts = sim_options(&args, Policy::BankAware);
            opts.scheme = scheme;
            let r = System::new(opts, resolve(&mix)).run();
            let accesses = r.total_l2_accesses().max(1) as f64;
            let energy = estimate(
                &EnergyParams::default(),
                &r.l2,
                &r.noc,
                &r.dram,
                r.total_l2_accesses(),
                r.total_l2_accesses(),
            );
            SchemeRow {
                scheme: format!("{scheme:?}"),
                migrations_per_1k: 1000.0 * r.l2.migrations as f64 / accesses,
                probes_per_1k: 1000.0 * r.l2.bank_probes as f64 / accesses,
                miss_ratio: r.l2_miss_ratio(),
                mean_cpi: r.mean_cpi(),
                energy_uj: energy.total_uj(),
                tag_energy_uj: energy.tag_pj / 1e6,
                migration_energy_uj: energy.migration_pj / 1e6,
            }
        })
        .collect();

    println!("Aggregation-scheme ablation (mix: {})", mix.join(", "));
    println!(
        "{:>12} {:>14} {:>11} {:>10} {:>7} {:>10} {:>9} {:>9}",
        "scheme",
        "migrations/1k",
        "probes/1k",
        "missratio",
        "CPI",
        "energy uJ",
        "tag uJ",
        "migr uJ"
    );
    for r in &rows {
        println!(
            "{:>12} {:>14.1} {:>11.1} {:>10.3} {:>7.3} {:>10.1} {:>9.1} {:>9.1}",
            r.scheme,
            r.migrations_per_1k,
            r.probes_per_1k,
            r.miss_ratio,
            r.mean_cpi,
            r.energy_uj,
            r.tag_energy_uj,
            r.migration_energy_uj
        );
    }
    println!("\nexpected shape: Cascade migrations >> AddressHash/Parallel;");
    println!("Parallel probes > AddressHash (wider look-ups).");
    let path = write_json("ablate_aggregation", &rows);
    println!("wrote {}", path.display());
}

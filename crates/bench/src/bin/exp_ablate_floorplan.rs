//! Floorplan ablation — chain abstraction vs the explicit Fig. 1 mesh.
//!
//! The workspace default models the die as a 1-D core chain; this run
//! repeats one Table III set on the explicit two-edge mesh (XY-routed
//! links, Manhattan hop counts, edge-wise Local-bank adjacency) to check
//! that no conclusion depends on the abstraction.

use bap_bench::common::{write_json, Args};
use bap_bench::detailed::sim_options;
use bap_bench::mixes::{resolve, table3_sets};
use bap_core::Policy;
use bap_system::System;
use bap_types::topology::Floorplan;
use rayon::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct FloorplanRow {
    floorplan: String,
    policy: String,
    misses: u64,
    mean_cpi: f64,
    avg_l2_latency: f64,
}

fn main() {
    let args = Args::parse();
    let mix = table3_sets(args.seed).remove(0);
    let cases: Vec<(Floorplan, Policy)> = [Floorplan::Chain, Floorplan::Mesh]
        .into_iter()
        .flat_map(|f| {
            [Policy::NoPartition, Policy::Equal, Policy::BankAware]
                .into_iter()
                .map(move |p| (f, p))
        })
        .collect();
    let rows: Vec<FloorplanRow> = cases
        .par_iter()
        .map(|&(floorplan, policy)| {
            let mut opts = sim_options(&args, policy);
            opts.config.floorplan = floorplan;
            let r = System::new(opts, resolve(&mix)).run();
            let lat: f64 = r.per_core.iter().map(|c| c.avg_l2_latency()).sum::<f64>()
                / r.per_core.len() as f64;
            FloorplanRow {
                floorplan: format!("{floorplan:?}"),
                policy: format!("{policy:?}"),
                misses: r.total_l2_misses(),
                mean_cpi: r.mean_cpi(),
                avg_l2_latency: lat,
            }
        })
        .collect();

    println!("Floorplan ablation (mix: {})", mix.join(", "));
    println!(
        "{:>7} {:>13} {:>10} {:>8} {:>11}",
        "plan", "policy", "misses", "CPI", "L2 latency"
    );
    for r in &rows {
        println!(
            "{:>7} {:>13} {:>10} {:>8.3} {:>11.1}",
            r.floorplan, r.policy, r.misses, r.mean_cpi, r.avg_l2_latency
        );
    }
    println!("\nexpected: the policy ordering (bank-aware < equal < none) holds on");
    println!("both floorplans; absolute latencies shift slightly with the grid.");
    let path = write_json("ablate_floorplan", &rows);
    println!("wrote {}", path.display());
}

//! Table II — hardware overhead of the proposed MSA profiler.

use bap_bench::common::write_json;
use bap_msa::overhead::kbits;
use bap_msa::OverheadModel;
use serde::Serialize;

#[derive(Serialize)]
struct Table2 {
    model: OverheadModel,
    partial_tags_kbits: f64,
    lru_stack_kbits: f64,
    hit_counters_kbits: f64,
    total_per_profiler_kbits: f64,
    fraction_of_16mb_llc: f64,
}

fn main() {
    let m = OverheadModel::paper();
    let out = Table2 {
        partial_tags_kbits: kbits(m.partial_tag_bits()),
        lru_stack_kbits: kbits(m.lru_stack_bits()),
        hit_counters_kbits: kbits(m.hit_counter_bits()),
        total_per_profiler_kbits: kbits(m.total_bits_per_profiler()),
        fraction_of_16mb_llc: m.fraction_of_llc(16 * 1024 * 1024),
        model: m,
    };
    println!("Table II — overhead of the proposed MSA profiler");
    println!(
        "  {:<28} {:>10}  (paper: 54 kbits)",
        "Partial tags",
        format!("{:.2} kbits", out.partial_tags_kbits)
    );
    println!(
        "  {:<28} {:>10}  (paper: 27 kbits)",
        "LRU stack distance impl.",
        format!("{:.2} kbits", out.lru_stack_kbits)
    );
    println!(
        "  {:<28} {:>10}  (paper: 2.25 kbits)",
        "Hit counters",
        format!("{:.2} kbits", out.hit_counters_kbits)
    );
    println!(
        "  {:<28} {:>10}",
        "Total per profiler",
        format!("{:.2} kbits", out.total_per_profiler_kbits)
    );
    println!(
        "  {:<28} {:>9.2}%  (paper: ~0.4%)",
        "All 8 profilers / 16 MB LLC",
        100.0 * out.fraction_of_16mb_llc
    );
    let path = write_json("table2_overhead", &out);
    println!("\nwrote {}", path.display());
}

//! Design ablation — the maximum-assignable-capacity restriction.
//!
//! The paper caps any core at 9/16 of the cache to shrink the profiler.
//! This sweep re-runs the Monte Carlo projection with caps from 4/16 to
//! 16/16, showing how much miss reduction the restriction costs.

use bap_bench::common::{write_json, Args};
use bap_bench::mc::build_library;
use bap_bench::mixes::monte_carlo_mixes;
use bap_core::{bank_aware_partition, BankAwareConfig};
use bap_msa::MissRatioCurve;
use bap_types::{CoreId, SystemConfig, Topology};
use rayon::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct CapRow {
    cap_banks: usize,
    mean_relative_to_equal: f64,
}

fn main() {
    let args = Args::parse();
    let cfg = SystemConfig::scaled(args.scale);
    let profile_instructions = if args.quick { 1_000_000 } else { 10_000_000 };
    let num_mixes = if args.quick { 50 } else { 300 };
    let lib = build_library(&cfg, profile_instructions, args.seed);
    let topo = Topology::baseline();
    let mixes = monte_carlo_mixes(args.seed, num_mixes, 8);

    let mut rows = Vec::new();
    for cap_banks in [4usize, 6, 8, 9, 12, 16] {
        let ba_cfg = BankAwareConfig {
            max_capacity_num: cap_banks,
            max_capacity_den: 16,
            min_ways: 1,
        };
        let rels: Vec<f64> = mixes
            .par_iter()
            .map(|mix| {
                let curves: Vec<MissRatioCurve> =
                    mix.iter().map(|n| lib.curves[n].clone()).collect();
                let plan = bank_aware_partition(&curves, &topo, 8, &ba_cfg);
                let ba: f64 = (0..8)
                    .map(|c| curves[c].misses_at(plan.ways_of(CoreId(c as u16))))
                    .sum();
                let eq: f64 = curves.iter().map(|c| c.misses_at(16)).sum();
                bap_types::stats::relative(ba, eq)
            })
            .collect();
        rows.push(CapRow {
            cap_banks,
            mean_relative_to_equal: rels.iter().sum::<f64>() / rels.len() as f64,
        });
    }

    println!("Max-assignable-capacity ablation ({num_mixes} mixes)");
    println!("{:>10} {:>22}", "cap", "mean rel. to equal");
    for r in &rows {
        println!("{:>7}/16 {:>22.3}", r.cap_banks, r.mean_relative_to_equal);
    }
    println!("\nexpected: little is lost above ~8/16; the paper's 9/16 is safe.");
    let path = write_json("ablate_maxcap", &rows);
    println!("wrote {}", path.display());
}

//! Fairness evaluation — the QoS story of the paper's introduction.
//!
//! Runs one Table III set under the three policies and reports weighted
//! speedup, harmonic-mean speedup and the fairness index against per-
//! workload "alone" baselines (each workload run with seven near-idle
//! `eon` co-runners, which leaves it effectively the whole cache).

use bap_bench::common::{write_json, Args};
use bap_bench::detailed::sim_options;
use bap_bench::mixes::{resolve, table3_sets};
use bap_core::Policy;
use bap_system::metrics::{fairness_index, harmonic_mean_speedup, weighted_speedup};
use bap_system::System;
use bap_workloads::spec_by_name;
use rayon::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct FairnessRow {
    policy: String,
    weighted_speedup: f64,
    harmonic_mean: f64,
    fairness: f64,
}

fn ipcs(r: &bap_system::RunResult) -> Vec<f64> {
    r.per_core
        .iter()
        .map(|c| if c.cpi() > 0.0 { 1.0 / c.cpi() } else { 0.0 })
        .collect()
}

fn main() {
    let args = Args::parse();
    let mix = table3_sets(args.seed).remove(0);
    println!("Fairness metrics (mix: {})", mix.join(", "));

    // Alone baselines: workload i on core 0, near-idle co-runners.
    let alone_ipcs: Vec<f64> = mix
        .par_iter()
        .map(|name| {
            let mut specs = vec![spec_by_name(name).expect("catalog")];
            specs.extend((0..7).map(|_| spec_by_name("eon").expect("catalog")));
            let opts = sim_options(&args, Policy::NoPartition);
            let r = System::new(opts, specs).run();
            ipcs(&r)[0]
        })
        .collect();

    let rows: Vec<FairnessRow> = [Policy::NoPartition, Policy::Equal, Policy::BankAware]
        .par_iter()
        .map(|&policy| {
            let opts = sim_options(&args, policy);
            let r = System::new(opts, resolve(&mix)).run();
            let shared = ipcs(&r);
            FairnessRow {
                policy: format!("{policy:?}"),
                weighted_speedup: weighted_speedup(&shared, &alone_ipcs),
                harmonic_mean: harmonic_mean_speedup(&shared, &alone_ipcs),
                fairness: fairness_index(&shared, &alone_ipcs),
            }
        })
        .collect();

    println!(
        "{:>13} {:>17} {:>14} {:>10}",
        "policy", "weighted speedup", "harmonic mean", "fairness"
    );
    for r in &rows {
        println!(
            "{:>13} {:>17.3} {:>14.3} {:>10.3}",
            r.policy, r.weighted_speedup, r.harmonic_mean, r.fairness
        );
    }
    println!("\nexpected: bank-aware maximises weighted speedup (throughput).");
    println!("Note that its miss-minimising objective can *sacrifice* the");
    println!("fairness index: tiny workloads get tiny partitions. This is the");
    println!("classic utilitarian-vs-communist trade-off (Hsu et al., cited in");
    println!("the paper's related work) and is inherent to utility-based schemes.");
    let path = write_json("fairness", &rows);
    println!("wrote {}", path.display());
}

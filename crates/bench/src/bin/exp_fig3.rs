//! Fig. 3 — cumulative miss-ratio curves of the three exemplar workloads.
//!
//! The paper plots `sixtrack` (sharp knee ≈6 ways), `bzip2` (gradual decline
//! to ≈45 ways) and `applu` (knee ≈10 ways, flat residual after). Each
//! analogue runs stand-alone; its MSA profile is projected over dedicated
//! way counts.

use bap_bench::common::{write_json, Args};
use bap_msa::ProfilerConfig;
use bap_system::profile_workload;
use bap_types::SystemConfig;
use bap_workloads::spec_by_name;
use serde::Serialize;

#[derive(Serialize)]
struct Curve {
    workload: String,
    ways: Vec<usize>,
    cumulative_miss_ratio: Vec<f64>,
}

fn main() {
    let args = Args::parse();
    let cfg = SystemConfig::scaled(args.scale);
    let pcfg = ProfilerConfig::reference(cfg.l2_bank_sets(), 72);
    let budget = if args.quick { 1_000_000 } else { 20_000_000 };

    let mut curves = Vec::new();
    for name in ["sixtrack", "bzip2", "applu"] {
        let spec = spec_by_name(name).expect("catalog");
        let curve = profile_workload(&spec, &cfg, pcfg, budget, args.seed);
        let ways: Vec<usize> = (1..=56).collect();
        let ratios: Vec<f64> = ways.iter().map(|&w| curve.miss_ratio_at(w)).collect();
        curves.push(Curve {
            workload: name.into(),
            ways,
            cumulative_miss_ratio: ratios,
        });
    }

    println!("Fig. 3 — cumulative miss ratio vs dedicated cache ways");
    print!("{:>5}", "ways");
    for c in &curves {
        print!("{:>10}", c.workload);
    }
    println!();
    for (i, &w) in curves[0].ways.iter().enumerate() {
        if w % 4 != 0 && w != 1 {
            continue;
        }
        print!("{w:>5}");
        for c in &curves {
            print!("{:>10.3}", c.cumulative_miss_ratio[i]);
        }
        println!();
    }
    let path = write_json("fig3_curves", &curves);
    println!("\nwrote {}", path.display());
}

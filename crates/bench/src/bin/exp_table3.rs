//! Table III — the eight detailed-simulation sets and the cache-way
//! assignment the Bank-aware algorithm gives each core.

use bap_bench::common::{write_json, Args};
use bap_bench::mc::{build_library, evaluate_mix};
use bap_bench::mixes::table3_sets;
use bap_types::{SystemConfig, Topology};
use serde::Serialize;

#[derive(Serialize)]
struct Table3Row {
    set: usize,
    assignments: Vec<(String, usize)>,
}

fn main() {
    let args = Args::parse();
    let cfg = SystemConfig::scaled(args.scale);
    let profile_instructions = if args.quick { 1_000_000 } else { 20_000_000 };
    let lib = build_library(&cfg, profile_instructions, args.seed);
    let topo = Topology::baseline();

    let mut rows = Vec::new();
    println!("Table III — 8-core experiment sets (workload(#ways) per core)");
    for (i, mix) in table3_sets(args.seed).iter().enumerate() {
        let outcome = evaluate_mix(&lib, mix, &topo);
        let assignments: Vec<(String, usize)> = mix
            .iter()
            .cloned()
            .zip(outcome.bank_aware_ways.iter().copied())
            .collect();
        let line = assignments
            .iter()
            .map(|(n, w)| format!("{n}({w})"))
            .collect::<Vec<_>>()
            .join(", ");
        println!("  Set {}: {line}", i + 1);
        rows.push(Table3Row {
            set: i + 1,
            assignments,
        });
    }
    let path = write_json("table3_sets", &rows);
    println!("\nwrote {}", path.display());
}

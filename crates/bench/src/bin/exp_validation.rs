//! §IV-A's second form of validation: the Monte Carlo's MSA-*projected*
//! miss rates against *detailed simulation* of the same mixes.
//!
//! The paper validates its projection methodology by detailed-simulating a
//! manageable subset of the Monte Carlo mixes. This experiment does the
//! same with the eight Table III sets: for each, the library-curve
//! projection of the Bank-aware assignment's miss ratio vs the measured
//! ratio from the full simulator.

use bap_bench::common::{write_json, Args};
use bap_bench::detailed::run_all_cached;
use bap_bench::mc::{build_library, evaluate_mix};
use bap_types::{SystemConfig, Topology};
use serde::Serialize;

#[derive(Serialize)]
struct ValidationRow {
    set: usize,
    projected_relative_to_equal: f64,
    simulated_relative_to_equal: f64,
}

fn main() {
    let args = Args::parse();
    let cfg = SystemConfig::scaled(args.scale);
    let profile_instructions = if args.quick { 1_000_000 } else { 20_000_000 };
    eprintln!("profiling the analogue library...");
    let lib = build_library(&cfg, profile_instructions, args.seed);
    let topo = Topology::baseline();
    let detailed = run_all_cached(&args);

    let mut rows = Vec::new();
    for (i, mix) in detailed.sets.iter().enumerate() {
        let projection = evaluate_mix(&lib, mix, &topo);
        let runs = &detailed.runs[i];
        let sim_equal = runs[1].misses.max(1) as f64;
        let sim_ba = runs[2].misses as f64;
        rows.push(ValidationRow {
            set: i + 1,
            projected_relative_to_equal: projection.bank_aware_relative(),
            simulated_relative_to_equal: sim_ba / sim_equal,
        });
    }

    println!("Projection-vs-simulation validation (Bank-aware relative to Equal)");
    println!(
        "{:>6} {:>12} {:>12} {:>8}",
        "set", "projected", "simulated", "delta"
    );
    let mut deltas = Vec::new();
    for r in &rows {
        let d = r.simulated_relative_to_equal - r.projected_relative_to_equal;
        deltas.push(d.abs());
        println!(
            "{:>6} {:>12.3} {:>12.3} {:>+8.3}",
            format!("Set{}", r.set),
            r.projected_relative_to_equal,
            r.simulated_relative_to_equal,
            d
        );
    }
    let mean_abs = deltas.iter().sum::<f64>() / deltas.len() as f64;
    println!("\nmean |delta| = {mean_abs:.3}");
    println!("the paper reports its detailed results are 'inline with the reduction");
    println!("estimated in our Monte Carlo experiment' — this is that check.");
    let path = write_json("validation", &rows);
    println!("wrote {}", path.display());
}

//! Fault-tolerance experiment: graceful degradation under injected faults.
//!
//! Runs one Table III mix under Bank-aware partitioning, healthy and under
//! a battery of fault campaigns (bank losses, bank churn, dropped
//! repartitioning epochs, corrupted MSA curves, everything at once), and
//! reports the miss-ratio/CPI degradation relative to the healthy run plus
//! the degradation-ladder accounting: how the system absorbed each fault
//! class without crashing, and how quickly capacity recovered after a bank
//! loss.

use bap_bench::common::{row, write_json, Args};
use bap_bench::detailed::sim_options;
use bap_bench::mixes::{resolve, table3_sets};
use bap_core::Policy;
use bap_fault::FaultConfig;
use bap_system::{RunResult, System};
use rayon::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct FaultRow {
    scenario: String,
    miss_ratio: f64,
    mean_cpi: f64,
    /// Relative miss-ratio increase over the healthy run (percent).
    miss_degradation_pct: f64,
    /// Relative mean-CPI increase over the healthy run (percent).
    cpi_degradation_pct: f64,
    banks_failed: u64,
    banks_restored: u64,
    epochs_dropped: u64,
    curves_corrupted: u64,
    curves_repaired: u64,
    solver_failures: u64,
    plans_rejected: u64,
    plan_repairs: u64,
    plan_reuses: u64,
    equal_fallbacks: u64,
    /// Epoch boundaries after the first bank loss during which the
    /// installed plan used less capacity than the surviving banks offer
    /// (None when no bank was ever lost). 0 = replanned within the same
    /// boundary that killed the bank.
    recovery_epochs: Option<u64>,
}

fn scenarios(seed: u64) -> Vec<(&'static str, FaultConfig)> {
    let base = FaultConfig::with_seed(seed);
    let mut center_loss = base.clone();
    center_loss.forced_offline = vec![(2, 9)];
    let mut local_loss = base.clone();
    local_loss.forced_offline = vec![(2, 0)];
    let mut churn = base.clone();
    churn.bank_offline_prob = 0.05;
    churn.bank_repair_prob = 0.3;
    churn.max_offline_banks = 2;
    let mut drops = base.clone();
    drops.epoch_drop_prob = 0.3;
    let mut garbage = base.clone();
    garbage.curve_corruption_prob = 0.5;
    let combined = FaultConfig {
        seed,
        bank_offline_prob: 0.05,
        bank_repair_prob: 0.3,
        max_offline_banks: 2,
        epoch_drop_prob: 0.3,
        curve_corruption_prob: 0.5,
        forced_offline: vec![(2, 9)],
    };
    vec![
        ("center_bank_offline", center_loss),
        ("local_bank_offline", local_loss),
        ("bank_churn", churn),
        ("epoch_drops", drops),
        ("curve_corruption", garbage),
        ("combined", combined),
    ]
}

/// Epochs (after the first capacity drop) during which the plan assigned
/// less than the best subsequent assignment ever reached — i.e. how long
/// the system ran under-provisioned before the ladder converged.
fn recovery_epochs(r: &RunResult) -> Option<u64> {
    let sums: Vec<usize> = r
        .epoch_history
        .iter()
        .map(|ways| ways.iter().sum())
        .collect();
    let first_drop = sums.windows(2).position(|w| w[1] < w[0])? + 1;
    let recovered_at = *sums[first_drop..].iter().max()?;
    Some(
        sums[first_drop..]
            .iter()
            .take_while(|&&s| s < recovered_at)
            .count() as u64,
    )
}

fn main() {
    let args = Args::parse();
    let mix = table3_sets(args.seed).remove(0);

    let healthy = System::new(sim_options(&args, Policy::BankAware), resolve(&mix)).run();
    assert!(healthy.fault.is_zero(), "healthy run injected nothing");
    let (h_miss, h_cpi) = (healthy.l2_miss_ratio(), healthy.mean_cpi());

    let rows: Vec<FaultRow> = scenarios(args.seed)
        .par_iter()
        .map(|(name, cfg)| {
            let mut opts = sim_options(&args, Policy::BankAware);
            opts.fault = Some(cfg.clone());
            let r = System::new(opts, resolve(&mix)).run();
            let f = r.fault;
            FaultRow {
                scenario: name.to_string(),
                miss_ratio: r.l2_miss_ratio(),
                mean_cpi: r.mean_cpi(),
                miss_degradation_pct: (r.l2_miss_ratio() / h_miss - 1.0) * 100.0,
                cpi_degradation_pct: (r.mean_cpi() / h_cpi - 1.0) * 100.0,
                banks_failed: f.banks_failed,
                banks_restored: f.banks_restored,
                epochs_dropped: f.epochs_dropped,
                curves_corrupted: f.curves_corrupted,
                curves_repaired: f.curves_repaired,
                solver_failures: f.solver_failures,
                plans_rejected: f.plans_rejected,
                plan_repairs: f.plan_repairs,
                plan_reuses: f.plan_reuses,
                equal_fallbacks: f.equal_fallbacks,
                recovery_epochs: recovery_epochs(&r),
            }
        })
        .collect();

    println!("Fault tolerance (mix: {})", mix.join(", "));
    println!(
        "healthy: miss ratio {h_miss:.3}, mean CPI {h_cpi:.3}, {} epochs",
        healthy.epochs
    );
    let widths = [20, 10, 8, 9, 8, 7, 7, 7, 7, 9];
    println!(
        "{}",
        row(
            &[
                "scenario", "miss", "Δmiss%", "CPI", "ΔCPI%", "failed", "drops", "corr", "ladder",
                "recovery"
            ]
            .map(String::from),
            &widths
        )
    );
    for r in &rows {
        let ladder = r.plan_repairs + r.plan_reuses + r.equal_fallbacks;
        println!(
            "{}",
            row(
                &[
                    r.scenario.clone(),
                    format!("{:.3}", r.miss_ratio),
                    format!("{:+.1}", r.miss_degradation_pct),
                    format!("{:.3}", r.mean_cpi),
                    format!("{:+.1}", r.cpi_degradation_pct),
                    format!("{}", r.banks_failed),
                    format!("{}", r.epochs_dropped),
                    format!("{}", r.curves_corrupted),
                    format!("{ladder}"),
                    r.recovery_epochs
                        .map(|e| e.to_string())
                        .unwrap_or_else(|| "-".into()),
                ],
                &widths
            )
        );
    }
    let path = write_json("fault_tolerance", &rows);
    println!("wrote {}", path.display());
}

//! Table I — the baseline DNUCA-CMP parameters, including the derived
//! NUCA latency table of the floorplan model.

use bap_bench::common::write_json;
use bap_types::{BankId, CoreId, SystemConfig, Topology};
use serde::Serialize;

#[derive(Serialize)]
struct Table1 {
    config: SystemConfig,
    latency_core0: Vec<u64>,
}

fn main() {
    let cfg = SystemConfig::default();
    let topo = Topology::baseline();

    println!("Table I — baseline DNUCA-CMP parameters");
    println!(
        "  L1 D cache      : {} KB, {}-way, {} cycles, {} B blocks",
        cfg.l1.size_bytes / 1024,
        cfg.l1.ways,
        cfg.l1_latency,
        cfg.l1.block_bytes
    );
    println!(
        "  L2 cache        : {} MB ({} x {} MB banks), {}-way, {}-{} cycles, {} B blocks",
        cfg.l2.total_bytes() >> 20,
        cfg.l2.num_banks,
        cfg.l2.bank.size_bytes >> 20,
        cfg.l2.bank.ways,
        cfg.l2_min_latency,
        cfg.l2_max_latency,
        cfg.l2.bank.block_bytes
    );
    println!("  Memory latency  : {} cycles", cfg.mem_latency);
    println!(
        "  Memory bandwidth: {} B/cycle (64 GB/s @ 4 GHz)",
        cfg.mem_bytes_per_cycle
    );
    println!("  Outstanding req : {} / core", cfg.outstanding_per_core);
    println!(
        "  Pipeline        : {} stages / {}-wide",
        cfg.pipeline_stages, cfg.width
    );
    println!(
        "  ROB / scheduler : {} / {} entries",
        cfg.rob_entries, cfg.scheduler_entries
    );
    println!("  Epoch           : {} cycles", cfg.epoch_cycles);

    println!("\nDerived NUCA latencies from core 0 (cycles):");
    let lat: Vec<u64> = (0..16)
        .map(|b| topo.latency(CoreId(0), BankId(b)))
        .collect();
    println!("  local banks 0..7 : {:?}", &lat[..8]);
    println!("  center banks 8..15: {:?}", &lat[8..]);

    let path = write_json(
        "table1_config",
        &Table1 {
            config: cfg,
            latency_core0: lat,
        },
    );
    println!("\nwrote {}", path.display());
}

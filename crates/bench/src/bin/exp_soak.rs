//! Deterministic chaos soak: crash/restore under fault campaigns.
//!
//! FoundationDB-style robustness harness for the checkpoint/recovery
//! subsystem. Every round derives a workload mix, an optional PR 1 fault
//! campaign and a crash schedule from one seed, then drives a detailed run
//! that is repeatedly killed at seeded epoch boundaries, checkpointed,
//! sometimes has its checkpoints corrupted (torn writes, systemic storage
//! rot), and is brought back through the recovery ladder. Every epoch
//! boundary checks the pipeline invariants:
//!
//! * any installed plan is structurally valid and consistent with the live
//!   bank mask (dead banks hold no ways, no bank oversubscribed);
//! * assigned capacity never exceeds the machine's total ways;
//! * the MOESI directory and modelled private caches agree;
//! * the adaptation timeline never shrinks.
//!
//! Everything derives from `--seed`, so a violation prints the failing
//! round's seed and the exact one-command reproduction: that seed re-run
//! as round 0 replays the identical round.
//!
//! `--quick` bounds the soak to a CI-sized smoke (~100 epochs); the full
//! run drives ≥ 1000 epochs.

use bap_bench::common::{results_dir, write_json, Args};
use bap_bench::mixes::{random_mix, resolve};
use bap_core::Policy;
use bap_fault::FaultConfig;
use bap_recovery::RecoveryManager;
use bap_system::recovery::restore_with_recovery;
use bap_system::{EpochControl, RunOutcome, SimOptions, System};
use bap_trace::Tracer;
use bap_types::SystemConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// Crashes injected per round before the run is allowed to finish.
const MAX_CRASHES: u32 = 4;

/// Round-seed derivation: golden-ratio stride keeps neighbouring rounds
/// decorrelated, and round 0 of master seed S is S itself — so a failing
/// round's seed, re-run as `--seed <it>`, replays identically as round 0.
fn round_seed(master: u64, round: u64) -> u64 {
    master.wrapping_add(round.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

#[derive(Default, Serialize)]
struct SoakStats {
    rounds: u64,
    epochs_driven: u64,
    crashes: u64,
    checkpoints_taken: u64,
    checkpoints_corrupted: u64,
    restores_rung1: u64,
    restores_rung2: u64,
    fallbacks_rung3: u64,
    fallbacks_rung4: u64,
    faulted_rounds: u64,
}

/// Every-epoch invariants over the live system.
fn check_invariants(sys: &System) -> Result<(), String> {
    let mem = sys.memory();
    let cfg = &sys.options().config;
    let capacity = cfg.l2.num_banks * cfg.l2.bank.ways;
    if let Some(plan) = mem.l2.plan() {
        plan.validate()
            .map_err(|e| format!("installed plan structurally invalid: {e}"))?;
        plan.validate_against_mask(mem.l2.bank_mask())
            .map_err(|e| format!("installed plan inconsistent with bank mask: {e}"))?;
        if plan.total_ways_used() > capacity {
            return Err(format!(
                "plan assigns {} ways, machine has {capacity}",
                plan.total_ways_used()
            ));
        }
    }
    mem.coherence
        .check_invariants()
        .map_err(|e| format!("coherence invariant violated: {e}"))?;
    for (i, ways) in mem.epoch_history().iter().enumerate() {
        let used: usize = ways.iter().sum();
        if used > capacity {
            return Err(format!(
                "epoch {i} recorded {used} ways, machine has {capacity}"
            ));
        }
    }
    Ok(())
}

/// One soak round: everything (mix, campaign, crash points, corruption)
/// derived from `seed`. Returns Err(description) on an invariant
/// violation.
fn soak_round(seed: u64, stats: &mut SoakStats) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mix = random_mix(&mut rng, 8);
    let specs = resolve(&mix);

    let mut opts = SimOptions::new(SystemConfig::scaled(64), Policy::BankAware);
    opts.config.epoch_cycles = 15_000;
    opts.warmup_instructions = 60_000;
    opts.measure_instructions = 150_000;
    opts.seed = seed;
    // Half the rounds interleave a PR 1 fault campaign with the crashes.
    if rng.gen_bool(0.5) {
        stats.faulted_rounds += 1;
        opts.fault = Some(FaultConfig {
            seed: rng.gen_range(0..u64::MAX),
            bank_offline_prob: 0.05,
            bank_repair_prob: 0.3,
            max_offline_banks: 2,
            epoch_drop_prob: 0.2,
            curve_corruption_prob: 0.3,
            forced_offline: if rng.gen_bool(0.3) {
                vec![(2, 9)]
            } else {
                vec![]
            },
        });
    }

    let mut mgr = RecoveryManager::new(3);
    let mut sys = System::new(opts.clone(), specs.clone());
    let mut resume = None;
    let mut crashes = 0u32;
    let mut history_len = 0usize;

    loop {
        let crash_after: u64 = rng.gen_range(2..12);
        let allow_crash = crashes < MAX_CRASHES;
        let mut violation: Option<String> = None;
        let mut fired = 0u64;
        let mut epochs_driven = 0u64;
        let mut checkpoints = 0u64;
        let mut hook = |s: &System, at: &bap_system::ResumePoint| {
            epochs_driven += 1;
            fired += 1;
            if violation.is_none() {
                if let Err(v) = check_invariants(s) {
                    violation = Some(v);
                    return EpochControl::Halt;
                }
                // The timeline only ever grows.
                let len = s.memory().epoch_history().len();
                if len < history_len {
                    violation = Some(format!(
                        "adaptation timeline shrank: {history_len} -> {len}"
                    ));
                    return EpochControl::Halt;
                }
                history_len = len;
            }
            mgr.push(&s.checkpoint(at));
            checkpoints += 1;
            if allow_crash && fired == crash_after {
                EpochControl::Halt
            } else {
                EpochControl::Continue
            }
        };
        let outcome = match resume.take() {
            Some(at) => sys.resume_with_hook(at, &mut hook),
            None => sys.run_with_hook(&mut hook),
        };
        stats.epochs_driven += epochs_driven;
        stats.checkpoints_taken += checkpoints;
        if let Some(v) = violation {
            return Err(v);
        }
        match outcome {
            RunOutcome::Completed(r) => {
                if let Some(plan) = &r.final_plan {
                    plan.validate()
                        .map_err(|e| format!("final plan invalid: {e}"))?;
                }
                for c in &r.per_core {
                    if c.instructions < opts.measure_instructions {
                        return Err(format!(
                            "a core retired only {} of {} instructions",
                            c.instructions, opts.measure_instructions
                        ));
                    }
                }
                return Ok(());
            }
            RunOutcome::Halted(_) => {
                crashes += 1;
                stats.crashes += 1;
                // Chaos on the "storage": torn writes hit the newest
                // checkpoint now and then; rarely the whole history rots.
                if rng.gen_bool(0.25) && mgr.corrupt_newest(rng.gen_range(0..4096)) {
                    stats.checkpoints_corrupted += 1;
                }
                if rng.gen_bool(0.05) {
                    stats.checkpoints_corrupted += mgr.corrupt_all(rng.gen_range(0..4096)) as u64;
                }
                let rec = restore_with_recovery(&opts, &specs, &mgr, &Tracer::off());
                match rec.rung {
                    1 => stats.restores_rung1 += 1,
                    2 => stats.restores_rung2 += 1,
                    3 => stats.fallbacks_rung3 += 1,
                    _ => stats.fallbacks_rung4 += 1,
                }
                if rec.rung == 4 {
                    // The ladder degraded the policy; keep our options in
                    // step so later checkpoints restore consistently.
                    opts.policy = Policy::Equal;
                }
                if rec.resume.is_none() {
                    // Cold start: the retained history was unusable (or
                    // empty); start a fresh checkpoint lineage and a fresh
                    // timeline expectation.
                    mgr.clear();
                    history_len = 0;
                }
                sys = rec.system;
                resume = rec.resume;
            }
        }
    }
}

fn main() {
    let args = Args::parse();
    let target_epochs: u64 = if args.quick { 100 } else { 1000 };
    // A floor on rounds keeps the chaos diverse even when a few rounds
    // already cover the epoch budget: fault campaigns and checkpoint
    // corruption are per-round coin flips.
    let min_rounds: u64 = if args.quick { 6 } else { 24 };
    let max_rounds: u64 = if args.quick { 50 } else { 500 };

    let mut stats = SoakStats::default();
    let mut round = 0u64;
    while (stats.epochs_driven < target_epochs || round < min_rounds) && round < max_rounds {
        let seed = round_seed(args.seed, round);
        if let Err(violation) = soak_round(seed, &mut stats) {
            let path = results_dir().join("soak_failing_seed.txt");
            std::fs::write(
                &path,
                format!(
                    "seed={seed}\nround={round}\nmaster_seed={}\nviolation={violation}\n",
                    args.seed
                ),
            )
            .expect("write failing seed");
            eprintln!("SOAK FAILURE at round {round} (seed {seed}): {violation}");
            eprintln!("reproduce with: cargo run --release --bin exp_soak -- --seed {seed}");
            eprintln!("failing seed written to {}", path.display());
            std::process::exit(1);
        }
        stats.rounds += 1;
        round += 1;
        if round.is_multiple_of(10) {
            println!(
                "  …{} rounds, {} epochs, {} crashes, {} restores",
                stats.rounds,
                stats.epochs_driven,
                stats.crashes,
                stats.restores_rung1 + stats.restores_rung2
            );
        }
    }

    println!(
        "soak passed: {} rounds, {} epochs ({} faulted rounds), {} crashes",
        stats.rounds, stats.epochs_driven, stats.faulted_rounds, stats.crashes
    );
    println!(
        "  recovery ladder: rung1 {} / rung2 {} / rung3 {} / rung4 {} ({} of {} checkpoints corrupted)",
        stats.restores_rung1,
        stats.restores_rung2,
        stats.fallbacks_rung3,
        stats.fallbacks_rung4,
        stats.checkpoints_corrupted,
        stats.checkpoints_taken
    );
    assert!(
        stats.epochs_driven >= target_epochs,
        "soak budget not met: {} < {target_epochs} epochs",
        stats.epochs_driven
    );
    let path = write_json("soak", &stats);
    println!("wrote {}", path.display());
}

//! `bap serve` under load: throughput, tail latency, and survival of a
//! mid-load checkpoint/restart — the decision service's soak tier.
//!
//! A threaded `Server` is driven by one client thread per session (32-core
//! ring each), every client streaming rounds of `Snapshot` decisions with
//! seeded, slowly drifting curves (drift every few rounds keeps the
//! warm-start path honest: most epochs reuse, some re-solve). The harness
//! checks, in one run:
//!
//! * **zero dropped or garbled responses** — every call is answered, every
//!   response echoes its request id, every installed plan has one way
//!   count per core summing to the machine's 512 ways;
//! * **checkpoint-under-load loses no acknowledged state** — all clients
//!   pause on a barrier mid-load, a `Checkpoint` request persists the
//!   service to disk, and after the run a fresh service restored from that
//!   file must report exactly the last plan each client had *acknowledged*
//!   before the pause;
//! * **the threaded run is deterministic** — a serial replay of the same
//!   per-session request sequences must reproduce every decision
//!   fingerprint the racing clients saw, in order.
//!
//! Any violation writes `results/serve_failing_seed.txt` with the master
//! seed and exits non-zero; the seed re-runs the identical load. The full
//! run additionally enforces the headline targets (≥ 1000 decisions/sec,
//! p99 ≤ 5 ms); `--quick` is the CI smoke, and `--check` gates quick-mode
//! p99 against the committed baseline with 2× headroom. Results land in
//! `results/BENCH_serve.json`.

use bap_bench::common::{results_dir, write_json, Args};
use bap_core::{DecisionService, ServeConfig, Server};
use bap_trace::wire::{RequestKind, ResponseKind, WireCurve, WireRequest};
use serde::{Deserialize, Serialize};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Instant;

/// Committed reference point for the `--check` regression gate.
const BASELINE_JSON: &str = include_str!("../baselines/serve_baseline.json");

/// The gate trips when quick-mode p99 exceeds baseline × this factor.
const CHECK_HEADROOM: f64 = 2.0;

/// Cores per session: the ISSUE's 32-core target topology (64 banks × 8
/// ways = 512 total ways).
const CORES: usize = 32;
const TOTAL_WAYS: usize = 512;

/// Full-run headline targets.
const TARGET_DECISIONS_PER_SEC: f64 = 1000.0;
const TARGET_P99_US: f64 = 5000.0;

/// Per-client decisions excluded from the latency percentiles: cold-start
/// rounds that pay one-time pool spawns and first-touch allocations.
const WARMUP_DECISIONS: usize = 2;

#[derive(Serialize)]
struct ServeStats {
    sessions: usize,
    cores_per_session: usize,
    rounds_per_client: usize,
    decisions: usize,
    evaluations: usize,
    decisions_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
    max_us: f64,
    dropped: usize,
    garbled: usize,
    checkpoint_bytes: usize,
    checkpoint_tick: u64,
    restored_sessions: usize,
    warm_hits: u64,
    plans_installed: u64,
}

#[derive(Deserialize)]
struct Baseline {
    p99_us: f64,
}

/// Per-core knee curves for one session round. Drift: the curve set only
/// changes every `DRIFT_ROUNDS` rounds, so steady-state epochs exercise
/// the warm-start path while drift boundaries force real re-solves.
const DRIFT_ROUNDS: usize = 6;

fn round_curves(session: u64, round: usize, master_seed: u64) -> Vec<WireCurve> {
    let drift = (round / DRIFT_ROUNDS) as u64;
    let seed = master_seed ^ session.wrapping_mul(0x9E37_79B9) ^ drift.wrapping_mul(0x1_0000_01B3);
    (0..CORES)
        .map(|core| {
            let h = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((core as u64).wrapping_mul(0x0100_0000_01B3));
            let base = 30_000.0 + (h % 90_000) as f64;
            let knee = 2 + ((h >> 17) % 40) as usize;
            let floor = ((h >> 33) % 3_000) as f64;
            let misses = (0..=72)
                .map(|w| {
                    if w >= knee {
                        floor
                    } else {
                        base - (base - floor) * w as f64 / knee as f64
                    }
                })
                .collect();
            WireCurve {
                accesses: base.max(1.0) * 4.0,
                misses,
            }
        })
        .collect()
}

/// The id-ordered request sequence one client sends for its session.
/// Ids are globally unique: client `c` owns the band `(c+1) · 10⁶`.
fn client_requests(client: usize, rounds: usize, master_seed: u64) -> Vec<WireRequest> {
    let session = client as u64 + 1;
    let mut id = (client as u64 + 1) * 1_000_000;
    let mut req = |kind: RequestKind| {
        id += 1;
        WireRequest::new(id, kind)
    };
    let mut out = vec![req(RequestKind::Open {
        session,
        cores: CORES,
    })];
    for round in 0..rounds {
        out.push(req(RequestKind::Snapshot {
            session,
            curves: round_curves(session, round, master_seed),
        }));
        if round % 16 == 7 {
            out.push(req(RequestKind::Evaluate {
                session,
                curves: round_curves(session, round + 1, master_seed ^ 0xE7A1),
            }));
        }
    }
    out
}

/// What one client thread observed.
#[derive(Default)]
struct ClientOut {
    latencies_us: Vec<f64>,
    /// Decision fingerprints in arrival order (the acknowledged history).
    decisions: Vec<u64>,
    evaluations: usize,
    /// Last acknowledged decision fingerprint before the checkpoint pause.
    acked_at_checkpoint: Option<u64>,
    dropped: usize,
    garbled: Vec<String>,
}

fn run_client(
    client: usize,
    reqs: Vec<WireRequest>,
    server: &Server,
    pause: &Barrier,
    resume: &Barrier,
    pause_after: usize,
) -> ClientOut {
    let conn = server.client();
    let mut out = ClientOut::default();
    let mut decided = 0usize;
    let mut paused = false;
    for req in reqs {
        if decided >= pause_after && !paused {
            out.acked_at_checkpoint = out.decisions.last().copied();
            pause.wait();
            resume.wait();
            paused = true;
        }
        let id = req.id;
        let t = Instant::now();
        let Ok(resp) = conn.call(req) else {
            out.dropped += 1;
            continue;
        };
        let us = t.elapsed().as_secs_f64() * 1e6;
        if resp.id != id {
            out.garbled
                .push(format!("client {client}: sent id {id}, got id {}", resp.id));
        }
        match resp.kind {
            ResponseKind::Opened { cores, .. } => {
                if cores != CORES {
                    out.garbled
                        .push(format!("client {client}: opened {cores} cores"));
                }
            }
            ResponseKind::Decision {
                installed,
                ways,
                fingerprint,
                ..
            } => {
                // The first decisions of a fresh server pay one-time costs
                // (worker-pool spawn, first-touch solver allocations);
                // percentiles report steady state, as latency benches do.
                if decided >= WARMUP_DECISIONS {
                    out.latencies_us.push(us);
                }
                decided += 1;
                out.decisions.push(fingerprint);
                if installed && (ways.len() != CORES || ways.iter().sum::<usize>() != TOTAL_WAYS) {
                    out.garbled.push(format!(
                        "client {client}: plan shape {} cores / {} ways",
                        ways.len(),
                        ways.iter().sum::<usize>()
                    ));
                }
            }
            ResponseKind::Evaluated { .. } => out.evaluations += 1,
            other => out
                .garbled
                .push(format!("client {client}: unexpected {}", other.label())),
        }
    }
    // A client whose workload ended before `pause_after` decisions must
    // still meet the barrier, or everyone else deadlocks.
    if !paused {
        out.acked_at_checkpoint = out.decisions.last().copied();
        pause.wait();
        resume.wait();
    }
    out
}

fn fail(master_seed: u64, violation: &str) -> ! {
    let path = results_dir().join("serve_failing_seed.txt");
    std::fs::write(
        &path,
        format!("seed={master_seed}\nviolation={violation}\n"),
    )
    .expect("write failing seed");
    eprintln!("SERVE FAILURE: {violation}");
    eprintln!("reproduce with: cargo run --release --bin exp_serve -- --seed {master_seed}");
    eprintln!("failing seed written to {}", path.display());
    std::process::exit(1);
}

fn main() {
    let args = Args::parse();
    let sessions: usize = if args.quick { 4 } else { 8 };
    let rounds: usize = if args.quick { 60 } else { 400 };
    let pause_after = rounds / 2;
    let checkpoint_path = results_dir().join("serve_checkpoint.json");

    let cfg = ServeConfig {
        checkpoint_path: Some(checkpoint_path.clone()),
        ..ServeConfig::default()
    };
    let server = Server::spawn(DecisionService::new(cfg));

    // Client threads race the batching loop; two barriers bracket the
    // mid-load checkpoint so it lands at a known acknowledged frontier.
    let pause = Arc::new(Barrier::new(sessions + 1));
    let resume = Arc::new(Barrier::new(sessions + 1));
    let t0 = Instant::now();
    let (clients, checkpoint_bytes, checkpoint_tick) = thread::scope(|scope| {
        let handles: Vec<_> = (0..sessions)
            .map(|c| {
                let reqs = client_requests(c, rounds, args.seed);
                let (server, pause, resume) = (&server, Arc::clone(&pause), Arc::clone(&resume));
                scope.spawn(move || run_client(c, reqs, server, &pause, &resume, pause_after))
            })
            .collect();

        // Main thread: wait for the acknowledged frontier, checkpoint,
        // release.
        pause.wait();
        let conn = server.client();
        let cp = conn
            .call(WireRequest::new(950_000_000, RequestKind::Checkpoint))
            .expect("checkpoint answered");
        let (cp_bytes, cp_tick) = match cp.kind {
            ResponseKind::Checkpointed { bytes, tick, .. } => (bytes, tick),
            other => fail(
                args.seed,
                &format!("checkpoint request got {}", other.label()),
            ),
        };
        resume.wait();

        let outs: Vec<ClientOut> = handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect();
        (outs, cp_bytes, cp_tick)
    });
    let wall = t0.elapsed().as_secs_f64();
    let clients = &clients[..];

    // Final state: per-session plans, service stats, then drain.
    let conn = server.client();
    let mut final_fps = Vec::new();
    for s in 1..=sessions as u64 {
        let resp = conn
            .call(WireRequest::new(
                960_000_000 + s,
                RequestKind::Plan { session: s },
            ))
            .expect("plan answered");
        match resp.kind {
            ResponseKind::Plan { fingerprint, .. } => final_fps.push(fingerprint),
            other => fail(args.seed, &format!("plan request got {}", other.label())),
        }
    }
    let stats_resp = conn
        .call(WireRequest::new(970_000_000, RequestKind::Stats))
        .expect("stats answered");
    let (srv_decisions, srv_warm_hits) = match stats_resp.kind {
        ResponseKind::Stats {
            decisions,
            warm_hits,
            ..
        } => (decisions, warm_hits),
        other => fail(args.seed, &format!("stats request got {}", other.label())),
    };
    let bye = conn
        .call(WireRequest::new(u64::MAX, RequestKind::Shutdown))
        .expect("shutdown answered");
    if !matches!(bye.kind, ResponseKind::Bye { .. }) {
        fail(args.seed, &format!("shutdown got {}", bye.kind.label()));
    }
    server.join();

    // ---- Verdicts -------------------------------------------------------
    let dropped: usize = clients.iter().map(|c| c.dropped).sum();
    let garbled: Vec<&String> = clients.iter().flat_map(|c| &c.garbled).collect();
    if dropped > 0 {
        fail(args.seed, &format!("{dropped} calls dropped"));
    }
    if let Some(g) = garbled.first() {
        fail(
            args.seed,
            &format!("{} garbled responses, first: {g}", garbled.len()),
        );
    }

    // Checkpoint must restore exactly the acknowledged frontier.
    let mut restored = DecisionService::new(ServeConfig::default());
    let tick = match restored.restore_from_path(&checkpoint_path) {
        Ok(tick) => tick,
        Err(e) => fail(args.seed, &format!("checkpoint file did not restore: {e}")),
    };
    if tick != checkpoint_tick {
        fail(
            args.seed,
            &format!("restored tick {tick} != checkpointed tick {checkpoint_tick}"),
        );
    }
    if restored.num_sessions() != sessions {
        fail(
            args.seed,
            &format!(
                "restored {} of {sessions} sessions",
                restored.num_sessions()
            ),
        );
    }
    for (c, client) in clients.iter().enumerate() {
        let session = c as u64 + 1;
        let acked = client.acked_at_checkpoint;
        let plan = restored.process_batch(&[WireRequest::new(1, RequestKind::Plan { session })]);
        let got = match &plan[0].kind {
            ResponseKind::Plan { fingerprint, .. } => Some(*fingerprint),
            _ => None,
        };
        if acked.is_some() && got != acked {
            fail(
                args.seed,
                &format!(
                    "session {session}: restored plan {got:?} != acknowledged {acked:?} \
                     at the checkpoint frontier"
                ),
            );
        }
    }

    // Serial replay must reproduce every acknowledged decision.
    let mut replay = DecisionService::new(ServeConfig::default());
    for (c, client) in clients.iter().enumerate() {
        let mut fps = Vec::new();
        for req in client_requests(c, rounds, args.seed) {
            for resp in replay.process_batch(std::slice::from_ref(&req)) {
                if let ResponseKind::Decision { fingerprint, .. } = resp.kind {
                    fps.push(fingerprint);
                }
            }
        }
        if fps != client.decisions {
            fail(
                args.seed,
                &format!(
                    "session {}: serial replay diverged from the threaded run \
                     ({} vs {} decisions)",
                    c + 1,
                    fps.len(),
                    client.decisions.len()
                ),
            );
        }
        if fps.last().copied() != Some(final_fps[c]) {
            fail(
                args.seed,
                &format!("session {}: final plan query disagrees with history", c + 1),
            );
        }
    }

    // ---- Report ---------------------------------------------------------
    let mut lat: Vec<f64> = clients
        .iter()
        .flat_map(|c| c.latencies_us.clone())
        .collect();
    lat.sort_by(|a, b| a.total_cmp(b));
    let pct = |p: f64| lat[((lat.len() as f64 * p) as usize).min(lat.len() - 1)];
    let decisions: usize = clients.iter().map(|c| c.decisions.len()).sum();
    let evaluations: usize = clients.iter().map(|c| c.evaluations).sum();
    let stats = ServeStats {
        sessions,
        cores_per_session: CORES,
        rounds_per_client: rounds,
        decisions,
        evaluations,
        decisions_per_sec: decisions as f64 / wall.max(1e-9),
        p50_us: pct(0.50),
        p99_us: pct(0.99),
        max_us: *lat.last().expect("at least one decision"),
        dropped,
        garbled: garbled.len(),
        checkpoint_bytes,
        checkpoint_tick,
        restored_sessions: sessions,
        warm_hits: srv_warm_hits,
        plans_installed: srv_decisions,
    };

    println!(
        "serve load: {} sessions x {} cores, {} rounds/client, {} decisions in {:.2}s",
        stats.sessions, CORES, rounds, decisions, wall
    );
    println!(
        "  {:.0} decisions/sec, p50 {:.0} us, p99 {:.0} us, max {:.0} us, {} warm hits",
        stats.decisions_per_sec, stats.p50_us, stats.p99_us, stats.max_us, stats.warm_hits
    );
    println!(
        "  checkpoint at tick {}: {} bytes, restored {} sessions, acknowledged frontier intact",
        checkpoint_tick, checkpoint_bytes, sessions
    );
    println!(
        "  serial replay: {} decision fingerprints reproduced exactly",
        decisions
    );

    if !args.quick {
        if stats.decisions_per_sec < TARGET_DECISIONS_PER_SEC {
            eprintln!(
                "FAIL: {:.0} decisions/sec under the {TARGET_DECISIONS_PER_SEC} target",
                stats.decisions_per_sec
            );
            std::process::exit(1);
        }
        if stats.p99_us > TARGET_P99_US {
            eprintln!(
                "FAIL: p99 {:.0} us over the {TARGET_P99_US} us target",
                stats.p99_us
            );
            std::process::exit(1);
        }
        println!(
            "  targets: >= {TARGET_DECISIONS_PER_SEC} dec/s and p99 <= {TARGET_P99_US} us [PASS]"
        );
    }

    let path = write_json("BENCH_serve", &stats);
    println!("wrote {}", path.display());

    if args.check {
        let baseline: Baseline = serde_json::from_str(BASELINE_JSON).expect("baseline parses");
        let limit = baseline.p99_us * CHECK_HEADROOM;
        println!(
            "check: p99 {:.0} us vs limit {:.0} us (baseline {:.0} us x {CHECK_HEADROOM})",
            stats.p99_us, limit, baseline.p99_us
        );
        if stats.p99_us > limit {
            eprintln!("FAIL: serve p99 regression past the committed baseline");
            std::process::exit(1);
        }
    }
}

//! QoS chaos soak: SLO guarantees under bank faults and crash recovery.
//!
//! Drives the full QoS tier — per-bank bandwidth regulators, SLO admission
//! control, guard-checked WCL revalidation — through the PR 4/5 chaos
//! machinery: every round derives a workload mix, a bank-fault campaign
//! and a crash schedule from one seed, declares SLOs on two cores, and
//! asserts at every epoch boundary that no admitted core's measured worst
//! demand latency ever exceeded its analytic WCL bound. Best-effort cores
//! are expected to pay for this: the run fails unless the capacity-loss
//! ledger shows at least one demoted core across the soak.
//!
//! Everything derives from `--seed`; a breach prints the failing round's
//! seed and the one-command reproduction. `--quick` bounds the soak to a
//! CI-sized smoke (~100 epochs); the full run drives ≥ 1000 epochs.
//!
//! Writes `results/qos.json` (soak statistics) and `results/BENCH_qos.json`
//! (the bound-vs-measured latency trajectory of the tightest round).

use bap_bench::common::{results_dir, write_json, Args};
use bap_bench::mixes::{random_mix, resolve};
use bap_core::Policy;
use bap_fault::FaultConfig;
use bap_recovery::RecoveryManager;
use bap_system::recovery::restore_with_recovery;
use bap_system::{EpochControl, RunOutcome, SimOptions, System};
use bap_trace::Tracer;
use bap_types::{QosConfig, RegulatorConfig, SloSpec, SystemConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// Crashes injected per round before the run is allowed to finish.
const MAX_CRASHES: u32 = 3;

/// Round-seed derivation (same stride as `exp_soak`): round 0 of master
/// seed S is S itself, so a failing seed replays identically as round 0.
fn round_seed(master: u64, round: u64) -> u64 {
    master.wrapping_add(round.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// The SLO declarations every round runs under: two latency-critical cores
/// with capacity floors, six best-effort cores, both regulators armed.
fn qos_config() -> QosConfig {
    QosConfig::default()
        .with_slo(
            0,
            SloSpec {
                max_wcl_cycles: 60_000,
                min_ways: 20,
                bandwidth_floor: 16,
            },
        )
        .with_slo(
            1,
            SloSpec {
                max_wcl_cycles: 60_000,
                min_ways: 12,
                bandwidth_floor: 16,
            },
        )
        .with_noc_regulator(RegulatorConfig::per_period(192, 2_000))
        .with_dram_regulator(RegulatorConfig::per_period(96, 2_000))
}

#[derive(Default, Serialize)]
struct QosStats {
    rounds: u64,
    epochs_driven: u64,
    crashes: u64,
    checkpoints_taken: u64,
    /// (epoch, core) pairs that carried an admitted bound and were checked.
    slo_pairs_checked: u64,
    /// Largest measured-worst / bound ratio seen over every checked pair.
    tightest_margin: f64,
    slo_enforcements: u64,
    slo_rejections: u64,
    guard_trips: u64,
    /// Total ways stripped from demoted cores (the ledger sum).
    best_effort_ways_lost: u64,
    /// Cores ever demoted, across all rounds.
    degraded_cores: Vec<usize>,
}

/// One epoch of the persisted latency-bound trajectory (core 0).
#[derive(Serialize)]
struct TrajectoryPoint {
    epoch: usize,
    bound: u64,
    worst: u64,
}

/// Scan history rows `from..` for admitted-SLO breaches; update stats.
fn check_compliance(sys: &System, from: usize, stats: &mut QosStats) -> Result<usize, String> {
    let worst = sys.memory().worst_latency_history();
    let bounds = sys.memory().slo_bound_history();
    for (i, (w_row, b_row)) in worst.iter().zip(bounds).enumerate().skip(from) {
        for (c, b) in b_row.iter().enumerate() {
            let Some(bound) = b else { continue };
            stats.slo_pairs_checked += 1;
            if w_row[c] > *bound {
                return Err(format!(
                    "epoch {i}: core {c} measured worst {} exceeds admitted WCL bound {bound}",
                    w_row[c]
                ));
            }
            if *bound > 0 {
                let margin = w_row[c] as f64 / *bound as f64;
                if margin > stats.tightest_margin {
                    stats.tightest_margin = margin;
                }
            }
        }
    }
    Ok(worst.len())
}

/// One soak round. Returns the core-0 trajectory on success.
fn qos_round(seed: u64, stats: &mut QosStats) -> Result<Vec<TrajectoryPoint>, String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mix = random_mix(&mut rng, 8);
    let specs = resolve(&mix);

    let mut opts = SimOptions::new(SystemConfig::scaled(64), Policy::BankAware);
    opts.config.epoch_cycles = 15_000;
    opts.warmup_instructions = 60_000;
    opts.measure_instructions = 150_000;
    opts.lookup_isolation = true;
    opts.seed = seed;
    opts.qos = qos_config();
    opts.fault = Some(FaultConfig {
        seed: rng.gen_range(0..u64::MAX),
        bank_offline_prob: 0.05,
        bank_repair_prob: 0.3,
        max_offline_banks: 2,
        epoch_drop_prob: 0.2,
        curve_corruption_prob: 0.3,
        forced_offline: if rng.gen_bool(0.3) {
            vec![(2, 9)]
        } else {
            vec![]
        },
    });

    let mut mgr = RecoveryManager::new(3);
    let mut sys = System::new(opts.clone(), specs.clone());
    let mut resume = None;
    let mut crashes = 0u32;

    loop {
        let crash_after: u64 = rng.gen_range(2..12);
        let allow_crash = crashes < MAX_CRASHES;
        let mut violation: Option<String> = None;
        let mut fired = 0u64;
        let mut epochs_driven = 0u64;
        let mut checkpoints = 0u64;
        // Rows already checked this segment: a rung-1/2 restore rolls the
        // histories back to the checkpoint and replays them, so every
        // re-driven row is re-checked.
        let mut checked = sys.memory().worst_latency_history().len();
        let mut hook = |s: &System, at: &bap_system::ResumePoint| {
            epochs_driven += 1;
            fired += 1;
            if violation.is_none() {
                match check_compliance(
                    s,
                    checked.min(s.memory().worst_latency_history().len()),
                    stats,
                ) {
                    Ok(len) => checked = len,
                    Err(v) => {
                        violation = Some(v);
                        return EpochControl::Halt;
                    }
                }
            }
            mgr.push(&s.checkpoint(at));
            checkpoints += 1;
            if allow_crash && fired == crash_after {
                EpochControl::Halt
            } else {
                EpochControl::Continue
            }
        };
        let outcome = match resume.take() {
            Some(at) => sys.resume_with_hook(at, &mut hook),
            None => sys.run_with_hook(&mut hook),
        };
        stats.epochs_driven += epochs_driven;
        stats.checkpoints_taken += checkpoints;
        if let Some(v) = violation {
            return Err(v);
        }
        match outcome {
            RunOutcome::Completed(r) => {
                if r.slo_bound_history.is_empty() {
                    return Err("QoS run produced no bound history".to_string());
                }
                let admitted_epochs = r
                    .slo_bound_history
                    .iter()
                    .filter(|row| row[0].is_some())
                    .count();
                if admitted_epochs == 0 {
                    return Err("core 0 was never admitted".to_string());
                }
                stats.slo_enforcements += r.fault.slo_enforcements;
                stats.slo_rejections += r.fault.slo_rejections;
                stats.guard_trips += r.fault.guard_trips;
                stats.best_effort_ways_lost += r.core_degrades.ways_lost.iter().sum::<u64>();
                for c in r.core_degrades.degraded_cores() {
                    if !stats.degraded_cores.contains(&c) {
                        stats.degraded_cores.push(c);
                    }
                }
                let trajectory = r
                    .worst_latency_history
                    .iter()
                    .zip(&r.slo_bound_history)
                    .enumerate()
                    .filter_map(|(epoch, (w, b))| {
                        b[0].map(|bound| TrajectoryPoint {
                            epoch,
                            bound,
                            worst: w[0],
                        })
                    })
                    .collect();
                return Ok(trajectory);
            }
            RunOutcome::Halted(_) => {
                crashes += 1;
                stats.crashes += 1;
                if rng.gen_bool(0.2) && mgr.corrupt_newest(rng.gen_range(0..4096)) {
                    // Torn write on the newest checkpoint: the recovery
                    // ladder falls back to an older one.
                }
                let rec = restore_with_recovery(&opts, &specs, &mgr, &Tracer::off());
                if rec.rung == 4 {
                    opts.policy = Policy::Equal;
                }
                if rec.resume.is_none() {
                    mgr.clear();
                }
                sys = rec.system;
                resume = rec.resume;
            }
        }
    }
}

fn main() {
    let args = Args::parse();
    let target_epochs: u64 = if args.quick { 100 } else { 1000 };
    let min_rounds: u64 = if args.quick { 4 } else { 16 };
    let max_rounds: u64 = if args.quick { 50 } else { 500 };

    let mut stats = QosStats::default();
    let mut best_trajectory: Vec<TrajectoryPoint> = Vec::new();
    let mut round = 0u64;
    while (stats.epochs_driven < target_epochs || round < min_rounds) && round < max_rounds {
        let seed = round_seed(args.seed, round);
        match qos_round(seed, &mut stats) {
            Ok(trajectory) => {
                if trajectory.len() > best_trajectory.len() {
                    best_trajectory = trajectory;
                }
            }
            Err(breach) => {
                let path = results_dir().join("qos_failing_seed.txt");
                std::fs::write(
                    &path,
                    format!(
                        "seed={seed}\nround={round}\nmaster_seed={}\nbreach={breach}\n",
                        args.seed
                    ),
                )
                .expect("write failing seed");
                eprintln!("SLO BREACH at round {round} (seed {seed}): {breach}");
                eprintln!("reproduce with: cargo run --release --bin exp_qos -- --seed {seed}");
                eprintln!("failing seed written to {}", path.display());
                std::process::exit(1);
            }
        }
        stats.rounds += 1;
        round += 1;
        if round.is_multiple_of(10) {
            println!(
                "  …{} rounds, {} epochs, {} SLO pairs checked, {} enforcements",
                stats.rounds, stats.epochs_driven, stats.slo_pairs_checked, stats.slo_enforcements
            );
        }
    }

    println!(
        "qos soak passed: {} rounds, {} epochs, {} crashes, {} (epoch, core) SLO pairs checked",
        stats.rounds, stats.epochs_driven, stats.crashes, stats.slo_pairs_checked
    );
    println!(
        "  zero breaches; tightest measured/bound margin {:.3}; {} enforcements, {} rejections",
        stats.tightest_margin, stats.slo_enforcements, stats.slo_rejections
    );
    println!(
        "  best-effort cost: cores {:?} lost {} ways total to admitted SLOs",
        stats.degraded_cores, stats.best_effort_ways_lost
    );
    assert!(
        stats.epochs_driven >= target_epochs,
        "soak budget not met: {} < {target_epochs} epochs",
        stats.epochs_driven
    );
    assert!(
        stats.slo_pairs_checked > 0,
        "no admitted SLO was ever checked"
    );
    assert!(
        stats.best_effort_ways_lost > 0,
        "no best-effort core was ever demoted — the SLOs cost nothing, \
         which means enforcement never engaged"
    );
    let path = write_json("qos", &stats);
    println!("wrote {}", path.display());
    let bench = write_json("BENCH_qos", &best_trajectory);
    println!("wrote {}", bench.display());
}

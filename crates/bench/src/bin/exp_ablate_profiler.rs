//! §III-A ablation — profiler accuracy vs hardware cost.
//!
//! The paper claims 12-bit partial tags + 1-in-32 set sampling keep the
//! profile within ~5 % of a full-tag implementation. This experiment sweeps
//! tag width × sampling ratio, reporting the miss-ratio-curve error against
//! the full-tag, all-sets reference, alongside the Table II storage cost.

use bap_bench::common::{write_json, Args};
use bap_msa::overhead::kbits;
use bap_msa::{EngineKind, MissRatioCurve, OverheadModel, ProfilerConfig, StackProfiler};
use bap_types::SystemConfig;
use bap_workloads::{spec_by_name, AddressStream};
use serde::Serialize;

#[derive(Serialize)]
struct ProfilerRow {
    tag_bits: String,
    sample_ratio: usize,
    mean_curve_error: f64,
    max_curve_error: f64,
    storage_kbits: f64,
}

fn curve_of(cfg: ProfilerConfig, blocks: &[u64]) -> MissRatioCurve {
    let mut p = StackProfiler::new(cfg);
    for &b in blocks {
        p.observe(bap_types::BlockAddr(b));
    }
    MissRatioCurve::from_histogram(p.histogram(), p.scale())
}

fn main() {
    let args = Args::parse();
    let sys = SystemConfig::scaled(args.scale);
    let sets = sys.l2_bank_sets();
    let budget = if args.quick { 100_000 } else { 1_000_000 };

    // One representative deep workload's post-L1-ish stream.
    let spec = spec_by_name("bzip2").expect("catalog");
    let blocks: Vec<u64> = AddressStream::new(spec, sets as u64, 1, args.seed)
        .filter_map(|op| op.addr())
        .take(budget)
        .map(|a| a.block().0)
        .collect();

    let reference = curve_of(ProfilerConfig::reference(sets, 72), &blocks);
    let ref_ratios: Vec<f64> = (1..=56).map(|w| reference.miss_ratio_at(w)).collect();

    let mut rows = Vec::new();
    for tag_bits in [Some(6u32), Some(8), Some(10), Some(12), Some(16), None] {
        for sample_ratio in [1usize, 8, 32, 128] {
            if sample_ratio > sets {
                continue;
            }
            let cfg = ProfilerConfig {
                num_sets: sets,
                max_ways: 72,
                sample_ratio,
                tag_bits,
                engine: EngineKind::default(),
            };
            let curve = curve_of(cfg, &blocks);
            let mut errs = Vec::new();
            for (i, w) in (1..=56).enumerate() {
                let e = (curve.miss_ratio_at(w) - ref_ratios[i]).abs();
                errs.push(e);
            }
            let mean = errs.iter().sum::<f64>() / errs.len() as f64;
            let max = errs.iter().cloned().fold(0.0f64, f64::max);
            let storage = OverheadModel {
                tag_bits: tag_bits.unwrap_or(28) as u64,
                sample_ratio: sample_ratio as u64,
                num_sets: sets as u64,
                ..OverheadModel::paper()
            };
            rows.push(ProfilerRow {
                tag_bits: tag_bits.map_or("full".into(), |b| b.to_string()),
                sample_ratio,
                mean_curve_error: mean,
                max_curve_error: max,
                storage_kbits: kbits(storage.total_bits_per_profiler()),
            });
        }
    }

    println!("Profiler-accuracy ablation (bzip2 analogue, vs full-tag all-sets reference)");
    println!(
        "{:>9} {:>9} {:>12} {:>12} {:>12}",
        "tag bits", "1-in-N", "mean err", "max err", "kbits"
    );
    for r in &rows {
        println!(
            "{:>9} {:>9} {:>12.4} {:>12.4} {:>12.1}",
            r.tag_bits, r.sample_ratio, r.mean_curve_error, r.max_curve_error, r.storage_kbits
        );
    }
    println!("\nexpected: 12-bit tags + 1-in-32 sampling stay within ~0.05 of the reference.");
    let path = write_json("ablate_profiler", &rows);
    println!("wrote {}", path.display());
}

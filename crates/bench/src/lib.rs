//! Experiment harness: regenerates every table and figure of the paper.
//!
//! One binary per artefact (`src/bin/exp_*.rs`), all writing JSON into
//! `results/` and printing the same rows/series the paper reports:
//!
//! | Binary | Paper artefact |
//! |---|---|
//! | `exp_fig2` | Fig. 2 — MSA LRU histogram example |
//! | `exp_fig3` | Fig. 3 — cumulative miss-ratio curves |
//! | `exp_table1` | Table I — baseline parameters |
//! | `exp_table2` | Table II — profiler hardware overhead |
//! | `exp_fig7` | Fig. 7 — Monte Carlo, relative miss ratio |
//! | `exp_table3` | Table III — 8 sets & way assignments |
//! | `exp_fig8` | Fig. 8 — relative miss rate (detailed sim) |
//! | `exp_fig9` | Fig. 9 — relative CPI (detailed sim) |
//! | `exp_ablate_aggregation` | §III-B — aggregation-scheme migration rates |
//! | `exp_ablate_profiler` | §III-A — partial-tag/sampling accuracy |
//! | `exp_ablate_epoch` | design — epoch-length sensitivity |
//! | `exp_ablate_maxcap` | design — max-assignable-capacity sweep |
//! | `exp_ablate_replacement` | design — LRU vs PLRU/NRU/Random banks |
//! | `exp_fairness` | §I motivation — weighted speedup / fairness index |
//! | `exp_ablate_phases` | dynamic adaptation vs frozen plans under phase changes |
//! | `exp_scalability` | §I claim — 8-core vs 16-core machines, decision cost |
//! | `exp_ablate_floorplan` | chain abstraction vs explicit Fig. 1 mesh |
//! | `exp_ablate_dram` | flat memory pipe vs banked row-buffer DRAM |
//! | `exp_ablate_isolation` | migrating vs strict way-restricted lookups |
//! | `exp_validation` | §IV-A projected-vs-simulated cross-check |
//!
//! Criterion micro-benchmarks of the substrates live in `benches/`.

pub mod common;
pub mod detailed;
pub mod mc;
pub mod mixes;

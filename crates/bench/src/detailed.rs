//! Detailed-simulation runs shared by the Fig. 8 and Fig. 9 binaries.
//!
//! Each Table III set runs under the three policies (No-partitions,
//! Equal-partitions, Bank-aware); the results are cached in `results/` so
//! `exp_fig9` can reuse `exp_fig8`'s runs.

use crate::common::Args;
use crate::mixes::{resolve, table3_sets};
use bap_core::Policy;
use bap_system::{SimOptions, System};
use bap_types::SystemConfig;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Measured outcome of one (set, policy) run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PolicyRun {
    /// Total L2 misses over the measurement slice.
    pub misses: u64,
    /// Total L2 accesses.
    pub accesses: u64,
    /// Per-core CPI.
    pub cpi: Vec<f64>,
    /// Mean CPI across cores.
    pub mean_cpi: f64,
    /// Bank-aware way assignment at the end of the run (empty otherwise).
    pub final_ways: Vec<usize>,
    /// Repartitioning epochs fired during measurement.
    pub epochs: u64,
}

/// All runs for the eight sets.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DetailedResults {
    /// The eight mixes.
    pub sets: Vec<Vec<String>>,
    /// Per set: runs under [NoPartition, Equal, BankAware].
    pub runs: Vec<[PolicyRun; 3]>,
    /// Provenance.
    pub seed: u64,
    /// Scale divisor used.
    pub scale: u64,
    /// Whether the run used the reduced quick budgets.
    #[serde(default)]
    pub quick: bool,
}

/// Budgets scaled from the paper's 100 M-warm-up / 200 M-slice / 100 M-epoch
/// methodology.
pub fn sim_options(args: &Args, policy: Policy) -> SimOptions {
    let mut opts = SimOptions::new(SystemConfig::scaled(args.scale), policy);
    let div = if args.quick { 10 } else { 1 };
    opts.warmup_instructions = 2_000_000 / div;
    opts.measure_instructions = 4_000_000 / div;
    // The paper fires 2–4 100 M-cycle epochs per 200 M-instruction slice;
    // keep the same proportion (a handful of epochs per slice, with a
    // couple already during warm-up so a Bank-aware plan is in force when
    // measurement starts).
    opts.config.epoch_cycles = 2_000_000 / div;
    if let Some(chain) = args.chain {
        opts.shared_chain_limit = chain;
    }
    opts.seed = args.seed;
    opts
}

fn run_one(args: &Args, mix: &[String], policy: Policy) -> PolicyRun {
    let opts = sim_options(args, policy);
    let result = System::new(opts, resolve(mix)).run();
    PolicyRun {
        misses: result.total_l2_misses(),
        accesses: result.total_l2_accesses(),
        cpi: result.per_core.iter().map(|c| c.cpi()).collect(),
        mean_cpi: result.mean_cpi(),
        final_ways: result
            .final_plan
            .map(|p| {
                (0..p.num_cores())
                    .map(|c| p.ways_of(bap_types::CoreId(c as u16)))
                    .collect()
            })
            .unwrap_or_default(),
        epochs: result.epochs,
    }
}

/// Run (or re-run) all 8 sets × 3 policies in parallel. With `--seeds N`
/// each (set, policy) cell is run N times with independent seeds and the
/// counts are averaged (CPI vectors come from the first seed; means carry
/// the statistics).
pub fn run_all(args: &Args) -> DetailedResults {
    let sets = table3_sets(args.seed);
    let runs: Vec<[PolicyRun; 3]> = sets
        .par_iter()
        .map(|mix| {
            [
                run_averaged(args, mix, Policy::NoPartition),
                run_averaged(args, mix, Policy::Equal),
                run_averaged(args, mix, Policy::BankAware),
            ]
        })
        .collect();
    DetailedResults {
        sets,
        runs,
        seed: args.seed,
        scale: args.scale,
        quick: args.quick,
    }
}

fn run_averaged(args: &Args, mix: &[String], policy: Policy) -> PolicyRun {
    let runs: Vec<PolicyRun> = (0..args.seeds)
        .map(|i| {
            let mut a = args.clone();
            a.seed = args.seed.wrapping_add(i * 7919);
            run_one(&a, mix, policy)
        })
        .collect();
    let n = runs.len() as u64;
    let mut avg = runs[0].clone();
    avg.misses = runs.iter().map(|r| r.misses).sum::<u64>() / n;
    avg.accesses = runs.iter().map(|r| r.accesses).sum::<u64>() / n;
    avg.mean_cpi = runs.iter().map(|r| r.mean_cpi).sum::<f64>() / n as f64;
    avg
}

/// Load cached detailed results if they match the arguments, else rerun.
pub fn run_all_cached(args: &Args) -> DetailedResults {
    if let Some(cached) = crate::common::read_json::<DetailedResults>("detailed_runs") {
        if cached.seed == args.seed && cached.scale == args.scale && cached.quick == args.quick {
            return cached;
        }
    }
    let results = run_all(args);
    crate::common::write_json("detailed_runs", &results);
    results
}

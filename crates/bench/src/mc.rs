//! The Fig. 7 Monte Carlo evaluation machinery.
//!
//! Profiles the 26 analogues stand-alone (once, cached in `results/`), then
//! projects every random mix's total miss rate under Equal, Unrestricted
//! and Bank-aware assignments using the MSA inclusion property — exactly
//! the paper's comparison methodology (§IV-A).

use bap_core::{bank_aware_partition, unrestricted_partition, BankAwareConfig};
use bap_msa::{MissRatioCurve, ProfilerConfig};
use bap_system::profile_workloads;
use bap_types::{CoreId, SystemConfig, Topology, TOTAL_WAYS};
use bap_workloads::all_workloads;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Stand-alone profiles of all 26 analogues, keyed by name.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ProfileLibrary {
    /// Per-workload miss-ratio curves.
    pub curves: HashMap<String, MissRatioCurve>,
    /// The seed the library was profiled with.
    pub seed: u64,
    /// Instructions profiled per workload (0 in pre-versioned caches,
    /// which therefore never match and are rebuilt).
    #[serde(default)]
    pub instructions: u64,
}

/// Build (or rebuild) the profile library. `instructions` profiled per workload.
pub fn build_library(cfg: &SystemConfig, instructions: u64, seed: u64) -> ProfileLibrary {
    let specs = all_workloads();
    let pcfg = ProfilerConfig::reference(cfg.l2_bank_sets(), TOTAL_WAYS * 9 / 16);
    let curves = profile_workloads(&specs, cfg, pcfg, instructions, seed);
    ProfileLibrary {
        curves: specs.iter().map(|s| s.name.clone()).zip(curves).collect(),
        seed,
        instructions,
    }
}

/// Load the cached profile library from `results/` if it is intact and was
/// built for the same `(seed, instructions)` request, else (re)build and
/// cache it. A cache that deserialises but fails validation — wrong
/// provenance, missing workloads, non-finite or non-monotone curves — is
/// discarded and rebuilt rather than silently poisoning every projection
/// downstream.
pub fn load_or_build_library(cfg: &SystemConfig, instructions: u64, seed: u64) -> ProfileLibrary {
    if let Some(lib) = crate::common::read_json::<ProfileLibrary>("profile_library") {
        if library_is_valid(&lib, instructions, seed) {
            return lib;
        }
        eprintln!("cached profile library is stale or corrupt; rebuilding");
    }
    let lib = build_library(cfg, instructions, seed);
    crate::common::write_json("profile_library", &lib);
    lib
}

/// Whether a deserialised library is trustworthy for this request.
fn library_is_valid(lib: &ProfileLibrary, instructions: u64, seed: u64) -> bool {
    if lib.seed != seed || lib.instructions != instructions {
        return false;
    }
    let specs = all_workloads();
    if lib.curves.len() != specs.len() {
        return false;
    }
    specs.iter().all(|s| {
        lib.curves
            .get(&s.name)
            .is_some_and(|c| c.health().is_clean() && c.accesses() > 0.0)
    })
}

/// Projected outcome of one mix under the three assignment policies.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MixOutcome {
    /// The mix (workload names, one per core).
    pub mix: Vec<String>,
    /// Projected misses under even 16-way shares.
    pub equal_misses: f64,
    /// Projected misses under the Unrestricted assignment.
    pub unrestricted_misses: f64,
    /// Projected misses under the Bank-aware assignment.
    pub bank_aware_misses: f64,
    /// The Bank-aware per-core way counts (Table III rows).
    pub bank_aware_ways: Vec<usize>,
    /// The Unrestricted per-core way counts.
    pub unrestricted_ways: Vec<usize>,
}

impl MixOutcome {
    /// Miss ratio of Unrestricted relative to Equal (Fig. 7's y-axis).
    pub fn unrestricted_relative(&self) -> f64 {
        bap_types::stats::relative(self.unrestricted_misses, self.equal_misses)
    }

    /// Miss ratio of Bank-aware relative to Equal.
    pub fn bank_aware_relative(&self) -> f64 {
        bap_types::stats::relative(self.bank_aware_misses, self.equal_misses)
    }
}

/// Evaluate one mix against the library. Curves are borrowed straight from
/// the library — 1000 mixes × 8 curves × 73-entry vectors of per-mix clones
/// would be pure allocator churn on the Monte Carlo hot loop.
pub fn evaluate_mix(lib: &ProfileLibrary, mix: &[String], topo: &Topology) -> MixOutcome {
    let curves: Vec<&MissRatioCurve> = mix
        .iter()
        .map(|n| {
            lib.curves
                .get(n)
                .unwrap_or_else(|| panic!("no profile for {n}"))
        })
        .collect();
    let n = curves.len();
    let bank_ways = 8;
    let total = topo.num_banks() * bank_ways;
    let max = total * 9 / 16;

    let equal: Vec<usize> = vec![total / n; n];
    let unrestricted = unrestricted_partition(&curves, total, 1, max);
    let plan = bank_aware_partition(&curves, topo, bank_ways, &BankAwareConfig::default());
    let bank_aware: Vec<usize> = (0..n).map(|c| plan.ways_of(CoreId(c as u16))).collect();

    let project =
        |alloc: &[usize]| -> f64 { curves.iter().zip(alloc).map(|(c, &w)| c.misses_at(w)).sum() };
    MixOutcome {
        mix: mix.to_vec(),
        equal_misses: project(&equal),
        unrestricted_misses: project(&unrestricted),
        bank_aware_misses: project(&bank_aware),
        bank_aware_ways: bank_aware,
        unrestricted_ways: unrestricted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn library() -> ProfileLibrary {
        build_library(&SystemConfig::scaled(64), 500_000, 3)
    }

    #[test]
    fn library_covers_all_workloads() {
        let lib = library();
        assert_eq!(lib.curves.len(), 26);
    }

    /// A synthetic, structurally valid library (no profiling cost).
    fn synthetic_library(seed: u64, instructions: u64) -> ProfileLibrary {
        let curves = all_workloads()
            .iter()
            .map(|s| {
                let c = MissRatioCurve::from_misses(
                    (0..=72).map(|w| (1000 - w * 10) as f64).collect(),
                    5000.0,
                );
                (s.name.clone(), c)
            })
            .collect();
        ProfileLibrary {
            curves,
            seed,
            instructions,
        }
    }

    #[test]
    fn cache_validation_accepts_an_intact_library() {
        let lib = synthetic_library(3, 1000);
        assert!(library_is_valid(&lib, 1000, 3));
    }

    #[test]
    fn cache_validation_rejects_wrong_provenance() {
        let lib = synthetic_library(3, 1000);
        assert!(!library_is_valid(&lib, 1000, 4), "seed mismatch");
        assert!(!library_is_valid(&lib, 2000, 3), "budget mismatch");
    }

    #[test]
    fn cache_validation_rejects_missing_and_corrupt_curves() {
        let mut lib = synthetic_library(3, 1000);
        let victim = all_workloads()[0].name.clone();
        lib.curves.remove(&victim);
        assert!(!library_is_valid(&lib, 1000, 3), "missing workload");

        let mut lib = synthetic_library(3, 1000);
        lib.curves.insert(
            victim.clone(),
            MissRatioCurve::from_misses(vec![100.0, f64::NAN, 50.0], 500.0),
        );
        assert!(!library_is_valid(&lib, 1000, 3), "NaN-laced curve");

        let mut lib = synthetic_library(3, 1000);
        lib.curves
            .insert(victim, MissRatioCurve::from_misses(vec![10.0, 50.0], 500.0));
        assert!(!library_is_valid(&lib, 1000, 3), "non-monotone curve");
    }

    #[test]
    fn partitioned_projections_never_exceed_equal_by_much() {
        let lib = library();
        let topo = Topology::baseline();
        let mix: Vec<String> = [
            "mcf", "art", "sixtrack", "eon", "gcc", "swim", "galgel", "gap",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let out = evaluate_mix(&lib, &mix, &topo);
        // Utility-driven assignments at least match the static split.
        assert!(out.unrestricted_misses <= out.equal_misses * 1.02);
        // Bank restrictions cost little relative to Unrestricted.
        assert!(out.bank_aware_misses <= out.equal_misses * 1.05);
        assert_eq!(out.bank_aware_ways.iter().sum::<usize>(), 128);
    }
}

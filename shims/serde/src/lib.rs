//! Offline shim of the `serde` crate.
//!
//! Real serde is a zero-copy framework generic over data formats; this shim
//! collapses the data model to one owned tree ([`Value`]) because the only
//! format the workspace uses is JSON. [`Serialize`] renders into a `Value`,
//! [`Deserialize`] reads back out of one, and the companion `serde_json`
//! shim handles text. The derive macros come from the local `serde_derive`
//! proc-macro crate and are re-exported here so `use serde::{Serialize,
//! Deserialize}` imports trait and macro together, exactly like upstream.

use std::collections::HashMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The serialized data tree (JSON data model).
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number without a fractional part (covers all of `i64`/`u64`).
    Int(i128),
    /// JSON number with a fractional part.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, insertion-ordered.
    Object(Vec<(String, Value)>),
}

/// Serialization/deserialization error: a human-readable description of the
/// first mismatch between the value tree and the target type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Build an error from anything displayable.
    pub fn msg(m: impl fmt::Display) -> Self {
        Error(m.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Render `self` into a [`Value`] tree.
pub trait Serialize {
    /// The value tree representing `self`.
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parse the tree; errors describe the first mismatch.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Deserializer-side re-exports (`serde::de::DeserializeOwned` bounds).
pub mod de {
    pub use crate::Deserialize as DeserializeOwned;
    pub use crate::Deserialize;

    /// Deserialization-error constructor trait (`serde::de::Error`).
    pub trait Error: Sized {
        /// Build an error from any displayable message.
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }

    impl Error for crate::Error {
        fn custom<T: std::fmt::Display>(msg: T) -> Self {
            crate::Error::msg(msg)
        }
    }
}

/// Serializer-side re-exports.
pub mod ser {
    pub use crate::Serialize;
}

impl Value {
    /// The value as `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as `u64`, if a non-negative integer in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as `i64`, if an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => i64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object's key/value pairs.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(o) => o.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Short description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<&String> for Value {
    type Output = Value;
    fn index(&self, key: &String) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// ---- Derive-support helpers (called from generated code). ----

/// Look up a struct field; a missing member reads as `null` so `Option`
/// fields deserialize to `None` (other types report the absence).
pub fn from_field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
    match v {
        Value::Object(_) => T::from_value(v.get(name).unwrap_or(&NULL))
            .map_err(|e| Error(format!("field {name:?}: {e}"))),
        other => Err(Error(format!(
            "expected object with field {name:?}, got {}",
            other.kind()
        ))),
    }
}

/// As [`from_field`], but a missing member yields `T::default()`
/// (`#[serde(default)]`).
pub fn from_field_or_default<T: Deserialize + Default>(v: &Value, name: &str) -> Result<T, Error> {
    match v {
        Value::Object(_) => match v.get(name) {
            Some(m) => T::from_value(m).map_err(|e| Error(format!("field {name:?}: {e}"))),
            None => Ok(T::default()),
        },
        other => Err(Error(format!(
            "expected object with field {name:?}, got {}",
            other.kind()
        ))),
    }
}

/// Positional lookup for tuple structs / tuple enum variants.
pub fn from_index<T: Deserialize>(v: &Value, idx: usize) -> Result<T, Error> {
    match v {
        Value::Array(a) => match a.get(idx) {
            Some(m) => T::from_value(m).map_err(|e| Error(format!("index {idx}: {e}"))),
            None => Err(Error(format!("missing tuple element {idx}"))),
        },
        other => Err(Error(format!("expected array, got {}", other.kind()))),
    }
}

// ---- Serialize/Deserialize impls for std types. ----

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(_v: &Value) -> Result<Self, Error> {
        Ok(())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error(format!("expected bool, got {}", v.kind())))
    }
}

macro_rules! impl_ints {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error(format!("integer {i} out of range"))),
                    other => Err(Error(format!(
                        "expected integer, got {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            // JSON cannot represent NaN/infinity; serde_json writes null.
            Value::Null => Ok(f64::NAN),
            _ => v
                .as_f64()
                .ok_or_else(|| Error(format!("expected number, got {}", v.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error(format!("expected string, got {}", v.kind())))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(a) => a.iter().map(T::from_value).collect(),
            other => Err(Error(format!("expected array, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| Error(format!("expected array of {N} elements, got {got}")))
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(a) => a.iter().map(T::from_value).collect(),
            other => Err(Error(format!("expected array, got {}", other.kind()))),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sorted for deterministic output (HashMap iteration order isn't).
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        pairs.sort_by(|(a, _), (b, _)| a.cmp(b));
        Value::Object(pairs)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(o) => o
                .iter()
                .map(|(k, m)| Ok((k.clone(), V::from_value(m)?)))
                .collect(),
            other => Err(Error(format!("expected object, got {}", other.kind()))),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        // Already sorted by key.
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(o) => o
                .iter()
                .map(|(k, m)| Ok((k.clone(), V::from_value(m)?)))
                .collect(),
            other => Err(Error(format!("expected object, got {}", other.kind()))),
        }
    }
}

macro_rules! impl_tuples {
    ($(($($t:ident : $i:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$i.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                Ok(($(from_index::<$t>(v, $i)?,)+))
            }
        }
    )*};
}
impl_tuples! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn out_of_range_integers_error() {
        assert!(u8::from_value(&Value::Int(300)).is_err());
        assert!(u64::from_value(&Value::Int(-1)).is_err());
    }

    #[test]
    fn option_and_vec_round_trip() {
        let v: Option<u32> = None;
        assert_eq!(v.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        let xs = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&xs.to_value()).unwrap(), xs);
    }

    #[test]
    fn map_serialization_is_sorted() {
        let mut m = HashMap::new();
        m.insert("b".to_string(), 2u32);
        m.insert("a".to_string(), 1u32);
        let Value::Object(pairs) = m.to_value() else {
            panic!()
        };
        assert_eq!(pairs[0].0, "a");
        assert_eq!(
            HashMap::<String, u32>::from_value(&m.to_value()).unwrap(),
            m
        );
    }

    #[test]
    fn missing_field_is_null_for_option() {
        let obj = Value::Object(vec![("x".into(), Value::Int(1))]);
        let y: Option<u32> = from_field(&obj, "y").unwrap();
        assert_eq!(y, None);
        assert!(from_field::<u32>(&obj, "y").is_err());
        let d: u32 = from_field_or_default(&obj, "y").unwrap();
        assert_eq!(d, 0);
    }

    #[test]
    fn nan_round_trips_as_null() {
        assert_eq!(f64::NAN.to_value().kind(), "float");
        assert!(f64::from_value(&Value::Null).unwrap().is_nan());
    }

    #[test]
    fn indexing_missing_members_yields_null() {
        let obj = Value::Object(vec![("x".into(), Value::Int(1))]);
        assert_eq!(obj["x"].as_u64(), Some(1));
        assert_eq!(obj["nope"], Value::Null);
        assert_eq!(Value::Array(vec![])[3], Value::Null);
    }
}

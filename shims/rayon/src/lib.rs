//! Offline shim of the `rayon` crate.
//!
//! The workspace only uses `slice.par_iter().map(f).collect()`, so this shim
//! implements exactly that shape on top of `std::thread::scope`: workers
//! pull the next unclaimed index from a shared atomic counter (dynamic
//! scheduling, so a few slow items — e.g. the long-running workloads of a
//! profiling batch — do not serialise behind a static chunk split) and tag
//! each result with its index, then results are merged back in input
//! order — the same ordered semantics `rayon` guarantees for indexed
//! parallel iterators.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The traits user code imports.
pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParallelIterator};
}

/// `.par_iter()` on shared slices.
pub trait IntoParallelRefIterator<'a> {
    /// Element type yielded by the parallel iterator.
    type Item: Sync + 'a;
    /// Start a parallel iteration over `&self`.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// A borrowed parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

/// Minimal parallel-iterator interface (satisfied by [`ParIter`] through
/// its inherent methods; the trait exists so `use rayon::prelude::*` keeps
/// its usual meaning).
pub trait ParallelIterator {}
impl<T> ParallelIterator for ParIter<'_, T> {}
impl<I, F> ParallelIterator for ParMap<I, F> {}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Map every element through `f` (evaluated in parallel at `collect`).
    pub fn map<U, F>(self, f: F) -> ParMap<Self, F>
    where
        U: Send,
        F: Fn(&'a T) -> U + Sync,
    {
        ParMap { base: self, f }
    }
}

/// A mapped parallel iterator.
pub struct ParMap<I, F> {
    base: I,
    f: F,
}

impl<'a, T: Sync, U: Send, F: Fn(&'a T) -> U + Sync> ParMap<ParIter<'a, T>, F> {
    /// Evaluate the map in parallel, preserving input order.
    pub fn collect<C: FromIterator<U>>(self) -> C {
        parallel_map(self.base.items, self.f).into_iter().collect()
    }
}

/// Order-preserving parallel map with dynamic scheduling: workers pull the
/// next unclaimed index from a shared counter, so uneven per-item cost
/// balances automatically.
fn parallel_map<'a, T: Sync, U: Send>(items: &'a [T], f: impl Fn(&'a T) -> U + Sync) -> Vec<U> {
    let workers = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(items.len().max(1));
    if workers <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let (next, f) = (&next, &f);
    let mut tagged: Vec<(usize, U)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        out.push((i, f(item)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("parallel map worker panicked"))
            .collect()
    });
    tagged.sort_unstable_by_key(|&(i, _)| i);
    debug_assert_eq!(tagged.len(), items.len());
    tagged.into_iter().map(|(_, u)| u).collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn preserves_order() {
        let input: Vec<u64> = (0..10_000).collect();
        let out: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [7u32];
        let out: Vec<u32> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }
}

//! Offline shim of the `rayon` crate.
//!
//! The workspace only uses `slice.par_iter().map(f).collect()`, so this shim
//! implements exactly that shape on top of a lazily started persistent
//! worker pool. Workers pull the next unclaimed index from a shared atomic
//! counter (dynamic scheduling, so a few slow items — e.g. the long-running
//! workloads of a profiling batch — do not serialise behind a static chunk
//! split) and write each result into its input slot, preserving the ordered
//! semantics `rayon` guarantees for indexed parallel iterators.
//!
//! The pool is persistent for the same reason rayon's is: spawning a thread
//! costs tens of microseconds, and callers like the sharded partition
//! solver issue sub-100 µs maps on the hot epoch path. The calling thread
//! always participates in its own map, which also makes nested maps (a
//! `par_iter` inside a `par_iter` job) deadlock-free: the caller drains its
//! own work even when every pool worker is busy, and a pool worker that
//! later pops an already-finished map's job sees no unclaimed index and
//! drops it without touching the (long gone) caller stack.

use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// The traits user code imports.
pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParallelIterator};
}

/// `.par_iter()` on shared slices.
pub trait IntoParallelRefIterator<'a> {
    /// Element type yielded by the parallel iterator.
    type Item: Sync + 'a;
    /// Start a parallel iteration over `&self`.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// A borrowed parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

/// Minimal parallel-iterator interface (satisfied by [`ParIter`] through
/// its inherent methods; the trait exists so `use rayon::prelude::*` keeps
/// its usual meaning).
pub trait ParallelIterator {}
impl<T> ParallelIterator for ParIter<'_, T> {}
impl<I, F> ParallelIterator for ParMap<I, F> {}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Map every element through `f` (evaluated in parallel at `collect`).
    pub fn map<U, F>(self, f: F) -> ParMap<Self, F>
    where
        U: Send,
        F: Fn(&'a T) -> U + Sync,
    {
        ParMap { base: self, f }
    }
}

/// A mapped parallel iterator.
pub struct ParMap<I, F> {
    base: I,
    f: F,
}

impl<'a, T: Sync, U: Send, F: Fn(&'a T) -> U + Sync> ParMap<ParIter<'a, T>, F> {
    /// Evaluate the map in parallel, preserving input order.
    pub fn collect<C: FromIterator<U>>(self) -> C {
        parallel_map(self.base.items, self.f).into_iter().collect()
    }
}

/// One in-flight `parallel_map` call, shared between the caller and any
/// pool workers that pick its job up. The item closure is type-erased to a
/// (fn pointer, context pointer) pair so the state itself is unsized-free
/// and can sit behind `Arc` in the pool's job queue.
///
/// Lifetime protocol (this is what makes the raw `ctx` pointer sound): the
/// caller keeps the context alive until `pending` reaches zero, and
/// `pending` only reaches zero after every item index has been claimed.
/// Any job that pops later claims `next >= len` and exits on the first
/// branch, before ever dereferencing `ctx`.
struct MapCall {
    /// Next unclaimed item index.
    next: AtomicUsize,
    /// Total items in the map.
    len: usize,
    /// Items not yet completed; the transition to zero wakes the caller.
    pending: AtomicUsize,
    /// Set when any item closure panicked; the caller re-raises.
    poisoned: AtomicBool,
    /// Completion flag + condvar the caller parks on.
    done: Mutex<bool>,
    cv: Condvar,
    /// Erased `Fn(usize)` that computes one item and stores its result.
    run_item: unsafe fn(*const (), usize),
    ctx: *const (),
}

// SAFETY: `ctx` is only dereferenced under the lifetime protocol documented
// on the struct; everything else is atomics and sync primitives.
unsafe impl Send for MapCall {}
unsafe impl Sync for MapCall {}

impl MapCall {
    /// Pull-loop executed by the caller and by any worker that picks the
    /// job up. Returns once no unclaimed items remain.
    fn work(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.len {
                return;
            }
            // Catch panics so a poisoned closure cannot strand `pending`
            // above zero (caller deadlock) or unwind a pool worker away.
            if catch_unwind(AssertUnwindSafe(|| unsafe { (self.run_item)(self.ctx, i) })).is_err() {
                self.poisoned.store(true, Ordering::Relaxed);
            }
            // AcqRel: the final decrement acquires every earlier worker's
            // result writes before it publishes completion to the caller.
            if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                let mut done = self.done.lock().expect("completion lock");
                *done = true;
                self.cv.notify_one();
            }
        }
    }
}

/// Monomorphised trampoline: recover the concrete closure from the erased
/// context pointer and run it for item `i`.
unsafe fn call_erased<G: Fn(usize)>(ctx: *const (), i: usize) {
    (*(ctx as *const G))(i)
}

/// Erase a borrowed closure to the (fn, ctx) pair stored in [`MapCall`].
fn erase<G: Fn(usize) + Sync>(g: &G) -> (unsafe fn(*const (), usize), *const ()) {
    (call_erased::<G>, g as *const G as *const ())
}

/// How long an idle worker spins watching the submit generation before
/// parking on the condvar. Roughly 50–100 µs of `spin_loop` hints — long
/// enough that back-to-back maps (the sharded solver's epoch cadence, tight
/// benchmark loops) find workers still hot and pay nanoseconds of pickup
/// latency instead of a futex wakeup.
const IDLE_SPINS: u32 = 1 << 16;

struct Pool {
    /// The most recently submitted map. Workers that notice the generation
    /// move join whatever is here; since item claims go through the map's
    /// own atomic counter, late or surplus joiners claim nothing and leave
    /// without contending further. Two overlapping maps (nesting) simply
    /// means the older one keeps whatever helpers already joined plus its
    /// own caller — correctness never depends on helpers at all.
    slot: Mutex<Option<Arc<MapCall>>>,
    /// Helper seats left on the current map. Workers claim one with a CAS
    /// before touching the slot, so a 2-shard map costs one slot-lock
    /// acquisition, not one per pool thread.
    tickets: AtomicUsize,
    /// Bumped once per submit; idle workers spin on this cheap cacheline
    /// instead of hammering the slot lock.
    generation: AtomicUsize,
    /// Workers currently parked (lets `submit` skip the wakeup entirely on
    /// the hot path where everyone is still spinning).
    parked: AtomicUsize,
    /// Parking lot for workers whose spin budget ran out.
    idle: Mutex<()>,
    wake: Condvar,
    workers: usize,
}

impl Pool {
    fn submit(&self, call: &Arc<MapCall>, helpers: usize) {
        *self.slot.lock().expect("job slot lock") = Some(Arc::clone(call));
        self.tickets.store(helpers, Ordering::SeqCst);
        self.generation.fetch_add(1, Ordering::SeqCst);
        if self.parked.load(Ordering::SeqCst) > 0 {
            // Take the idle lock before notifying so a worker cannot
            // re-check the generation and park between our bump and our
            // notify.
            let _idle = self.idle.lock().expect("idle lock");
            self.wake.notify_all();
        }
    }

    /// Claim one helper seat on the current map, if any remain.
    fn claim(&self) -> Option<Arc<MapCall>> {
        let mut t = self.tickets.load(Ordering::Relaxed);
        while t > 0 {
            match self
                .tickets
                .compare_exchange_weak(t, t - 1, Ordering::AcqRel, Ordering::Relaxed)
            {
                Ok(_) => return self.slot.lock().expect("job slot lock").clone(),
                Err(now) => t = now,
            }
        }
        None
    }

    fn worker_loop(&self) {
        let mut seen = self.generation.load(Ordering::SeqCst);
        loop {
            // Spin watching the generation, then park.
            let mut spins = 0u32;
            loop {
                let now = self.generation.load(Ordering::SeqCst);
                if now != seen {
                    seen = now;
                    break;
                }
                spins += 1;
                if spins > IDLE_SPINS {
                    self.parked.fetch_add(1, Ordering::SeqCst);
                    let guard = self.idle.lock().expect("idle lock");
                    let now = self.generation.load(Ordering::SeqCst);
                    if now != seen {
                        self.parked.fetch_sub(1, Ordering::SeqCst);
                        seen = now;
                        break;
                    }
                    let guard = self.wake.wait(guard).expect("idle wait");
                    drop(guard);
                    self.parked.fetch_sub(1, Ordering::SeqCst);
                    seen = self.generation.load(Ordering::SeqCst);
                    break;
                }
                std::hint::spin_loop();
            }
            if let Some(call) = self.claim() {
                call.work();
            }
        }
    }
}

/// The lazily started global pool: one worker per spare hardware thread.
fn pool() -> &'static Pool {
    static POOL: OnceLock<&'static Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let workers = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
            .saturating_sub(1);
        let pool: &'static Pool = Box::leak(Box::new(Pool {
            slot: Mutex::new(None),
            tickets: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            parked: AtomicUsize::new(0),
            idle: Mutex::new(()),
            wake: Condvar::new(),
            workers,
        }));
        for _ in 0..workers {
            std::thread::spawn(move || pool.worker_loop());
        }
        pool
    })
}

/// Order-preserving parallel map with dynamic scheduling on the shared
/// worker pool. The caller participates, so this never blocks waiting for
/// a free worker and nests safely.
fn parallel_map<'a, T: Sync, U: Send>(items: &'a [T], f: impl Fn(&'a T) -> U + Sync) -> Vec<U> {
    let len = items.len();
    if len <= 1 {
        return items.iter().map(f).collect();
    }
    let mut out: Vec<Option<U>> = (0..len).map(|_| None).collect();

    struct SlotPtr<U>(*mut Option<U>);
    impl<U> SlotPtr<U> {
        /// SAFETY: caller must hold the only claim on index `i`.
        unsafe fn write(&self, i: usize, value: U) {
            *self.0.add(i) = Some(value);
        }
    }
    // SAFETY: distinct indices are written by distinct claimants; the
    // pending counter publishes the writes back to the caller.
    unsafe impl<U: Send> Send for SlotPtr<U> {}
    unsafe impl<U: Send> Sync for SlotPtr<U> {}
    let slots = SlotPtr(out.as_mut_ptr());

    let run_one = move |i: usize| {
        let value = f(&items[i]);
        unsafe { slots.write(i, value) };
    };
    let (run_item, ctx) = erase(&run_one);
    let call = Arc::new(MapCall {
        next: AtomicUsize::new(0),
        len,
        pending: AtomicUsize::new(len),
        poisoned: AtomicBool::new(false),
        done: Mutex::new(false),
        cv: Condvar::new(),
        run_item,
        ctx,
    });

    let pool = pool();
    let helpers = pool.workers.min(len - 1);
    if helpers > 0 {
        pool.submit(&call, helpers);
    }

    call.work();
    // The caller usually claims the final item itself; when a helper holds
    // it, spin briefly before paying for a condvar park.
    let mut spins = 0u32;
    while call.pending.load(Ordering::Acquire) > 0 && spins < IDLE_SPINS {
        spins += 1;
        std::hint::spin_loop();
    }
    // pending == 0 with Acquire already publishes every result write; the
    // condvar is only for the slow path where a helper still holds items.
    if call.pending.load(Ordering::Acquire) > 0 {
        let mut done = call.done.lock().expect("completion lock");
        while !*done {
            done = call.cv.wait(done).expect("completion wait");
        }
    }

    if call.poisoned.load(Ordering::Relaxed) {
        panic!("parallel map worker panicked");
    }
    out.into_iter()
        .map(|slot| slot.expect("every index claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn preserves_order() {
        let input: Vec<u64> = (0..10_000).collect();
        let out: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [7u32];
        let out: Vec<u32> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn nested_maps_do_not_deadlock() {
        let outer: Vec<u32> = (0..16).collect();
        let out: Vec<u32> = outer
            .par_iter()
            .map(|&x| {
                let inner: Vec<u32> = (0..8).collect();
                let doubled: Vec<u32> = inner.par_iter().map(|&y| y * 2).collect();
                x + doubled.iter().sum::<u32>()
            })
            .collect();
        assert_eq!(out, (0..16).map(|x| x + 56).collect::<Vec<_>>());
    }

    #[test]
    fn many_small_maps_reuse_the_pool() {
        // The whole point of the persistent pool: thousands of tiny maps
        // must not cost a thread spawn each.
        for round in 0..2_000u64 {
            let input = [round, round + 1, round + 2, round + 3];
            let out: Vec<u64> = input.par_iter().map(|&x| x + 1).collect();
            assert_eq!(out, vec![round + 1, round + 2, round + 3, round + 4]);
        }
    }

    #[test]
    #[should_panic(expected = "parallel map worker panicked")]
    fn item_panics_propagate_to_the_caller() {
        let input: Vec<u32> = (0..64).collect();
        let _: Vec<u32> = input
            .par_iter()
            .map(|&x| if x == 33 { panic!("boom") } else { x })
            .collect();
    }
}

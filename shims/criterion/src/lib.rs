//! Offline shim of the `criterion` crate.
//!
//! Implements the subset the workspace benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter`, `black_box`, and
//! the `criterion_group!`/`criterion_main!` macros — as a small wall-clock
//! harness: each benchmark runs a short calibration pass, then a measured
//! pass, and prints mean time per iteration. No statistics machinery, no
//! HTML reports; enough to compare runs by eye and to keep `cargo bench`
//! compiling offline.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl AsRef<str>, mut f: F) {
        run_bench(name.as_ref(), &mut f, DEFAULT_MEASURE);
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl AsRef<str>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.as_ref().to_string(),
            measure: DEFAULT_MEASURE,
        }
    }
}

const DEFAULT_MEASURE: Duration = Duration::from_millis(300);

/// A group of related benchmarks (shares the group name as a prefix).
pub struct BenchmarkGroup {
    name: String,
    measure: Duration,
}

impl BenchmarkGroup {
    /// Criterion's `sample_size` tunes statistics; here it scales the
    /// measurement window (small sizes → heavy per-iteration work).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.measure = Duration::from_millis(30 * n.clamp(1, 100) as u64);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl AsRef<str>, mut f: F) {
        let full = format!("{}/{}", self.name, name.as_ref());
        run_bench(&full, &mut f, self.measure);
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; `iter` runs the measured routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` for the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, f: &mut F, measure: Duration) {
    // `BAP_BENCH_MS` overrides every measurement window — CI smoke runs
    // set it low so `cargo bench` just proves the benches execute.
    let measure = std::env::var("BAP_BENCH_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .map(Duration::from_millis)
        .unwrap_or(measure);
    // Calibration: find an iteration count that fills the window.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= measure / 10 || iters >= 1 << 30 {
            let scale = if b.elapsed.is_zero() {
                10.0
            } else {
                measure.as_secs_f64() / b.elapsed.as_secs_f64()
            };
            iters = ((iters as f64 * scale).ceil() as u64).max(1);
            break;
        }
        iters *= 8;
    }
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.as_secs_f64() / iters as f64;
    println!("{name:<50} {:>12} iters  {}", iters, format_time(per_iter));
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s/iter")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms/iter", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs/iter", seconds * 1e6)
    } else {
        format!("{:.1} ns/iter", seconds * 1e9)
    }
}

/// Collect benchmark functions under one name, as Criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($bench(&mut c);)+
        }
    };
    ($name:ident; config = $cfg:expr; targets = $($bench:path),+ $(,)?) => {
        $crate::criterion_group!($name, $($bench),+);
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_prints() {
        let mut c = Criterion::default();
        let mut count = 0u64;
        c.bench_function("smoke", |b| b.iter(|| count += 1));
        assert!(count > 0);
    }

    #[test]
    fn groups_run_and_finish() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(1);
        let mut ran = false;
        g.bench_function("inner", |b| b.iter(|| ran = true));
        g.finish();
        assert!(ran);
    }
}

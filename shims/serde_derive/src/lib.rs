//! Offline shim of `serde_derive`.
//!
//! Generates impls of the local serde shim's `Serialize`/`Deserialize`
//! traits (a single owned `Value` tree, no format generality), parsing the
//! item with hand-rolled `proc_macro` token walking instead of `syn`. The
//! trick that keeps this small: generated code never needs to *name* field
//! types, because the serde shim exposes type-inferred helpers
//! (`serde::from_field::<T>`), so the parser only records field names,
//! arities, and whether `#[serde(default)]` is present — types are skipped
//! by bracket-depth counting.
//!
//! Supported shapes (all the workspace uses): named structs, tuple structs
//! (newtypes serialize transparently), unit structs, and enums with unit /
//! tuple / struct variants (externally tagged, like real serde). Generic
//! parameters get the trait bound appended, mirroring serde's behaviour.

use proc_macro::{Delimiter, Spacing, TokenStream, TokenTree};

struct Item {
    name: String,
    /// Raw generic-parameter segments, e.g. `["M: Meta", "'a"]`.
    generics: Vec<String>,
    where_clause: String,
    body: Body,
}

enum Body {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    /// `#[serde(default)]` present.
    default: bool,
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

/// Derive the serde shim's `Serialize` for a struct or enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated Serialize impl failed to parse")
}

/// Derive the serde shim's `Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated Deserialize impl failed to parse")
}

// ---- Parsing ----

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&toks, &mut i);
    skip_vis(&toks, &mut i);
    let kw = take_ident(&toks, &mut i);
    let name = take_ident(&toks, &mut i);
    let generics = parse_generics(&toks, &mut i);

    // Optional where-clause before a braced body.
    let mut where_clause = String::new();
    if matches!(&toks.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "where") {
        let start = i;
        while i < toks.len()
            && !matches!(&toks[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Brace)
        {
            i += 1;
        }
        where_clause = stringify_tokens(&toks[start..i]);
    }

    let body = if kw == "enum" {
        let TokenTree::Group(g) = &toks[i] else {
            panic!("serde_derive: enum without a brace body");
        };
        Body::Enum(parse_variants(g.stream()))
    } else {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Body::Unit,
        }
    };

    Item {
        name,
        generics,
        where_clause,
        body,
    }
}

/// Skip `#[...]` attributes; report whether any was `#[serde(default)]`.
fn skip_attrs_check_default(toks: &[TokenTree], i: &mut usize) -> bool {
    let mut default = false;
    while matches!(&toks.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        if let Some(TokenTree::Group(g)) = toks.get(*i + 1) {
            default |= attr_is_serde_default(g.stream());
            *i += 2;
        } else {
            *i += 1;
        }
    }
    default
}

fn skip_attrs(toks: &[TokenTree], i: &mut usize) {
    skip_attrs_check_default(toks, i);
}

fn attr_is_serde_default(attr: TokenStream) -> bool {
    let toks: Vec<TokenTree> = attr.into_iter().collect();
    match (toks.first(), toks.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) if id.to_string() == "serde" => {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(a) if a.to_string() == "default"))
        }
        _ => false,
    }
}

fn skip_vis(toks: &[TokenTree], i: &mut usize) {
    if matches!(&toks.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(&toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

fn take_ident(toks: &[TokenTree], i: &mut usize) -> String {
    match &toks[*i] {
        TokenTree::Ident(id) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde_derive: expected identifier, found `{other}`"),
    }
}

/// Consume `<...>` after the type name; return raw parameter segments split
/// at top-level commas.
fn parse_generics(toks: &[TokenTree], i: &mut usize) -> Vec<String> {
    if !matches!(&toks.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Vec::new();
    }
    *i += 1;
    let mut depth = 1usize;
    let mut segments = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    while *i < toks.len() {
        let t = &toks[*i];
        *i += 1;
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                ',' if depth == 1 => {
                    if !current.is_empty() {
                        segments.push(stringify_tokens(&current));
                        current.clear();
                    }
                    continue;
                }
                _ => {}
            }
        }
        current.push(t.clone());
    }
    if !current.is_empty() {
        segments.push(stringify_tokens(&current));
    }
    segments
}

fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        let default = skip_attrs_check_default(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        skip_vis(&toks, &mut i);
        let name = take_ident(&toks, &mut i);
        // ':'
        i += 1;
        skip_type(&toks, &mut i);
        fields.push(Field { name, default });
    }
    fields
}

/// Skip a type, stopping past the next top-level `,` (or at end of tokens).
/// Angle brackets nest; the `>` of `->` does not close a bracket.
fn skip_type(toks: &[TokenTree], i: &mut usize) {
    let mut depth = 0usize;
    let mut prev_dash = false;
    while *i < toks.len() {
        let t = &toks[*i];
        *i += 1;
        if let TokenTree::Punct(p) = t {
            let c = p.as_char();
            match c {
                '<' => depth += 1,
                '>' if !prev_dash => depth = depth.saturating_sub(1),
                ',' if depth == 0 => return,
                _ => {}
            }
            prev_dash = c == '-' && p.spacing() == Spacing::Joint;
        } else {
            prev_dash = false;
        }
    }
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut count = 0;
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        skip_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        skip_type(&toks, &mut i);
        count += 1;
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = take_ident(&toks, &mut i);
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional discriminant, then the separating comma.
        while i < toks.len() && !matches!(&toks[i], TokenTree::Punct(p) if p.as_char() == ',') {
            i += 1;
        }
        i += 1;
        variants.push(Variant { name, kind });
    }
    variants
}

/// Re-render tokens as source text, honouring joint punctuation so `'a`,
/// `::`, and `->` survive the round trip.
fn stringify_tokens(toks: &[TokenTree]) -> String {
    let mut out = String::new();
    for t in toks {
        out.push_str(&t.to_string());
        match t {
            TokenTree::Punct(p) if p.spacing() == Spacing::Joint => {}
            _ => out.push(' '),
        }
    }
    out.trim_end().to_string()
}

// ---- Generics plumbing ----

/// Build `impl<...>` and `Type<...>` parameter lists, appending `bound` to
/// every type parameter (serde's behaviour for derived impls).
fn generics_strings(item: &Item, bound: &str) -> (String, String) {
    if item.generics.is_empty() {
        return (String::new(), String::new());
    }
    let mut impl_params = Vec::new();
    let mut ty_params = Vec::new();
    for seg in &item.generics {
        let seg = seg.trim();
        let head = seg.split(':').next().unwrap_or(seg).trim().to_string();
        if seg.starts_with('\'') {
            impl_params.push(seg.to_string());
            ty_params.push(head);
        } else if let Some(rest) = seg.strip_prefix("const ") {
            impl_params.push(seg.to_string());
            let name = rest.split(':').next().unwrap_or(rest).trim().to_string();
            ty_params.push(name);
        } else if seg.contains(':') {
            impl_params.push(format!("{seg} + {bound}"));
            ty_params.push(head);
        } else {
            impl_params.push(format!("{seg}: {bound}"));
            ty_params.push(head);
        }
    }
    (
        format!("<{}>", impl_params.join(", ")),
        format!("<{}>", ty_params.join(", ")),
    )
}

// ---- Code generation ----

fn gen_serialize(item: &Item) -> String {
    let (impl_g, ty_g) = generics_strings(item, "::serde::Serialize");
    let name = &item.name;
    let body = match &item.body {
        Body::Named(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{0}\"), ::serde::Serialize::to_value(&self.{0}))",
                        f.name
                    )
                })
                .collect();
            format!("::serde::Value::Object(::std::vec![{}])", pairs.join(", "))
        }
        Body::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", elems.join(", "))
        }
        Body::Unit => "::serde::Value::Null".to_string(),
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "Self::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "Self::{vn}(__f0) => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{vn}\"), ::serde::Serialize::to_value(__f0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> =
                                (0..*n).map(|i| format!("__f{i}")).collect();
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                                .collect();
                            format!(
                                "Self::{vn}({b}) => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{vn}\"), ::serde::Value::Array(::std::vec![{e}]))]),",
                                b = binds.join(", "),
                                e = elems.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let pairs: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{0}\"), ::serde::Serialize::to_value({0}))",
                                        f.name
                                    )
                                })
                                .collect();
                            format!(
                                "Self::{vn} {{ {b} }} => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{vn}\"), ::serde::Value::Object(::std::vec![{p}]))]),",
                                b = binds.join(", "),
                                p = pairs.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    let where_c = &item.where_clause;
    format!(
        "impl{impl_g} ::serde::Serialize for {name}{ty_g} {where_c} {{ \
            fn to_value(&self) -> ::serde::Value {{ {body} }} \
        }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let (impl_g, ty_g) = generics_strings(item, "::serde::Deserialize");
    let name = &item.name;
    let body = match &item.body {
        Body::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    let helper = if f.default {
                        "from_field_or_default"
                    } else {
                        "from_field"
                    };
                    format!("{0}: ::serde::{helper}(v, \"{0}\")?,", f.name)
                })
                .collect();
            format!("::std::result::Result::Ok(Self {{ {} }})", inits.join(" "))
        }
        Body::Tuple(1) => {
            "::std::result::Result::Ok(Self(::serde::Deserialize::from_value(v)?))".to_string()
        }
        Body::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::from_index(v, {i})?"))
                .collect();
            format!("::std::result::Result::Ok(Self({}))", elems.join(", "))
        }
        Body::Unit => "::std::result::Result::Ok(Self)".to_string(),
        Body::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{0}\" => ::std::result::Result::Ok(Self::{0}),", v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vn}\" => ::std::result::Result::Ok(Self::{vn}(::serde::Deserialize::from_value(__inner)?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::from_index(__inner, {i})?"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => ::std::result::Result::Ok(Self::{vn}({})),",
                                elems.join(", ")
                            ))
                        }
                        VariantKind::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    let helper = if f.default {
                                        "from_field_or_default"
                                    } else {
                                        "from_field"
                                    };
                                    format!(
                                        "{0}: ::serde::{helper}(__inner, \"{0}\")?,",
                                        f.name
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => ::std::result::Result::Ok(Self::{vn} {{ {} }}),",
                                inits.join(" ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match v {{ \
                    ::serde::Value::Str(__s) => match __s.as_str() {{ \
                        {unit} \
                        __other => ::std::result::Result::Err(::serde::Error::msg(\
                            ::std::format!(\"unknown variant {{:?}} for {name}\", __other))), \
                    }}, \
                    ::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{ \
                        let (__tag, __inner) = &__pairs[0]; \
                        match __tag.as_str() {{ \
                            {tagged} \
                            __other => ::std::result::Result::Err(::serde::Error::msg(\
                                ::std::format!(\"unknown variant {{:?}} for {name}\", __other))), \
                        }} \
                    }}, \
                    __other => ::std::result::Result::Err(::serde::Error::msg(\
                        ::std::format!(\"expected {name} variant, got {{}}\", __other.kind()))), \
                }}",
                unit = unit_arms.join(" "),
                tagged = tagged_arms.join(" "),
            )
        }
    };
    let where_c = &item.where_clause;
    format!(
        "impl{impl_g} ::serde::Deserialize for {name}{ty_g} {where_c} {{ \
            fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }} \
        }}"
    )
}

//! Offline shim of the `rand` crate.
//!
//! The build environment has no crates.io access, so this crate provides a
//! local, deterministic replacement implementing exactly the API surface the
//! workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] sampling methods (`gen`, `gen_range`, `gen_bool`).
//!
//! The generator is xoshiro256** seeded through SplitMix64 — not the real
//! `StdRng` stream, but the workspace only relies on *per-seed determinism*,
//! never on matching upstream `rand` output bit-for-bit.

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Construct from a `u64` seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from a `Range` via [`Rng::gen_range`].
///
/// The methods are generic over the generator (not `dyn`) so the xoshiro
/// core inlines into sampling loops; through a trait object every
/// `next_u64` was an indirect call, which showed up as several ns per
/// generated address in the workload streams.
pub trait SampleUniform: Copy {
    /// Sample uniformly from `lo..hi` (`hi` exclusive; `lo < hi`).
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Types samplable from the "standard" distribution via [`Rng::gen`]:
/// uniform over the full domain (floats: `[0, 1)`).
pub trait Standard: Sized {
    /// Draw one sample.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Object-safe raw generator core.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    /// Sample a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from `range` (empty ranges panic, as in `rand`).
    fn gen_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// `true` with probability `p` (`0.0..=1.0`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for rand's StdRng).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        // Cross-crate callers sit in sampling loops; without the hint this
        // stays an outlined call and dominates cheap draws like `gen_bool`.
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits → [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as u128) - (lo as u128);
                // Widening-multiply rejection-free mapping; the modulo bias
                // over a 64-bit draw is negligible for simulation purposes.
                let draw = rng.next_u64() as u128;
                lo + ((draw * span) >> 64) as $t
            }
        }
    )*};
}
uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let draw = rng.next_u64() as u128;
                (lo as i128 + ((draw * span) >> 64) as i128) as $t
            }
        }
    )*};
}
uniform_int!(i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "gen_range: empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = r.gen_range(-2.0f64..4.0);
            assert!((-2.0..4.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "{hits}");
    }

    #[test]
    fn unit_floats_cover_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
            lo |= f < 0.1;
            hi |= f > 0.9;
        }
        assert!(lo && hi, "samples span the interval");
    }
}

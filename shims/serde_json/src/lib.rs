//! Offline shim of the `serde_json` crate.
//!
//! Renders the local serde shim's [`Value`] tree to JSON text and parses it
//! back: `to_string`, `to_string_pretty`, `from_str`, and a `json!` macro
//! covering the object/array/expression forms the workspace uses. Numbers
//! keep their integer-ness where possible; non-finite floats serialize as
//! `null` (as real serde_json's `json!` does), which downstream validation
//! treats as corruption.

use std::fmt;

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// JSON error: serialization or parse failure with a short description.
#[derive(Debug)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

/// Serialize `value` to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize `value` to pretty-printed JSON text (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Convert any serializable value into a [`Value`] tree (used by `json!`).
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Parse JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!(
            "trailing characters at byte {} of JSON input",
            p.pos
        )));
    }
    Ok(T::from_value(&v)?)
}

/// Build a [`Value`] from JSON-ish syntax. Supports `null`, objects with
/// literal keys, arrays, and arbitrary serializable expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(::std::vec![
            $((::std::string::String::from($key), $crate::to_value(&$val))),*
        ])
    };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![$($crate::to_value(&$elem)),*])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

// ---- Writer ----

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` keeps a trailing `.0` on integral floats, so the
                // text stays float-typed across a round trip.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- Parser ----

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected {:?} at byte {} of JSON input",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error(format!(
                "unexpected character {:?} at byte {} of JSON input",
                c as char, self.pos
            ))),
            None => Err(Error("unexpected end of JSON input".to_string())),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error(format!(
                        "expected ',' or ']' at byte {} of JSON input",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => {
                    return Err(Error(format!(
                        "expected ',' or '}}' at byte {} of JSON input",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| {
                        Error("unexpected end of JSON input in string escape".to_string())
                    })?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_keyword("\\u") {
                                    return Err(Error(
                                        "unpaired surrogate in JSON string".to_string(),
                                    ));
                                }
                                let lo = self.hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(char::from_u32(code).ok_or_else(|| {
                                Error(format!("invalid unicode escape U+{code:04X}"))
                            })?);
                        }
                        other => {
                            return Err(Error(format!("invalid string escape \\{}", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error("invalid UTF-8 in JSON string".to_string()))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error("unexpected end of JSON input in string".to_string())),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error("truncated \\u escape in JSON string".to_string()));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error("invalid \\u escape".to_string()))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error(format!("invalid \\u escape {hex:?}")))
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".to_string()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error(format!("invalid number {text:?}")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| Error(format!("invalid number {text:?}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_compact() {
        let v = json!({
            "name": "bap",
            "cores": 8u32,
            "ipc": 1.25f64,
            "flags": [true, false],
            "nested": json!({"x": 1u32}),
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_printing_parses_back() {
        let v = json!({"a": [1u32, 2u32], "b": "x"});
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains('\n'));
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn integers_stay_integers_and_floats_stay_floats() {
        assert_eq!(to_string(&Value::Int(3)).unwrap(), "3");
        assert_eq!(to_string(&Value::Float(3.0)).unwrap(), "3.0");
        let back: Value = from_str("3.0").unwrap();
        assert_eq!(back, Value::Float(3.0));
        let back: Value = from_str("3").unwrap();
        assert_eq!(back, Value::Int(3));
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line1\nline2\t\"quoted\" \\ \u{1F600}";
        let text = to_string(&s.to_string()).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn surrogate_pair_parses() {
        let back: String = from_str(r#""😀""#).unwrap();
        assert_eq!(back, "\u{1F600}");
    }

    #[test]
    fn errors_on_garbage() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("12 34").is_err());
        assert!(from_str::<Value>("").is_err());
    }

    #[test]
    fn typed_round_trip_via_text() {
        let xs = vec![1u64, 2, 3];
        let text = to_string(&xs).unwrap();
        let back: Vec<u64> = from_str(&text).unwrap();
        assert_eq!(back, xs);
    }
}

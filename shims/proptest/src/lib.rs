//! Offline shim of the `proptest` crate.
//!
//! Keeps the API surface the workspace tests use — `proptest!`,
//! `prop_oneof!`, `prop_assert!`/`prop_assert_eq!`, `Strategy::prop_map`,
//! `Just`, `any`, range and tuple strategies, `collection::vec`, and
//! `ProptestConfig::with_cases` — on top of a much simpler engine: each
//! test derives a seed from its own name (FNV-1a), generates `cases`
//! random inputs from that deterministic stream, and panics on the first
//! failing case. There is **no shrinking**; failure messages carry the
//! case index, and the fixed seed makes every failure reproducible by
//! just re-running the test.

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Everything tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Test-runner types (`proptest::test_runner::TestCaseError`).
pub mod test_runner {
    use std::fmt;

    /// Why a generated case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The property is violated; the test fails.
        Fail(String),
        /// The input is invalid for this property; the case is skipped.
        Reject(String),
    }

    impl TestCaseError {
        /// A failing verdict with the given reason.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// A rejection (input discarded, case re-drawn).
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "{r}"),
                TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
            }
        }
    }
}

/// Runner configuration; only `cases` is meaningful here.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases generated per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases (matches real proptest's helper).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic random source handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// Seed from a test's fully-qualified name so every test explores a
    /// distinct but reproducible input stream.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name bytes.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    /// Access the underlying RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value from `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Type-erase the strategy (for heterogeneous compositions).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe strategy view used by [`BoxedStrategy`] and `prop_oneof!`.
pub trait DynStrategy<T> {
    /// Draw one value from `rng`.
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<T, S: Strategy<Value = T>> DynStrategy<T> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> T {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Mapped strategy (see [`Strategy::prop_map`]).
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

/// Weighted choice between type-erased strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, Box<dyn DynStrategy<T>>)>,
    total: u32,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms; weights must not all be zero.
    pub fn new(arms: Vec<(u32, Box<dyn DynStrategy<T>>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs at least one nonzero weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.rng().gen_range(0..self.total);
        for (w, arm) in &self.arms {
            if pick < *w {
                return arm.dyn_generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights summed incorrectly")
    }
}

/// Box a strategy arm for [`Union`] (used by `prop_oneof!`).
pub fn __union_arm<T, S: Strategy<Value = T> + 'static>(s: S) -> Box<dyn DynStrategy<T>> {
    Box::new(s)
}

// ---- Range strategies ----

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                if end < <$t>::MAX {
                    rng.rng().gen_range(start..end + 1)
                } else if start > <$t>::MIN {
                    // Shift down one to keep the half-open range in bounds.
                    rng.rng().gen_range(start - 1..end) + 1
                } else {
                    // Full domain.
                    rng.rng().gen()
                }
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.rng().gen_range(self.clone())
    }
}

// ---- Tuple strategies ----

macro_rules! tuple_strategy {
    ($(($($s:ident : $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

// ---- any::<T>() ----

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_via_gen {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.rng().gen()
            }
        }
    )*};
}
arbitrary_via_gen!(bool, u8, u16, u32, u64, f64, f32);

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.rng().gen::<u64>() as usize
    }
}

macro_rules! arbitrary_signed {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.rng().gen::<u64>() as $t
            }
        }
    )*};
}
arbitrary_signed!(i8, i16, i32, i64, isize);

/// Strategy yielding unconstrained values of `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// ---- collection::vec ----

/// `proptest::collection` — only `vec` is provided.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive-min / exclusive-max length specification.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_excl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_excl: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max_excl: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_excl: *r.end() + 1,
            }
        }
    }

    /// Strategy for vectors of values drawn from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors of `element` values with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.rng().gen_range(self.size.min..self.size.max_excl);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---- Macros ----

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `ProptestConfig::cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__config.cases {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(__reason),
                        ) => {
                            ::std::panic!(
                                "property `{}` failed at case {}/{}: {}",
                                stringify!($name),
                                __case + 1,
                                __config.cases,
                                __reason,
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Assert a condition inside a property test (early-returns a failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`): {}",
            stringify!($left), stringify!($right), __l, __r, ::std::format!($($fmt)+)
        );
    }};
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}

/// Discard the current case when its input is invalid for the property.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Weighted or uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![
            $(($weight as u32, $crate::__union_arm($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![
            $((1u32, $crate::__union_arm($strat))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::from_name("ranges");
        for _ in 0..1000 {
            let v = (3u8..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (0usize..=8).generate(&mut rng);
            assert!(w <= 8);
            let f = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn vec_lengths_respect_size_range() {
        let mut rng = crate::TestRng::from_name("vec");
        let exact = crate::collection::vec(0u8..10, 8).generate(&mut rng);
        assert_eq!(exact.len(), 8);
        for _ in 0..100 {
            let v = crate::collection::vec(0u8..10, 1..5).generate(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let strat = prop_oneof![
            2 => Just(0u8),
            1 => Just(1u8),
            1 => 5u8..7,
        ];
        let mut rng = crate::TestRng::from_name("oneof");
        let mut seen = [false; 8];
        for _ in 0..300 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert!(seen[0] && seen[1] && (seen[5] || seen[6]));
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let strat = crate::collection::vec(0u64..1000, 4);
        let a: Vec<u64> = strat.generate(&mut crate::TestRng::from_name("x"));
        let b: Vec<u64> = strat.generate(&mut crate::TestRng::from_name("x"));
        let c: Vec<u64> = strat.generate(&mut crate::TestRng::from_name("y"));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_end_to_end(xs in crate::collection::vec(0u32..100, 1..20), flip in any::<bool>()) {
            prop_assert!(xs.len() < 20);
            let doubled: Vec<u32> = xs.iter().map(|x| x * 2).collect();
            prop_assert_eq!(doubled.len(), xs.len());
            if flip {
                prop_assert!(doubled.iter().all(|&d| d % 2 == 0), "doubling keeps parity");
            }
        }
    }
}

//! Torn-checkpoint robustness for the `bap serve` restart story (tier 1).
//!
//! The serving tier checkpoints to disk (`--checkpoint FILE`) and
//! cold-starts from that file after a crash. A crash can also *tear* the
//! file: truncate it mid-write, flip bits on a dying disk, or leave it
//! empty. The contract under test:
//!
//! * [`DecisionService::restore_from_path`] answers every torn input with
//!   a typed `RecoveryError` — never a panic — and leaves the target
//!   service untouched;
//! * the intact bytes always restore, so the error paths are real
//!   rejections, not blanket refusal;
//! * after a torn *file*, the in-memory recovery ring still reaches a
//!   working rung: the server itself recovers even when the disk copy is
//!   gone.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use bankaware::partitioning::{DecisionService, ServeConfig};
use bankaware::recovery::RecoveryRung;
use bankaware::trace::wire::{RequestKind, ResponseKind, WireCurve, WireRequest};
use proptest::prelude::*;

/// Knee-shaped miss-ratio curves: deterministic in (cores, seed).
fn knee_curves(cores: usize, seed: u64) -> Vec<WireCurve> {
    (0..cores)
        .map(|core| {
            let h = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((core as u64).wrapping_mul(0x0100_0000_01B3));
            let base = 30_000.0 + (h % 90_000) as f64;
            let knee = 2 + ((h >> 17) % 40) as usize;
            let floor = ((h >> 33) % 3_000) as f64;
            let misses = (0..=72)
                .map(|w| {
                    if w >= knee {
                        floor
                    } else {
                        base - (base - floor) * w as f64 / knee as f64
                    }
                })
                .collect();
            WireCurve {
                accesses: base.max(1.0) * 4.0,
                misses,
            }
        })
        .collect()
}

fn req(id: u64, kind: RequestKind) -> WireRequest {
    WireRequest::new(id, kind)
}

/// A service with two warmed sessions — the state every test tears.
fn seeded_service() -> DecisionService {
    let mut svc = DecisionService::new(ServeConfig::default());
    svc.process_batch(&[
        req(
            1,
            RequestKind::Open {
                session: 1,
                cores: 8,
            },
        ),
        req(
            2,
            RequestKind::Open {
                session: 2,
                cores: 16,
            },
        ),
    ]);
    for round in 0..3u64 {
        svc.process_batch(&[
            req(
                10 + round * 2,
                RequestKind::Snapshot {
                    session: 1,
                    curves: knee_curves(8, round),
                },
            ),
            req(
                11 + round * 2,
                RequestKind::Snapshot {
                    session: 2,
                    curves: knee_curves(16, round ^ 0xBEEF),
                },
            ),
        ]);
    }
    svc
}

/// The encoded bytes of the seeded service's checkpoint, computed once —
/// solving six epochs per proptest case would drown the suite.
fn checkpoint_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| seeded_service().checkpoint().encode())
}

/// Write `bytes` to a unique temp file and return its path.
fn write_temp(bytes: &[u8]) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let path =
        std::env::temp_dir().join(format!("bap_torn_checkpoint_{}_{n}.cp", std::process::id()));
    std::fs::write(&path, bytes).expect("temp file writable");
    path
}

/// A service is *untouched* when it still has no sessions and keeps
/// serving: a failed restore must be atomic.
fn assert_untouched_and_serving(svc: &mut DecisionService) {
    assert_eq!(svc.num_sessions(), 0, "failed restore must not leak state");
    let out = svc.process_batch(&[req(
        999,
        RequestKind::Open {
            session: 9,
            cores: 8,
        },
    )]);
    assert!(matches!(out[0].kind, ResponseKind::Opened { .. }));
}

#[test]
fn the_intact_checkpoint_restores() {
    let path = write_temp(checkpoint_bytes());
    let mut svc = DecisionService::new(ServeConfig::default());
    let tick = svc.restore_from_path(&path).expect("intact bytes restore");
    assert_eq!(svc.num_sessions(), 2);
    assert!(tick > 0);
    let _ = std::fs::remove_file(path);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every proper prefix — from the empty file up to one byte short —
    /// is a typed rejection, and the service it was aimed at stays clean.
    #[test]
    fn truncated_checkpoints_fail_typed(frac in 0.0..1.0f64) {
        let bytes = checkpoint_bytes();
        let cut = ((bytes.len() as f64) * frac) as usize;
        prop_assume!(cut < bytes.len());
        let path = write_temp(&bytes[..cut]);
        let mut svc = DecisionService::new(ServeConfig::default());
        let err = svc
            .restore_from_path(&path)
            .expect_err("a proper prefix must never restore");
        prop_assert!(!err.to_string().is_empty(), "errors must describe themselves");
        assert_untouched_and_serving(&mut svc);
        let _ = std::fs::remove_file(path);
    }

    /// A single flipped bit anywhere in the file is caught: the magic is
    /// framing, everything after it is checksummed, and FNV-1a's
    /// per-byte mix is injective, so no lone flip can collide.
    #[test]
    fn bit_flipped_checkpoints_fail_typed(pos in 0.0..1.0f64, bit in 0u8..8) {
        let mut bytes = checkpoint_bytes().to_vec();
        let idx = ((bytes.len() as f64) * pos) as usize;
        prop_assume!(idx < bytes.len());
        bytes[idx] ^= 1 << bit;
        let path = write_temp(&bytes);
        let mut svc = DecisionService::new(ServeConfig::default());
        let err = svc
            .restore_from_path(&path)
            .expect_err("a flipped bit must never restore");
        prop_assert!(!err.to_string().is_empty());
        assert_untouched_and_serving(&mut svc);
        let _ = std::fs::remove_file(path);
    }

    /// Arbitrary garbage files (including JSON-looking ones) are typed
    /// rejections too — the framing check runs before any parsing.
    #[test]
    fn garbage_files_fail_typed(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let path = write_temp(&bytes);
        let mut svc = DecisionService::new(ServeConfig::default());
        let err = svc
            .restore_from_path(&path)
            .expect_err("garbage must never restore");
        prop_assert!(!err.to_string().is_empty());
        assert_untouched_and_serving(&mut svc);
        let _ = std::fs::remove_file(path);
    }
}

/// The full crash story: the disk checkpoint tears, but the server's
/// in-memory recovery ring still reaches a working rung and the service
/// keeps answering the same plans.
#[test]
fn recovery_ladder_survives_a_torn_checkpoint_file() {
    let dir = std::env::temp_dir().join(format!("bap_recovery_ladder_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let file = dir.join("serve.cp");
    let cfg = ServeConfig {
        checkpoint_path: Some(file.clone()),
        ..ServeConfig::default()
    };
    let mut svc = DecisionService::new(cfg);
    svc.process_batch(&[
        req(
            1,
            RequestKind::Open {
                session: 1,
                cores: 8,
            },
        ),
        req(
            2,
            RequestKind::Snapshot {
                session: 1,
                curves: knee_curves(8, 42),
            },
        ),
        req(3, RequestKind::Checkpoint),
    ]);
    let before = svc.process_batch(&[req(4, RequestKind::Plan { session: 1 })]);

    // Tear the disk copy: truncate to half.
    let bytes = std::fs::read(&file).expect("checkpoint file written");
    std::fs::write(&file, &bytes[..bytes.len() / 2]).expect("tear file");

    // Rung 3 (the disk file) is dead — typed, not a panic.
    let mut cold = DecisionService::new(ServeConfig::default());
    assert!(
        cold.restore_from_path(&file).is_err(),
        "torn disk checkpoint must be rejected"
    );

    // But the in-memory ring (rungs 1–2) still carries the day.
    let (rung, tick) = svc.recover().expect("ring checkpoint survives");
    assert_eq!(rung, RecoveryRung::Newest);
    assert_eq!(tick, 1, "the ring checkpoint covered tick 1");
    let after = svc.process_batch(&[req(5, RequestKind::Plan { session: 1 })]);
    assert_eq!(
        before[0].kind, after[0].kind,
        "the recovered service answers the same plan"
    );

    let _ = std::fs::remove_dir_all(dir);
}

/// `save_checkpoint_file` is the durability primitive under both the
/// `--checkpoint` restart story and the replication-log anchor, so its
/// contract is pinned here: the write is atomic (no `.tmp` debris, an
/// existing destination is replaced wholesale, a failed save leaves the
/// old file intact) and what lands on disk reloads bit-exactly. The
/// fsync-before-rename + parent-directory-fsync ordering itself cannot
/// be observed without a crash, but every error path it added must stay
/// typed — a full disk or unwritable directory is a `RecoveryError`,
/// never a panic.
#[test]
fn save_checkpoint_file_is_atomic_and_reloads_bit_exactly() {
    use bankaware::recovery::{load_checkpoint_file, save_checkpoint_file};

    let dir = std::env::temp_dir().join(format!("bap_durable_save_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("serve.cp");

    let cp = seeded_service().checkpoint();
    let written = save_checkpoint_file(&path, &cp).expect("save succeeds");
    assert_eq!(written, cp.encode().len(), "reported size is the payload");
    assert!(
        !path.with_extension("tmp").exists(),
        "the staging file must not survive a successful save"
    );
    let back = load_checkpoint_file(&path).expect("reload");
    assert_eq!(back.encode(), cp.encode(), "round trip is bit-exact");

    // Overwrite in place: a second save replaces the file wholesale.
    let mut svc = seeded_service();
    svc.process_batch(&[req(
        900,
        RequestKind::Snapshot {
            session: 1,
            curves: knee_curves(8, 77),
        },
    )]);
    let cp2 = svc.checkpoint();
    save_checkpoint_file(&path, &cp2).expect("overwrite succeeds");
    assert_eq!(
        load_checkpoint_file(&path).expect("reload").encode(),
        cp2.encode(),
        "the destination was replaced wholesale"
    );

    // An unwritable destination fails typed and leaves the good file.
    let bad = dir.join("no_such_subdir").join("serve.cp");
    assert!(
        save_checkpoint_file(&bad, &cp).is_err(),
        "unwritable destination must be a typed error"
    );
    assert_eq!(
        load_checkpoint_file(&path).expect("survivor").encode(),
        cp2.encode(),
        "a failed save elsewhere must not disturb the existing file"
    );

    let _ = std::fs::remove_dir_all(dir);
}

//! Property tests over the decision-trace event stream.
//!
//! Whatever the workload curves and fault campaign, a trace must obey:
//!
//! * sequence numbers strictly increase, epoch indices never decrease;
//! * every `PlanInstalled` is preceded by an `AssignmentComputed` with the
//!   identical per-core way vector (the install never invents capacity);
//! * rule events only ever reference banks and cores that exist in the
//!   topology, and rejections name banks of the right kind (Rule 1 governs
//!   Center banks, Rules 2–3 govern Local banks).

use bankaware::fault::FaultConfig;
use bankaware::msa::MissRatioCurve;
use bankaware::partitioning::{try_bank_aware_partition_traced, BankAwareConfig, Policy};
use bankaware::system::{SimOptions, System};
use bankaware::trace::{EventKind, TraceEvent, Tracer};
use bankaware::types::{DegradedTopology, SystemConfig, Topology};
use bankaware::workloads::spec_by_name;
use proptest::prelude::*;

const NUM_CORES: usize = 8;
const NUM_BANKS: usize = 16;

/// Sequence numbers strictly increase; epochs never run backwards.
fn check_stream_order(events: &[TraceEvent]) -> Result<(), TestCaseError> {
    for pair in events.windows(2) {
        prop_assert!(
            pair[1].seq > pair[0].seq,
            "seq {} does not follow {}",
            pair[1].seq,
            pair[0].seq
        );
        prop_assert!(
            pair[1].epoch >= pair[0].epoch,
            "epoch ran backwards at seq {}",
            pair[1].seq
        );
    }
    Ok(())
}

/// Every install matches the most recent computed assignment.
fn check_installs_follow_assignments(events: &[TraceEvent]) -> Result<(), TestCaseError> {
    let mut last_assignment: Option<&Vec<usize>> = None;
    for ev in events {
        match &ev.kind {
            EventKind::AssignmentComputed { ways, .. } => last_assignment = Some(ways),
            EventKind::PlanInstalled { ways, total_ways } => {
                let expected = last_assignment.ok_or_else(|| {
                    TestCaseError::fail(format!(
                        "seq {}: PlanInstalled with no prior AssignmentComputed",
                        ev.seq
                    ))
                })?;
                prop_assert_eq!(
                    ways,
                    expected,
                    "seq {}: installed ways diverge from the computed assignment",
                    ev.seq
                );
                prop_assert_eq!(ways.iter().sum::<usize>(), *total_ways);
            }
            _ => {}
        }
    }
    Ok(())
}

/// Rule events stay inside the machine: valid rule numbers, existing cores
/// and banks, and bank kinds matching the rule (baseline floorplan: Local
/// banks 0..8 in front of their cores, Center banks 8..16).
fn check_rule_events_in_topology(events: &[TraceEvent]) -> Result<(), TestCaseError> {
    for ev in events {
        let (rule, core, bank, rejected) = match &ev.kind {
            EventKind::RuleApplied { rule, core, bank } => (*rule, *core, *bank, false),
            EventKind::RuleRejected {
                rule, core, bank, ..
            } => (*rule, *core, *bank, true),
            EventKind::CenterGrant { core, bank, .. } => (1, *core, *bank, false),
            EventKind::ShareTaken { core, bank, .. } => (3, *core, *bank, false),
            _ => continue,
        };
        prop_assert!((1..=3).contains(&rule), "seq {}: rule {rule}", ev.seq);
        prop_assert!(core < NUM_CORES, "seq {}: core{core} out of range", ev.seq);
        prop_assert!(bank < NUM_BANKS, "seq {}: bank{bank} out of range", ev.seq);
        if rule == 1 {
            prop_assert!(
                (NUM_CORES..NUM_BANKS).contains(&bank),
                "seq {}: rule 1 {} names Local bank{bank}",
                ev.seq,
                if rejected { "rejection" } else { "grant" },
            );
        } else {
            prop_assert!(
                bank < NUM_CORES,
                "seq {}: rule {rule} event names Center bank{bank}",
                ev.seq
            );
        }
    }
    Ok(())
}

/// Random monotone miss curves.
fn curve_strategy() -> impl Strategy<Value = MissRatioCurve> {
    (
        proptest::collection::vec(0.0f64..500.0, 72),
        10_000.0f64..100_000.0,
    )
        .prop_map(|(drops, base)| {
            let mut misses = vec![base];
            for d in drops {
                let last = *misses.last().expect("non-empty");
                misses.push((last - d).max(0.0));
            }
            MissRatioCurve::from_misses(misses, base)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The solver's own event stream obeys every invariant on random
    /// curve sets, and its closing assignment matches the emitted plan.
    #[test]
    fn solver_traces_stay_inside_the_machine(
        curves in proptest::collection::vec(curve_strategy(), NUM_CORES)
    ) {
        let machine = DegradedTopology::healthy(Topology::baseline());
        let tracer = Tracer::ring();
        let plan = try_bank_aware_partition_traced(
            &curves, &machine, 8, &BankAwareConfig::default(), &tracer,
        );
        prop_assert!(plan.is_ok(), "healthy solve cannot fail: {:?}", plan.err());
        let plan = plan.expect("checked");
        let events = tracer.drain_events();
        check_stream_order(&events)?;
        check_rule_events_in_topology(&events)?;
        // The closing AssignmentComputed is the plan, exactly.
        let closing = events.iter().rev().find_map(|ev| match &ev.kind {
            EventKind::AssignmentComputed { policy, ways } if policy == "bank_aware" => {
                Some(ways.clone())
            }
            _ => None,
        });
        let expected: Vec<usize> = (0..NUM_CORES)
            .map(|c| plan.ways_of(bankaware::types::CoreId(c as u16)))
            .collect();
        prop_assert_eq!(closing, Some(expected));
    }
}

proptest! {
    // Full-system runs are expensive; a handful of cases over a wide seed
    // space still exercises every fault path (the campaign probabilities
    // below make drops, corruptions and bank losses near-certain per run).
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// End-to-end: traced simulator runs under a randomized fault campaign
    /// keep every stream invariant, including plan installs matching their
    /// assignments across the degradation ladder.
    #[test]
    fn system_traces_hold_invariants_under_faults(
        seed in 0u64..1_000_000,
        bank_offline_prob in 0.0f64..0.3,
        epoch_drop_prob in 0.0f64..0.3,
        curve_corruption_prob in 0.0f64..0.5,
        forced_bank in 0u16..16,
    ) {
        let mut opts = SimOptions::new(SystemConfig::scaled(64), Policy::BankAware);
        opts.config.epoch_cycles = 15_000;
        opts.warmup_instructions = 20_000;
        opts.measure_instructions = 60_000;
        opts.seed = seed;
        opts.fault = Some(FaultConfig {
            seed,
            bank_offline_prob,
            bank_repair_prob: 0.3,
            max_offline_banks: 3,
            epoch_drop_prob,
            curve_corruption_prob,
            forced_offline: vec![(1, forced_bank)],
        });
        let specs: Vec<_> = [
            "bzip2", "twolf", "facerec", "mgrid", "art", "swim", "mcf", "sixtrack",
        ]
        .iter()
        .map(|n| spec_by_name(n).expect("catalog"))
        .collect();
        let tracer = Tracer::ring();
        let mut system = System::new(opts, specs);
        system.set_tracer(tracer.clone());
        let result = system.run();
        let events = tracer.drain_events();
        prop_assert!(!events.is_empty(), "traced run emits events");
        check_stream_order(&events)?;
        check_installs_follow_assignments(&events)?;
        check_rule_events_in_topology(&events)?;
        // The summary's counters agree with the stream it describes.
        let summary = result.trace.expect("traced run carries a summary");
        let installs = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::PlanInstalled { .. }))
            .count() as u64;
        prop_assert_eq!(summary.plans_installed, installs);
        let rejections = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::RuleRejected { .. }))
            .count() as u64;
        prop_assert_eq!(summary.rules_rejected, rejections);
    }
}

//! End-to-end integration tests across the whole stack: workload
//! generation → core timing → DNUCA L2 → NoC → DRAM → MSA profiling →
//! dynamic bank-aware repartitioning.

use bankaware::partitioning::Policy;
use bankaware::system::{SimOptions, System};
use bankaware::types::{CoreId, SystemConfig};
use bankaware::workloads::spec_by_name;

fn opts(policy: Policy) -> SimOptions {
    let mut o = SimOptions::new(SystemConfig::scaled(32), policy);
    o.warmup_instructions = 120_000;
    o.measure_instructions = 250_000;
    o.config.epoch_cycles = 800_000;
    o
}

/// A mix with a polluter, deep victims and small workloads — the structure
/// the paper's argument rests on.
fn thrash_mix() -> Vec<bankaware::workloads::WorkloadSpec> {
    [
        "mcf", "twolf", "art", "sixtrack", "gcc", "gap", "vpr", "eon",
    ]
    .iter()
    .map(|n| spec_by_name(n).expect("catalog"))
    .collect()
}

#[test]
fn policy_ordering_matches_the_paper() {
    let none = System::new(opts(Policy::NoPartition), thrash_mix()).run();
    let equal = System::new(opts(Policy::Equal), thrash_mix()).run();
    let ba = System::new(opts(Policy::BankAware), thrash_mix()).run();

    // Fig. 8 ordering: partitioning removes misses; bank-aware beats equal.
    assert!(
        equal.total_l2_misses() < none.total_l2_misses(),
        "equal {} vs none {}",
        equal.total_l2_misses(),
        none.total_l2_misses()
    );
    assert!(
        ba.total_l2_misses() < equal.total_l2_misses(),
        "bank-aware {} vs equal {}",
        ba.total_l2_misses(),
        equal.total_l2_misses()
    );
    // Fig. 9 ordering: the same holds for CPI.
    assert!(ba.mean_cpi() < equal.mean_cpi());
    assert!(equal.mean_cpi() < none.mean_cpi());
}

#[test]
fn bank_aware_assignment_tracks_appetite() {
    let r = System::new(opts(Policy::BankAware), thrash_mix()).run();
    let plan = r.final_plan.expect("bank-aware installs a plan");
    let ways = |c: u16| plan.ways_of(CoreId(c));
    // twolf (deep elastic reuse) must hold more capacity than eon (tiny).
    assert!(ways(1) > ways(7), "twolf {} vs eon {}", ways(1), ways(7));
    // Everyone keeps something; the whole cache is assigned.
    for c in 0..8 {
        assert!(ways(c) >= 1);
    }
    assert_eq!(plan.total_ways_used(), 128);
}

#[test]
fn whole_stack_is_deterministic() {
    let a = System::new(opts(Policy::BankAware), thrash_mix()).run();
    let b = System::new(opts(Policy::BankAware), thrash_mix()).run();
    assert_eq!(a.total_l2_misses(), b.total_l2_misses());
    assert_eq!(a.l2.migrations, b.l2.migrations);
    assert_eq!(
        a.per_core.iter().map(|c| c.cycles).collect::<Vec<_>>(),
        b.per_core.iter().map(|c| c.cycles).collect::<Vec<_>>()
    );
    assert_eq!(a.final_plan, b.final_plan);
}

#[test]
fn seeds_change_outcomes_but_not_structure() {
    let a = System::new(opts(Policy::BankAware), thrash_mix()).run();
    let mut o = opts(Policy::BankAware);
    o.seed = 99;
    let b = System::new(o, thrash_mix()).run();
    assert_ne!(
        a.total_l2_misses(),
        b.total_l2_misses(),
        "different seeds differ"
    );
    // But the structural outcome (a valid full plan) holds for any seed.
    let plan = b.final_plan.expect("plan");
    assert_eq!(plan.total_ways_used(), 128);
    plan.validate().expect("valid plan");
}

#[test]
fn epochs_fire_in_proportion_to_cycles() {
    let r = System::new(opts(Policy::BankAware), thrash_mix()).run();
    assert!(
        r.epochs >= 1,
        "at least one measurement epoch, got {}",
        r.epochs
    );
    assert!(r.epochs < 100, "epoch cadence sane, got {}", r.epochs);
}

#[test]
fn noc_and_dram_see_traffic() {
    let r = System::new(opts(Policy::NoPartition), thrash_mix()).run();
    assert!(r.noc.requests > 0);
    assert!(r.dram.requests > 0);
    // NUCA latencies stay in the configured band on average.
    let avg = r.noc.avg_latency();
    assert!((10.0..=90.0).contains(&avg), "avg NoC latency {avg}");
}

#[test]
fn shared_segment_exercises_moesi_end_to_end() {
    let mut o = opts(Policy::BankAware);
    o.shared_fraction = 0.15;
    o.shared_blocks = 512;
    let r = System::new(o, thrash_mix()).run();
    assert!(r.coherence.transactions > 0);
    assert!(
        r.coherence.invalidations > 0,
        "writes to shared data invalidate"
    );
}

//! Trace determinism: identical inputs must yield byte-identical JSONL.
//!
//! The trace's sequence numbers are logical, not wall-clock, and the
//! profiling pipeline emits its events *after* the batch completes in
//! input order — so neither rayon's scheduling nor run-to-run timing may
//! leave a fingerprint in the ledger.

use bankaware::msa::ProfilerConfig;
use bankaware::partitioning::Policy;
use bankaware::system::{
    profile_workloads_serial_traced, profile_workloads_traced, SimOptions, System,
};
use bankaware::trace::{parse_jsonl, Tracer};
use bankaware::types::SystemConfig;
use bankaware::workloads::{spec_by_name, WorkloadSpec};

fn mix(names: &[&str]) -> Vec<WorkloadSpec> {
    names
        .iter()
        .map(|n| spec_by_name(n).expect("catalog"))
        .collect()
}

#[test]
fn parallel_and_serial_profiling_traces_are_byte_identical() {
    // More workloads than most hosts have cores, with visibly uneven
    // per-workload cost, so the parallel scheduler genuinely reorders
    // execution — the emitted ledger must not care.
    let specs = mix(&["eon", "mcf", "art", "sixtrack", "bzip2", "gcc"]);
    let cfg = SystemConfig::scaled(64);
    let pcfg = ProfilerConfig::reference(cfg.l2_bank_sets(), 72);

    let par_tracer = Tracer::jsonl(false);
    let par_curves = profile_workloads_traced(&specs, &cfg, pcfg, 500_000, 42, &par_tracer);
    let ser_tracer = Tracer::jsonl(false);
    let ser_curves = profile_workloads_serial_traced(&specs, &cfg, pcfg, 500_000, 42, &ser_tracer);

    assert_eq!(par_curves, ser_curves, "curves are scheduling-independent");
    let par = par_tracer.take_output().expect("jsonl buffered");
    let ser = ser_tracer.take_output().expect("jsonl buffered");
    assert!(!par.is_empty(), "traced profiling emits events");
    assert_eq!(par, ser, "byte-identical JSONL across serial and rayon");
    // And the shared stream is schema-valid.
    let events = parse_jsonl(&par).expect("valid trace");
    assert_eq!(
        events.len(),
        2 * specs.len(),
        "one WorkloadProfiled + one CurveSnapshot per workload"
    );
}

#[test]
fn repeated_profiling_runs_trace_identically() {
    let specs = mix(&["swim", "vpr", "gap"]);
    let cfg = SystemConfig::scaled(64);
    let pcfg = ProfilerConfig::reference(cfg.l2_bank_sets(), 72);
    let outputs: Vec<String> = (0..2)
        .map(|_| {
            let tracer = Tracer::jsonl(false);
            profile_workloads_traced(&specs, &cfg, pcfg, 300_000, 7, &tracer);
            tracer.take_output().expect("jsonl buffered")
        })
        .collect();
    assert_eq!(outputs[0], outputs[1]);
}

#[test]
fn full_system_runs_trace_identically_given_a_seed() {
    let run = || {
        let mut opts = SimOptions::new(SystemConfig::scaled(64), Policy::BankAware);
        opts.config.epoch_cycles = 20_000;
        opts.warmup_instructions = 30_000;
        opts.measure_instructions = 80_000;
        opts.seed = 11;
        let specs = mix(&[
            "bzip2", "twolf", "facerec", "mgrid", "art", "swim", "mcf", "sixtrack",
        ]);
        let tracer = Tracer::jsonl(false);
        let mut system = System::new(opts, specs);
        system.set_tracer(tracer.clone());
        let result = system.run();
        (tracer.take_output().expect("jsonl buffered"), result)
    };
    let (a, ra) = run();
    let (b, rb) = run();
    assert!(!a.is_empty(), "traced run emits events");
    assert_eq!(a, b, "byte-identical JSONL for identical seeds");
    assert_eq!(ra.trace, rb.trace, "identical decision summaries");
    let summary = ra.trace.expect("traced run carries a summary");
    assert!(summary.epochs >= 1, "epoch boundaries were traced");
    assert!(summary.plans_installed >= 1, "plan installs were traced");
    parse_jsonl(&a).expect("system trace is schema-valid");
}

#[test]
fn untraced_runs_carry_no_summary() {
    let mut opts = SimOptions::new(SystemConfig::scaled(64), Policy::BankAware);
    opts.config.epoch_cycles = 20_000;
    opts.warmup_instructions = 20_000;
    opts.measure_instructions = 40_000;
    let specs = mix(&[
        "bzip2", "twolf", "facerec", "mgrid", "art", "swim", "mcf", "sixtrack",
    ]);
    let result = System::new(opts, specs).run();
    assert!(result.trace.is_none(), "tracing is strictly opt-in");
}

//! Whole-catalogue consistency: every analogue's *measured* behaviour must
//! match its specification's analytic predictions — access rates, write
//! mix and L2 pressure. Catches calibration drift whenever the catalogue
//! or the generator changes.

use bankaware::cpu::L1Cache;
use bankaware::types::SystemConfig;
use bankaware::workloads::{all_workloads, AddressStream};

#[test]
fn every_analogue_matches_its_spec_rates() {
    // Scale 8 keeps the L1 large enough (128 blocks) to hold each
    // analogue's L1-resident component, as the full-size machine would.
    let cfg = SystemConfig::scaled(8);
    let blocks_per_way = cfg.l2_bank_sets() as u64;
    for spec in all_workloads() {
        let mut stream = AddressStream::new(spec.clone(), blocks_per_way, 1, 1234);
        let mut l1 = L1Cache::new(cfg.l1);
        let (mut insts, mut mems, mut writes, mut l2_accesses) = (0u64, 0u64, 0u64, 0u64);
        while insts < 600_000 {
            let op = stream.next().expect("infinite");
            insts += op.instructions();
            if let Some(addr) = op.addr() {
                mems += 1;
                if op.is_store() {
                    writes += 1;
                }
                let block = addr.block();
                if !l1.access(block, op.is_store()) {
                    l1.fill(block, op.is_store());
                    l2_accesses += 1;
                }
            }
        }
        let name = &spec.name;

        let mem_frac = mems as f64 / insts as f64;
        assert!(
            (mem_frac - spec.mem_fraction).abs() < 0.02,
            "{name}: measured mem fraction {mem_frac:.3} vs spec {:.3}",
            spec.mem_fraction
        );

        let write_frac = writes as f64 / mems as f64;
        assert!(
            (write_frac - spec.write_fraction).abs() < 0.03,
            "{name}: measured write fraction {write_frac:.3} vs spec {:.3}",
            spec.write_fraction
        );

        // L2 pressure: measured accesses-per-kilo-instruction within a
        // factor band of the analytic prediction. The band is generous
        // upward because every deep access churns the L1 (it evicts an
        // L1-resident block whose next touch then also reaches the L2) —
        // an amplification the closed form deliberately ignores.
        let measured_apki = l2_accesses as f64 * 1000.0 / insts as f64;
        let predicted_apki = spec.l2_apki(0.5);
        assert!(
            measured_apki > 0.5 * predicted_apki && measured_apki < 4.0 * predicted_apki + 12.0,
            "{name}: measured L2 APKI {measured_apki:.1} vs predicted {predicted_apki:.1}"
        );
    }
}

//! QoS tier: SLO admission, WCL-bound compliance and behaviour neutrality.
//!
//! The contracts under test:
//!
//! * an admitted core's measured per-epoch worst demand latency never
//!   exceeds the analytic WCL bound published for that epoch — on healthy
//!   runs and across random bank-fault campaigns (the property test);
//! * every installed plan honours an admitted core's capacity floor;
//! * the tier is behaviour-neutral when disabled: a run with all-`None`
//!   SLO declarations is byte-identical to one with the default (absent)
//!   QoS configuration, and leaves no QoS footprint in the result.

use bankaware::fault::FaultConfig;
use bankaware::partitioning::Policy;
use bankaware::system::{RunResult, SimOptions, System};
use bankaware::types::{CoreId, QosConfig, RegulatorConfig, SloSpec, SystemConfig};
use bankaware::workloads::{spec_by_name, WorkloadSpec};
use proptest::prelude::*;

/// The Fig. 7 workload mix at quick detailed-run budgets.
const MIX: [&str; 8] = [
    "mcf", "twolf", "art", "sixtrack", "gcc", "gap", "vpr", "eon",
];

fn mix() -> Vec<WorkloadSpec> {
    MIX.iter()
        .map(|n| spec_by_name(n).expect("catalog"))
        .collect()
}

fn opts() -> SimOptions {
    let mut o = SimOptions::new(SystemConfig::scaled(64), Policy::BankAware);
    o.config.epoch_cycles = 20_000;
    o.warmup_instructions = 60_000;
    o.measure_instructions = 150_000;
    o.lookup_isolation = true;
    o.seed = 42;
    o
}

/// SLOs on cores 0 and 1 (capacity floors, generous latency ceilings) with
/// both regulators armed — the standard declarations of this tier's tests.
fn qos() -> QosConfig {
    QosConfig::default()
        .with_slo(
            0,
            SloSpec {
                max_wcl_cycles: 60_000,
                min_ways: 20,
                bandwidth_floor: 16,
            },
        )
        .with_slo(
            1,
            SloSpec {
                max_wcl_cycles: 60_000,
                min_ways: 12,
                bandwidth_floor: 16,
            },
        )
        .with_noc_regulator(RegulatorConfig::per_period(192, 2_000))
        .with_dram_regulator(RegulatorConfig::per_period(96, 2_000))
}

/// Every (epoch, core) pair that carried an admitted bound must have
/// measured at or below it. Returns how many pairs were checked.
fn assert_compliant(r: &RunResult) -> usize {
    assert_eq!(
        r.worst_latency_history.len(),
        r.slo_bound_history.len(),
        "histories stay aligned"
    );
    let mut checked = 0;
    for (epoch, (w_row, b_row)) in r
        .worst_latency_history
        .iter()
        .zip(&r.slo_bound_history)
        .enumerate()
    {
        for (c, b) in b_row.iter().enumerate() {
            let Some(bound) = b else { continue };
            checked += 1;
            assert!(
                w_row[c] <= *bound,
                "epoch {epoch}: core {c} measured worst {} exceeds admitted bound {bound}",
                w_row[c]
            );
        }
    }
    checked
}

#[test]
fn admitted_cores_never_exceed_their_bound_on_a_healthy_run() {
    let mut o = opts();
    o.qos = qos();
    let r = System::new(o, mix()).run();
    let checked = assert_compliant(&r);
    assert!(checked > 0, "at least one admitted (epoch, core) pair");
    // Core 0's declarations were feasible the whole run.
    assert!(
        r.slo_bound_history.iter().all(|row| row[0].is_some()),
        "core 0 stays admitted on a healthy machine"
    );
    // The capacity floor shows up in the installed plan.
    let plan = r.final_plan.expect("partitioned run");
    assert!(plan.ways_of(CoreId(0)) >= 20, "{plan}");
    assert!(plan.ways_of(CoreId(1)) >= 12, "{plan}");
}

#[test]
fn slo_cost_lands_on_best_effort_cores() {
    let mut o = opts();
    o.qos = qos();
    let r = System::new(o, mix()).run();
    assert!(
        !r.core_degrades.is_zero(),
        "admitted floors must demote someone: {:?}",
        r.core_degrades
    );
    // The admitted cores' floors were never the ones stripped below spec:
    // every demotion recorded against core 0 still left it at or above its
    // floor (checked through the final plan above and the guard each epoch).
    assert!(r.fault.slo_enforcements > 0, "enforcement engaged");
}

#[test]
fn all_none_slos_are_byte_identical_to_no_qos() {
    let baseline = System::new(opts(), mix()).run();
    let mut o = opts();
    // Declaring *no* SLO per core and arming no regulator is the disabled
    // tier — bit-for-bit the pre-QoS behaviour.
    o.qos = QosConfig {
        slos: vec![None; 8],
        noc_regulator: None,
        dram_regulator: None,
    };
    let r = System::new(o, mix()).run();
    assert_eq!(r.epoch_history, baseline.epoch_history);
    assert_eq!(r.final_plan, baseline.final_plan);
    assert_eq!(r.total_l2_misses(), baseline.total_l2_misses());
    for (a, b) in r.per_core.iter().zip(&baseline.per_core) {
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.instructions, b.instructions);
        assert_eq!(a.l2, b.l2);
        assert_eq!(a.l2_latency_sum, b.l2_latency_sum);
    }
    // And no QoS footprint in either result.
    for x in [&r, &baseline] {
        assert!(x.worst_latency_history.is_empty());
        assert!(x.slo_bound_history.is_empty());
        assert!(x.core_degrades.is_zero());
        assert_eq!(x.fault.slo_enforcements, 0);
        assert_eq!(x.fault.slo_rejections, 0);
    }
}

proptest! {
    // Full-system runs are expensive; a handful of cases still crosses the
    // bound property with every fault class (bank loss/repair, dropped
    // epochs, corrupted curves are near-certain per run at these odds).
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn admitted_bounds_hold_across_random_fault_campaigns(
        seed in 0u64..1_000_000,
        bank_offline_prob in 0.0f64..0.2,
        epoch_drop_prob in 0.0f64..0.3,
        curve_corruption_prob in 0.0f64..0.5,
        forced_bank in 0u16..16,
    ) {
        let mut o = opts();
        o.seed = seed;
        o.qos = qos();
        o.fault = Some(FaultConfig {
            seed,
            bank_offline_prob,
            bank_repair_prob: 0.3,
            max_offline_banks: 2,
            epoch_drop_prob,
            curve_corruption_prob,
            forced_offline: vec![(1, forced_bank)],
        });
        let r = System::new(o, mix()).run();
        let checked = assert_compliant(&r);
        prop_assert!(checked > 0, "at least one admitted (epoch, core) pair");
    }
}

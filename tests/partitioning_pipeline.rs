//! Integration of the partitioning pipeline: stand-alone MSA profiles →
//! miss-ratio curves → assignment algorithms → physical plan → enforced
//! behaviour in the DNUCA L2.

use bankaware::cache::{AccessKind, AggregationScheme, DnucaL2};
use bankaware::msa::ProfilerConfig;
use bankaware::partitioning::bank_aware::validate_bank_rules;
use bankaware::partitioning::{bank_aware_partition, unrestricted_partition, BankAwareConfig};
use bankaware::system::profile_workloads;
use bankaware::types::{BlockAddr, CoreId, SystemConfig, Topology};
use bankaware::workloads::spec_by_name;

fn curves() -> Vec<bankaware::msa::MissRatioCurve> {
    let cfg = SystemConfig::scaled(64);
    let specs: Vec<_> = [
        "mcf", "twolf", "art", "sixtrack", "gcc", "gap", "vpr", "eon",
    ]
    .iter()
    .map(|n| spec_by_name(n).expect("catalog"))
    .collect();
    let pcfg = ProfilerConfig::reference(cfg.l2_bank_sets(), 72);
    profile_workloads(&specs, &cfg, pcfg, 400_000, 11)
}

#[test]
fn profiles_feed_both_algorithms_consistently() {
    let curves = curves();
    let topo = Topology::baseline();

    let unres = unrestricted_partition(&curves, 128, 1, 72);
    let plan = bank_aware_partition(&curves, &topo, 8, &BankAwareConfig::default());
    validate_bank_rules(&plan, &topo).expect("physical rules hold");

    // Both algorithms agree on the big picture: the deep-reuse core (twolf,
    // index 1) ranks near the top in both assignments.
    let ba: Vec<usize> = (0..8).map(|c| plan.ways_of(CoreId(c as u16))).collect();
    assert!(unres[1] >= 24, "unrestricted twolf share: {unres:?}");
    assert!(ba[1] >= 24, "bank-aware twolf share: {ba:?}");
    // And the restricted projection can never beat the unrestricted one.
    let project =
        |alloc: &[usize]| -> f64 { curves.iter().zip(alloc).map(|(c, &w)| c.misses_at(w)).sum() };
    assert!(project(&unres) <= project(&ba) * 1.001);
}

#[test]
fn plan_enforcement_isolates_partitions_under_traffic() {
    let curves = curves();
    let topo = Topology::baseline();
    let plan = bank_aware_partition(&curves, &topo, 8, &BankAwareConfig::default());

    let cfg = SystemConfig::scaled(64);
    let mut l2 = DnucaL2::new(cfg.l2.num_banks, cfg.l2.bank, 8);
    l2.apply_plan(plan.clone(), AggregationScheme::Parallel);

    // Core 7 (eon, small share) parks a working set sized to its partition.
    let eon_ways = plan.ways_of(CoreId(7));
    let eon_blocks = (eon_ways * cfg.l2_bank_sets() / 2) as u64;
    let eon_block = |i: u64| BlockAddr((7 << 50) | i);
    for i in 0..eon_blocks {
        l2.access(eon_block(i), CoreId(7), AccessKind::Read);
    }
    // Core 0 (mcf) streams far more than the whole cache.
    for i in 0..200_000u64 {
        l2.access(BlockAddr((1 << 50) | i), CoreId(0), AccessKind::Read);
    }
    // Core 7 still hits its working set: isolation held.
    let mut hits = 0;
    for i in 0..eon_blocks {
        if l2.access(eon_block(i), CoreId(7), AccessKind::Read).hit {
            hits += 1;
        }
    }
    let ratio = hits as f64 / eon_blocks as f64;
    assert!(
        ratio > 0.9,
        "partition isolation: {ratio:.2} of eon's set survived"
    );
}

#[test]
fn curve_projection_predicts_isolated_miss_ratio() {
    // The MSA curve projected at W ways must predict the measured miss
    // ratio of the same workload running alone in a W-way partition.
    let cfg = SystemConfig::scaled(64);
    let spec = spec_by_name("vpr").expect("catalog");
    let pcfg = ProfilerConfig::reference(cfg.l2_bank_sets(), 72);
    let curve = profile_workloads(std::slice::from_ref(&spec), &cfg, pcfg, 400_000, 3).remove(0);

    // Simulate vpr alone with a 16-way partition (2 full banks).
    use bankaware::partitioning::Policy;
    use bankaware::system::{SimOptions, System};
    let mut opts = SimOptions::new(cfg, Policy::Equal);
    opts.warmup_instructions = 150_000;
    opts.measure_instructions = 250_000;
    let mix: Vec<_> = std::iter::once(spec)
        .chain(["eon"; 7].iter().map(|n| spec_by_name(n).unwrap()))
        .collect();
    let r = System::new(opts, mix).run();
    let measured = r.per_core[0].l2.miss_ratio();
    let projected = curve.miss_ratio_at(16);
    assert!(
        (measured - projected).abs() < 0.12,
        "measured {measured:.3} vs projected {projected:.3}"
    );
}

//! Crash-point exhaustiveness for the checkpoint/restore subsystem.
//!
//! The contract under test: a run killed at *any* epoch boundary and
//! brought back from the checkpoint taken there converges to results
//! byte-identical to the uninterrupted run — same installed plans at every
//! boundary, same final plan, same per-core statistics. The first test
//! proves it at every single boundary of a quick Fig. 7-mix run; the
//! property test interleaves random crash points with random PR 1 fault
//! campaigns (the injector's schedule is keyed on the checkpointed epoch
//! index, so faults replay identically across a restore).

use bankaware::fault::FaultConfig;
use bankaware::partitioning::Policy;
use bankaware::recovery::Checkpoint;
use bankaware::system::{EpochControl, RunOutcome, RunResult, SimOptions, System};
use bankaware::types::SystemConfig;
use bankaware::workloads::{spec_by_name, WorkloadSpec};
use proptest::prelude::*;

/// The Fig. 7 workload mix at quick detailed-run budgets.
const MIX: [&str; 8] = [
    "mcf", "twolf", "art", "sixtrack", "gcc", "gap", "vpr", "eon",
];

fn mix() -> Vec<WorkloadSpec> {
    MIX.iter()
        .map(|n| spec_by_name(n).expect("catalog"))
        .collect()
}

fn opts() -> SimOptions {
    let mut o = SimOptions::new(SystemConfig::scaled(64), Policy::BankAware);
    o.config.epoch_cycles = 100_000;
    o.warmup_instructions = 40_000;
    o.measure_instructions = 100_000;
    o.seed = 42;
    o
}

/// The aggregates a restore must leave unchanged.
fn assert_identical(resumed: &RunResult, reference: &RunResult) {
    assert_eq!(resumed.epoch_history, reference.epoch_history);
    assert_eq!(resumed.final_plan, reference.final_plan);
    assert_eq!(resumed.epochs, reference.epochs);
    assert_eq!(resumed.total_l2_misses(), reference.total_l2_misses());
    assert_eq!(resumed.total_l2_accesses(), reference.total_l2_accesses());
    for (a, b) in resumed.per_core.iter().zip(&reference.per_core) {
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.instructions, b.instructions);
        assert_eq!(a.l2, b.l2);
        assert_eq!(a.l2_latency_sum, b.l2_latency_sum);
    }
}

/// Kill-and-restore at *every* epoch boundary of the run, warm-up
/// included: each checkpoint, round-tripped through its encoded byte form,
/// resumes to the uninterrupted run's exact aggregates.
#[test]
fn every_crash_point_restores_to_identical_aggregates() {
    let reference = System::new(opts(), mix()).run();

    // Collect one encoded checkpoint per boundary from a fresh run.
    let mut checkpoints: Vec<Vec<u8>> = Vec::new();
    let mut sys = System::new(opts(), mix());
    sys.run_with_hook(&mut |s, at| {
        checkpoints.push(s.checkpoint(at).encode());
        EpochControl::Continue
    })
    .into_result();
    assert!(
        checkpoints.len() >= 4,
        "need several boundaries to make exhaustiveness meaningful, got {}",
        checkpoints.len()
    );

    for (i, bytes) in checkpoints.iter().enumerate() {
        let cp = Checkpoint::decode(bytes).expect("clean checkpoint decodes");
        let (mut resumed, at) =
            System::restore(opts(), mix(), &cp).unwrap_or_else(|e| panic!("boundary {i}: {e}"));
        let r = resumed
            .resume_with_hook(at, &mut |_, _| EpochControl::Continue)
            .into_result();
        assert_identical(&r, &reference);
    }
}

/// A crashed-and-restored run and an uninterrupted run agree under a fault
/// campaign too: the injector schedule, the degradation ladder and the
/// recovery path all replay deterministically from the checkpoint.
fn crash_once_and_compare(o: SimOptions, crash_at: u64) {
    let reference = System::new(o.clone(), mix()).run();
    let mut cp = None;
    let mut sys = System::new(o.clone(), mix());
    let mut fired = 0u64;
    let outcome = sys.run_with_hook(&mut |s, at| {
        fired += 1;
        if fired == crash_at {
            cp = Some(s.checkpoint(at).encode());
            EpochControl::Halt
        } else {
            EpochControl::Continue
        }
    });
    let Some(bytes) = cp else {
        // Fewer boundaries than the crash point: the run completed; it must
        // already equal the reference.
        let RunOutcome::Completed(r) = outcome else {
            panic!("no checkpoint but not completed either");
        };
        assert_identical(&r, &reference);
        return;
    };
    let cp = Checkpoint::decode(&bytes).expect("clean checkpoint decodes");
    let (mut resumed, at) = System::restore(o, mix(), &cp).expect("restores");
    let r = resumed
        .resume_with_hook(at, &mut |_, _| EpochControl::Continue)
        .into_result();
    assert_identical(&r, &reference);
}

proptest! {
    // Full-system runs are expensive; a handful of cases over a wide space
    // still interleaves crashes at warm-up and measurement boundaries with
    // every fault class (the probabilities make each near-certain per run).
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn random_crash_points_interleaved_with_fault_campaigns_replay_exactly(
        seed in 0u64..1_000_000,
        crash_at in 1u64..10,
        bank_offline_prob in 0.0f64..0.3,
        epoch_drop_prob in 0.0f64..0.3,
        curve_corruption_prob in 0.0f64..0.5,
        forced_bank in 0u16..16,
    ) {
        let mut o = opts();
        o.seed = seed;
        o.config.epoch_cycles = 20_000;
        o.fault = Some(FaultConfig {
            seed,
            bank_offline_prob,
            bank_repair_prob: 0.3,
            max_offline_banks: 2,
            epoch_drop_prob,
            curve_corruption_prob,
            forced_offline: vec![(1, forced_bank)],
        });
        crash_once_and_compare(o, crash_at);
    }
}

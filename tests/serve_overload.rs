//! Overload resilience for the `bap serve` decision service (tier 1).
//!
//! The contracts under test, all deterministic (the governor's wall-clock
//! inputs are injected, never sampled):
//!
//! * **gating** — expired deadlines answer `deadline-exceeded`; queue,
//!   per-session and tick-budget excess shed `overloaded`, every shed
//!   carrying a non-zero `retry_after_ms` hint; `Shutdown` is exempt;
//! * **brownout ladder** — sustained over-budget ticks walk the level
//!   down one step at a time, calm ticks walk it back up only after the
//!   longer exit streak (hysteresis), and under `LastGood` the service
//!   answers decisions from the installed plan without solving;
//! * **panic isolation** — a panic inside one session's decision work
//!   quarantines that session behind the stable `internal` code while
//!   every other session (and the service itself) keeps serving; a fresh
//!   `Open` recovers the id;
//! * **neutrality** — with `ServeConfig::overload` unset nothing above
//!   runs: the default-context batch path answers byte-identically to the
//!   plain one.

use std::time::{Duration, Instant};

use bankaware::partitioning::{
    BatchContext, BrownoutLevel, ClientError, DecisionService, OverloadGovernor, ServeConfig,
    Server,
};
use bankaware::trace::wire::{RequestKind, ResponseKind, WireCurve, WireRequest};
use bankaware::trace::Tracer;
use bankaware::types::{OverloadConfig, RetryConfig};

/// Knee-shaped miss-ratio curves: deterministic in (cores, seed).
fn knee_curves(cores: usize, seed: u64) -> Vec<WireCurve> {
    (0..cores)
        .map(|core| {
            let h = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((core as u64).wrapping_mul(0x0100_0000_01B3));
            let base = 30_000.0 + (h % 90_000) as f64;
            let knee = 2 + ((h >> 17) % 40) as usize;
            let floor = ((h >> 33) % 3_000) as f64;
            let misses = (0..=72)
                .map(|w| {
                    if w >= knee {
                        floor
                    } else {
                        base - (base - floor) * w as f64 / knee as f64
                    }
                })
                .collect();
            WireCurve {
                accesses: base.max(1.0) * 4.0,
                misses,
            }
        })
        .collect()
}

fn req(id: u64, kind: RequestKind) -> WireRequest {
    WireRequest::new(id, kind)
}

fn snapshot(id: u64, session: u64, seed: u64) -> WireRequest {
    req(
        id,
        RequestKind::Snapshot {
            session,
            curves: knee_curves(8, seed),
        },
    )
}

fn code_of(kind: &ResponseKind) -> Option<&str> {
    kind.error_code()
}

fn hint_of(kind: &ResponseKind) -> Option<u64> {
    match kind {
        ResponseKind::Error { retry_after_ms, .. } => *retry_after_ms,
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Gate verdicts.
// ---------------------------------------------------------------------------

#[test]
fn expired_deadlines_answer_deadline_exceeded_but_shutdown_is_exempt() {
    let mut g = OverloadGovernor::new(OverloadConfig::default(), Tracer::off());
    let now = Instant::now();
    let stale = now - Duration::from_millis(50);
    let expired = snapshot(1, 1, 0).with_deadline_ms(10);
    let alive = snapshot(2, 1, 0).with_deadline_ms(10_000);
    let no_deadline = snapshot(3, 1, 0);
    let bye = req(4, RequestKind::Shutdown).with_deadline_ms(0);
    let pending = vec![
        (&expired, stale),
        (&alive, now),
        (&no_deadline, stale),
        (&bye, stale),
    ];
    let verdicts = g.gate(now, &pending);
    assert_eq!(
        verdicts[0].as_ref().and_then(code_of),
        Some("deadline-exceeded"),
        "50ms-old request with a 10ms budget must expire"
    );
    assert!(verdicts[1].is_none(), "live deadline is admitted");
    assert!(verdicts[2].is_none(), "no deadline means no expiry");
    assert!(
        verdicts[3].is_none(),
        "Shutdown must get through even with an expired deadline"
    );
}

#[test]
fn queue_and_session_caps_shed_with_retry_hints() {
    let cfg = OverloadConfig {
        max_queue_depth: 3,
        max_session_inflight: 1,
        tick_budget_ms: 0,
        ..OverloadConfig::default()
    };
    let mut g = OverloadGovernor::new(cfg, Tracer::off());
    let now = Instant::now();
    // Two sessions, two decision requests each, then a fourth-slot query.
    let reqs = [
        snapshot(1, 1, 0),
        snapshot(2, 1, 1), // over session 1's inflight cap
        snapshot(3, 2, 2),
        snapshot(4, 2, 3), // over session 2's inflight cap
        req(5, RequestKind::Stats),
        req(6, RequestKind::Stats), // fourth admission: over the queue cap
    ];
    let pending: Vec<(&WireRequest, Instant)> = reqs.iter().map(|r| (r, now)).collect();
    let verdicts = g.gate(now, &pending);
    assert!(verdicts[0].is_none());
    assert_eq!(verdicts[1].as_ref().and_then(code_of), Some("overloaded"));
    assert!(verdicts[2].is_none());
    assert_eq!(verdicts[3].as_ref().and_then(code_of), Some("overloaded"));
    assert!(verdicts[4].is_none(), "third admission still under the cap");
    assert_eq!(
        verdicts[5].as_ref().and_then(code_of),
        Some("overloaded"),
        "queue cap of 3 sheds the fourth admission"
    );
    for v in verdicts.iter().flatten() {
        let hint = hint_of(v).expect("every shed carries a retry hint");
        assert!(hint >= 1, "hints are never zero");
    }
}

#[test]
fn tick_budget_caps_admission_from_the_cost_model() {
    let cfg = OverloadConfig {
        max_queue_depth: 0,
        max_session_inflight: 0,
        tick_budget_ms: 10,
        ..OverloadConfig::default()
    };
    let mut g = OverloadGovernor::new(cfg, Tracer::off());
    // Teach the cost model: a 4-request tick took 20ms → 5ms per request,
    // so a 10ms budget fits two decisions.
    g.tick_done(Duration::from_millis(20), 4);
    let now = Instant::now();
    let reqs: Vec<WireRequest> = (0..4).map(|i| snapshot(i + 1, i + 1, i)).collect();
    let pending: Vec<(&WireRequest, Instant)> = reqs.iter().map(|r| (r, now)).collect();
    let verdicts = g.gate(now, &pending);
    assert!(verdicts[0].is_none());
    assert!(verdicts[1].is_none());
    assert_eq!(
        verdicts[2].as_ref().and_then(code_of),
        Some("overloaded"),
        "third decision exceeds the predicted budget"
    );
    assert_eq!(verdicts[3].as_ref().and_then(code_of), Some("overloaded"));
    // The hint tracks the observed tick duration (≈ 20ms EWMA).
    assert!(g.retry_after_ms() >= 10, "hint follows the tick EWMA");
}

// ---------------------------------------------------------------------------
// The brownout ladder.
// ---------------------------------------------------------------------------

#[test]
fn brownout_ladder_walks_down_fast_and_up_hysteretically() {
    let cfg = OverloadConfig {
        tick_budget_ms: 10,
        brownout_enter_ticks: 2,
        brownout_exit_ticks: 3,
        ..OverloadConfig::default()
    };
    let mut g = OverloadGovernor::new(cfg, Tracer::off());
    let over = Duration::from_millis(50);
    let calm = Duration::from_millis(1);
    assert_eq!(g.level(), BrownoutLevel::Normal);

    g.tick_done(over, 1);
    assert_eq!(g.level(), BrownoutLevel::Normal, "one over tick: too soon");
    g.tick_done(over, 1);
    assert_eq!(g.level(), BrownoutLevel::Budgeted, "two over ticks: enter");
    g.tick_done(over, 1);
    g.tick_done(over, 1);
    assert_eq!(g.level(), BrownoutLevel::LastGood, "sustained: deepest");

    // One calm tick between over ticks must NOT exit (hysteresis).
    g.tick_done(calm, 1);
    g.tick_done(calm, 1);
    assert_eq!(g.level(), BrownoutLevel::LastGood, "two calm ticks < exit");
    g.tick_done(over, 1);
    g.tick_done(calm, 1);
    g.tick_done(calm, 1);
    assert_eq!(g.level(), BrownoutLevel::LastGood, "streak was broken");
    g.tick_done(calm, 1);
    assert_eq!(g.level(), BrownoutLevel::Budgeted, "three calm ticks: exit");
    g.tick_done(calm, 1);
    g.tick_done(calm, 1);
    g.tick_done(calm, 1);
    assert_eq!(g.level(), BrownoutLevel::Normal, "fully recovered");

    // The context reflects the ladder: budgeted ticks carry a deadline.
    g.tick_done(over, 1);
    g.tick_done(over, 1);
    let ctx = g.context(Instant::now());
    assert_eq!(ctx.brownout, BrownoutLevel::Budgeted);
    assert!(ctx.solve_deadline.is_some(), "budgeted ticks bound solves");
}

#[test]
fn lastgood_ticks_answer_from_the_installed_plan_without_solving() {
    let mut svc = DecisionService::new(ServeConfig::default());
    svc.process_batch(&[
        req(
            1,
            RequestKind::Open {
                session: 1,
                cores: 8,
            },
        ),
        snapshot(2, 1, 7),
    ]);
    let before = svc.process_batch(&[req(3, RequestKind::Plan { session: 1 })]);
    let ResponseKind::Plan {
        fingerprint: installed_fp,
        epoch: before_epoch,
        ..
    } = before[0].kind
    else {
        panic!("expected a plan");
    };

    // A deep-brownout tick: different curves would normally re-solve.
    let ctx = BatchContext {
        solve_deadline: None,
        brownout: BrownoutLevel::LastGood,
        retry_after_ms: 9,
    };
    let out = svc.process_batch_with(
        &[
            snapshot(4, 1, 4242),
            req(
                5,
                RequestKind::Evaluate {
                    session: 1,
                    curves: knee_curves(8, 99),
                },
            ),
        ],
        &ctx,
    );
    let ResponseKind::Decision {
        installed,
        fingerprint,
        epoch,
        ..
    } = out[0].kind
    else {
        panic!("expected a decision, got {:?}", out[0].kind);
    };
    assert!(!installed, "LastGood never installs");
    assert_eq!(
        fingerprint, installed_fp,
        "the answer is the installed last-good plan"
    );
    assert_eq!(epoch, before_epoch + 1, "the epoch still passes");
    assert_eq!(
        code_of(&out[1].kind),
        Some("overloaded"),
        "what-if evaluation is shed under LastGood"
    );
    assert_eq!(
        hint_of(&out[1].kind),
        Some(9),
        "the tick's hint rides along"
    );

    // Back at Normal the same curves re-solve and install again.
    let after = svc.process_batch(&[snapshot(6, 1, 4242)]);
    let ResponseKind::Decision { installed, .. } = after[0].kind else {
        panic!("expected a decision");
    };
    assert!(installed, "normal service resumed after the brownout tick");
}

// ---------------------------------------------------------------------------
// Panic isolation and quarantine.
// ---------------------------------------------------------------------------

#[test]
fn a_session_panic_quarantines_it_and_reopen_recovers() {
    let cfg = ServeConfig {
        chaos_panic_session: Some(2),
        ..ServeConfig::default()
    };
    let mut svc = DecisionService::new(cfg);
    svc.process_batch(&[
        req(
            1,
            RequestKind::Open {
                session: 1,
                cores: 8,
            },
        ),
        req(
            2,
            RequestKind::Open {
                session: 2,
                cores: 8,
            },
        ),
    ]);

    // The batch that trips the chaos panic: session 2 dies mid-solve,
    // session 1 must be untouched.
    let out = svc.process_batch(&[snapshot(10, 1, 5), snapshot(11, 2, 5)]);
    assert!(
        matches!(out[0].kind, ResponseKind::Decision { .. }),
        "the healthy session's decision survives the sibling panic"
    );
    assert_eq!(
        code_of(&out[1].kind),
        Some("internal"),
        "the panicking session answers the stable internal code"
    );
    assert_eq!(svc.num_quarantined(), 1);

    // Quarantine is sticky across batches and request kinds.
    let out = svc.process_batch(&[
        snapshot(12, 2, 6),
        req(13, RequestKind::Plan { session: 2 }),
    ]);
    assert_eq!(code_of(&out[0].kind), Some("internal"));
    assert_eq!(code_of(&out[1].kind), Some("internal"));

    // A fresh Open clears it; the chaos knob fired once, so the rebuilt
    // session serves normally.
    let out = svc.process_batch(&[
        req(
            20,
            RequestKind::Open {
                session: 2,
                cores: 8,
            },
        ),
        snapshot(21, 2, 7),
    ]);
    assert!(matches!(out[0].kind, ResponseKind::Opened { .. }));
    assert!(
        matches!(out[1].kind, ResponseKind::Decision { .. }),
        "re-opened session serves again, got {:?}",
        out[1].kind
    );
    assert_eq!(svc.num_quarantined(), 0);

    // And the service as a whole never stopped: session 1 still works.
    let out = svc.process_batch(&[snapshot(30, 1, 8)]);
    assert!(matches!(out[0].kind, ResponseKind::Decision { .. }));
}

// ---------------------------------------------------------------------------
// Neutrality and the regulated threaded server.
// ---------------------------------------------------------------------------

#[test]
fn unset_overload_config_is_behaviour_neutral() {
    assert!(
        ServeConfig::default().overload.is_none(),
        "overload regulation must be opt-in"
    );
    assert!(
        DecisionService::new(ServeConfig::default())
            .governor()
            .is_none(),
        "no governor without the config"
    );

    let workload = vec![
        req(
            1,
            RequestKind::Open {
                session: 1,
                cores: 8,
            },
        ),
        snapshot(2, 1, 3),
        snapshot(3, 1, 4),
        req(4, RequestKind::Plan { session: 1 }),
        req(5, RequestKind::Stats),
    ];
    let mut plain = DecisionService::new(ServeConfig::default());
    let mut contexted = DecisionService::new(ServeConfig::default());
    let a = plain.process_batch(&workload);
    let b = contexted.process_batch_with(&workload, &BatchContext::default());
    assert_eq!(a, b, "the default context is byte-identical to no context");
}

#[test]
fn a_regulated_server_with_headroom_serves_normally() {
    let cfg = ServeConfig {
        overload: Some(OverloadConfig::default()),
        ..ServeConfig::default()
    };
    let server = Server::spawn(DecisionService::new(cfg));
    let client = server.client();
    let retry = RetryConfig::default();
    let opened = client
        .call_with_retry(
            req(
                1,
                RequestKind::Open {
                    session: 1,
                    cores: 8,
                },
            ),
            &retry,
        )
        .expect("server alive");
    assert!(matches!(opened.kind, ResponseKind::Opened { .. }));
    let decided = client
        .call_with_retry(snapshot(2, 1, 11).with_deadline_ms(60_000), &retry)
        .expect("server alive");
    assert!(
        matches!(decided.kind, ResponseKind::Decision { .. }),
        "under no pressure the gate admits everything, got {:?}",
        decided.kind
    );
    let bye = client
        .call(req(9, RequestKind::Shutdown))
        .expect("shutdown answered");
    assert!(matches!(bye.kind, ResponseKind::Bye { .. }));
    server.join();
    assert_eq!(
        client.call(req(10, RequestKind::Stats)).unwrap_err(),
        ClientError::Disconnected,
        "a dead server is a typed disconnect, not a silent None"
    );
}

//! Primary/follower replication for the `bap serve` decision service
//! (tier 1).
//!
//! The replication tier rides the determinism contract proven in
//! `tests/serve.rs`: the primary ships admitted batches, the follower
//! replays them through its own service, and the per-session digests
//! cross-check the two histories. These tests pin the protocol's
//! user-visible guarantees:
//!
//! * a cold follower catches up from the anchor checkpoint plus the log
//!   suffix and then tracks the primary tick for tick;
//! * an unreplicated service stays **byte-identical to the
//!   pre-replication dialect** — no `term` member ever appears;
//! * followers refuse state-mutating requests with `not-primary`, and
//!   `call_with_retry` redirects across the replica list on that answer;
//! * promotion bumps the fencing term, deposed-primary answers are
//!   demoted to the pinned `fenced` error client-side, and a diverged
//!   follower refuses promotion;
//! * a primary killed in the durability window (shipped, unanswered)
//!   loses nothing: the promoted follower answers the retried id from
//!   its dedup cache, exactly once.

use bankaware::partitioning::{DecisionService, KillMode, ServeConfig, Server};
use bankaware::trace::wire::{
    encode_response, RequestKind, ResponseKind, WireCurve, WireRequest, WireResponse,
};
use bankaware::types::{ReplicationConfig, RetryConfig};

// ---------------------------------------------------------------------------
// Helpers.
// ---------------------------------------------------------------------------

fn knee_curves(cores: usize, seed: u64) -> Vec<WireCurve> {
    (0..cores)
        .map(|core| {
            let h = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((core as u64).wrapping_mul(0x0100_0000_01B3));
            let base = 30_000.0 + (h % 90_000) as f64;
            let knee = 2 + ((h >> 17) % 40) as usize;
            let floor = ((h >> 33) % 3_000) as f64;
            let misses = (0..=72)
                .map(|w| {
                    if w >= knee {
                        floor
                    } else {
                        base - (base - floor) * w as f64 / knee as f64
                    }
                })
                .collect();
            WireCurve {
                accesses: base.max(1.0) * 4.0,
                misses,
            }
        })
        .collect()
}

fn req(id: u64, kind: RequestKind) -> WireRequest {
    WireRequest::new(id, kind)
}

fn repl_cfg(follower: bool, log_capacity: usize) -> ServeConfig {
    ServeConfig {
        replication: Some(ReplicationConfig {
            follower,
            log_capacity,
            ack_timeout_ms: 500,
        }),
        ..ServeConfig::default()
    }
}

/// Spawn a replicated primary/follower pair with the follower attached.
fn spawn_pair(log_capacity: usize) -> (Server, Server) {
    let primary = Server::spawn(DecisionService::new(repl_cfg(false, log_capacity)));
    let follower = Server::spawn(DecisionService::new(repl_cfg(true, log_capacity)));
    primary.replicate_to(&follower);
    (primary, follower)
}

/// A response's kind with envelope fields masked, for byte comparison
/// across replicas (tick depends on batching, term on the answerer, id
/// on the probing request).
fn masked(resp: &WireResponse) -> String {
    encode_response(&WireResponse {
        id: 0,
        tick: 0,
        term: None,
        kind: resp.kind.clone(),
    })
}

fn open(conn: &bankaware::partitioning::ServeClient, id: u64, session: u64) {
    let resp = conn
        .call(req(id, RequestKind::Open { session, cores: 8 }))
        .unwrap();
    assert!(
        matches!(resp.kind, ResponseKind::Opened { .. }),
        "open answered {}",
        resp.kind.label()
    );
}

fn snapshot(
    conn: &bankaware::partitioning::ServeClient,
    id: u64,
    session: u64,
    seed: u64,
) -> WireResponse {
    conn.call(req(
        id,
        RequestKind::Snapshot {
            session,
            curves: knee_curves(8, seed),
        },
    ))
    .unwrap()
}

fn repl_status(conn: &bankaware::partitioning::ServeClient, id: u64) -> (String, u64, u64, u64) {
    match conn.call(req(id, RequestKind::ReplStatus)).unwrap().kind {
        ResponseKind::ReplStatus {
            role,
            term,
            tick,
            divergences,
            ..
        } => (role, term, tick, divergences),
        other => panic!("repl_status answered {}", other.label()),
    }
}

// ---------------------------------------------------------------------------
// Catch-up and live tracking.
// ---------------------------------------------------------------------------

#[test]
fn cold_follower_joins_from_anchor_and_tracks_the_primary() {
    // Small capacity: the pre-join flood forces a re-anchor, so the join
    // genuinely exercises checkpoint-restore + suffix replay.
    let primary = Server::spawn(DecisionService::new(repl_cfg(false, 4)));
    let follower = Server::spawn(DecisionService::new(repl_cfg(true, 4)));
    let (pconn, fconn) = (primary.client(), follower.client());

    open(&pconn, 1, 1);
    for round in 0..10u64 {
        snapshot(&pconn, 2 + round, 1, round);
    }
    primary.replicate_to(&follower);
    // The next acknowledged decision proves the follower is attached and
    // acking (the primary answers only after every live follower acked).
    snapshot(&pconn, 100, 1, 99);

    let (_, _, ptick, _) = repl_status(&pconn, 101);
    let (role, term, ftick, divergences) = repl_status(&fconn, 1);
    assert_eq!(role, "follower");
    assert_eq!(term, 1);
    assert_eq!(ftick, ptick, "follower applied the primary's tick frontier");
    assert_eq!(divergences, 0);

    // Replayed state answers read queries byte-identically.
    let pplan = pconn
        .call(req(102, RequestKind::Plan { session: 1 }))
        .unwrap();
    let fplan = fconn
        .call(req(2, RequestKind::Plan { session: 1 }))
        .unwrap();
    assert!(matches!(pplan.kind, ResponseKind::Plan { .. }));
    assert_eq!(masked(&pplan), masked(&fplan));

    pconn.call(req(103, RequestKind::Shutdown)).unwrap();
    fconn.call(req(3, RequestKind::Shutdown)).unwrap();
    primary.join();
    follower.join();
}

// ---------------------------------------------------------------------------
// Byte-identity of the unreplicated dialect.
// ---------------------------------------------------------------------------

/// With no replication config the service is byte-identical to the
/// pre-replication server: no `term` member on any line, and the exact
/// response shapes of the old dialect.
#[test]
fn unreplicated_service_speaks_the_old_dialect_byte_for_byte() {
    let mut svc = DecisionService::new(ServeConfig::default());
    let out = svc.process_batch(&[
        req(
            1,
            RequestKind::Open {
                session: 7,
                cores: 8,
            },
        ),
        req(
            2,
            RequestKind::Snapshot {
                session: 7,
                curves: knee_curves(8, 3),
            },
        ),
        req(3, RequestKind::Stats),
    ]);
    for resp in &out {
        assert_eq!(resp.term, None);
        let line = encode_response(resp);
        assert!(
            !line.contains("\"term\""),
            "unreplicated line leaked a term member: {line}"
        );
    }
    assert_eq!(
        encode_response(&out[0]),
        r#"{"id":1,"tick":1,"kind":{"Opened":{"session":7,"cores":8}}}"#,
        "the pre-replication Opened line changed shape"
    );

    // The same batch on a replicated primary stamps term on every line.
    let mut repl = DecisionService::new(repl_cfg(false, 8));
    let out = repl.process_batch(&[req(
        1,
        RequestKind::Open {
            session: 7,
            cores: 8,
        },
    )]);
    assert_eq!(out[0].term, Some(1));
    assert!(encode_response(&out[0]).contains("\"term\":1"));
}

// ---------------------------------------------------------------------------
// Refusals, redirects, and fencing.
// ---------------------------------------------------------------------------

#[test]
fn follower_refuses_writes_and_call_with_retry_redirects() {
    let (primary, follower) = spawn_pair(16);
    let fconn = follower.client();

    // Direct write on the follower: the pinned not-primary refusal.
    let refused = fconn
        .call(req(
            1,
            RequestKind::Open {
                session: 1,
                cores: 8,
            },
        ))
        .unwrap();
    match &refused.kind {
        ResponseKind::Error { code, .. } => assert_eq!(code, "not-primary"),
        other => panic!("follower write answered {}", other.label()),
    }
    assert_eq!(refused.term, Some(1), "refusals carry the fencing term");

    // A fleet client whose cursor starts on the follower redirects to the
    // primary and succeeds.
    let fleet = Server::client_of(&[&follower, &primary]);
    let retry = RetryConfig {
        max_attempts: 4,
        base_backoff_ms: 1,
        max_backoff_ms: 2,
        jitter_frac: 0.0,
        seed: 7,
    };
    let resp = fleet
        .call_with_retry(
            req(
                10,
                RequestKind::Open {
                    session: 1,
                    cores: 8,
                },
            ),
            &retry,
        )
        .unwrap();
    assert!(
        matches!(resp.kind, ResponseKind::Opened { .. }),
        "redirect-on-not-primary reached the primary, got {}",
        resp.kind.label()
    );

    fleet.call(req(11, RequestKind::Shutdown)).unwrap();
    fconn.call(req(2, RequestKind::Shutdown)).unwrap();
    primary.join();
    follower.join();
}

#[test]
fn gave_up_carries_the_last_fence_hint() {
    // A lone follower never stops refusing: exhaustion must surface the
    // term it kept fencing on, typed, instead of a silent drop.
    let follower = Server::spawn(DecisionService::new(repl_cfg(true, 8)));
    let fconn = follower.client();
    let retry = RetryConfig {
        max_attempts: 3,
        base_backoff_ms: 1,
        max_backoff_ms: 2,
        jitter_frac: 0.0,
        seed: 7,
    };
    let err = fconn
        .call_with_retry(
            req(
                1,
                RequestKind::Open {
                    session: 1,
                    cores: 8,
                },
            ),
            &retry,
        )
        .unwrap_err();
    match err {
        bankaware::partitioning::ClientError::GaveUp {
            attempts,
            last_fence_term,
            ..
        } => {
            assert_eq!(attempts, 3);
            assert_eq!(last_fence_term, Some(1));
        }
        other => panic!("expected GaveUp, got {other}"),
    }
    fconn.call(req(2, RequestKind::Shutdown)).unwrap();
    follower.join();
}

#[test]
fn promotion_bumps_the_term_and_deposed_answers_are_fenced() {
    let (primary, follower) = spawn_pair(16);
    let (pconn, fconn) = (primary.client(), follower.client());
    open(&pconn, 1, 1);
    snapshot(&pconn, 2, 1, 5);

    // Promote the follower while the deposed primary keeps running.
    match fconn.call(req(10, RequestKind::Promote)).unwrap().kind {
        ResponseKind::Promoted { term, .. } => assert_eq!(term, 2),
        other => panic!("promote answered {}", other.label()),
    }
    let (role, term, _, _) = repl_status(&fconn, 11);
    assert_eq!((role.as_str(), term), ("primary", 2));

    // A client that has observed term 2 must demote the deposed
    // primary's term-1 answers to the pinned `fenced` error.
    let fleet = Server::client_of(&[&follower, &primary]);
    let fresh = fleet.call(req(20, RequestKind::Stats)).unwrap();
    assert_eq!(fresh.term, Some(2), "cursor starts on the successor");
    follower.kill(KillMode::Now);
    let stale = loop {
        // Until the kill lands the successor may still answer at term 2.
        match fleet.call(req(21, RequestKind::Stats)) {
            Ok(resp) if resp.term == Some(2) => continue,
            Ok(resp) => break resp,
            Err(_) => continue,
        }
    };
    match &stale.kind {
        ResponseKind::Error { code, detail, .. } => {
            assert_eq!(code, "fenced");
            assert!(
                detail.contains("deposed"),
                "detail names the cause: {detail}"
            );
        }
        other => panic!("deposed answer surfaced as {}", other.label()),
    }

    pconn.call(req(3, RequestKind::Shutdown)).unwrap();
    primary.join();
    follower.join();
}

#[test]
fn diverged_follower_refuses_promotion() {
    let (primary, follower) = spawn_pair(16);
    let (pconn, fconn) = (primary.client(), follower.client());
    open(&pconn, 1, 1);
    snapshot(&pconn, 2, 1, 5);

    primary.chaos_flip_next_digest();
    snapshot(&pconn, 3, 1, 6);

    let (_, _, _, divergences) = repl_status(&fconn, 10);
    assert!(divergences >= 1, "flipped digest must be detected");
    match fconn.call(req(11, RequestKind::Promote)).unwrap().kind {
        ResponseKind::Error { code, .. } => assert_eq!(code, "divergence"),
        other => panic!("diverged promote answered {}", other.label()),
    }

    pconn.call(req(4, RequestKind::Shutdown)).unwrap();
    fconn.call(req(12, RequestKind::Shutdown)).unwrap();
    primary.join();
    follower.join();
}

// ---------------------------------------------------------------------------
// The durability window: kill after ship, before answer.
// ---------------------------------------------------------------------------

/// A primary killed after shipping a batch but before answering it has
/// made the decision durable: the promoted follower holds it and serves
/// the client's retry of the same id from its dedup cache — exactly
/// once, byte-identical to what an unreplicated service would answer.
#[test]
fn killed_primary_loses_nothing_and_retries_dedup_exactly_once() {
    let (primary, follower) = spawn_pair(16);
    let (pconn, fconn) = (primary.client(), follower.client());
    open(&pconn, 1, 1);
    snapshot(&pconn, 2, 1, 5);

    // Enqueue a burst of snapshots and then the kill. The worker answers
    // some prefix, but the batch it is sweeping when the kill lands is
    // shipped, acked, and never answered — those reply channels report
    // disconnection. The burst is far larger than one solve's latency
    // window, so at least one answer is guaranteed to die.
    let ids: Vec<u64> = (3..=10).collect();
    let pending: Vec<_> = ids
        .iter()
        .map(|&id| {
            pconn
                .submit(req(
                    id,
                    RequestKind::Snapshot {
                        session: 1,
                        curves: knee_curves(8, id + 3),
                    },
                ))
                .unwrap()
        })
        .collect();
    primary.kill(KillMode::AfterShip);
    let dead = pending.iter().filter(|rx| rx.recv().is_err()).count();
    assert!(
        dead >= 1,
        "the kill must catch at least one shipped-but-unanswered decision"
    );
    primary.join();

    // Fail over and retry the LAST id — the one request a synchronous
    // client would actually have in flight when its primary died. The
    // whole burst was shipped and acked before the death (that is what
    // `AfterShip` guarantees), so the promoted follower holds it and
    // must answer the retry from its dedup cache.
    match fconn.call(req(100, RequestKind::Promote)).unwrap().kind {
        ResponseKind::Promoted { term, .. } => assert_eq!(term, 2),
        other => panic!("promote answered {}", other.label()),
    }
    let last = *ids.last().unwrap();
    let retried = snapshot(&fconn, last, 1, last + 3);
    assert!(
        matches!(retried.kind, ResponseKind::Decision { .. }),
        "retried id answered {}",
        retried.kind.label()
    );

    // Ground truth: an unreplicated service fed the same id-ordered
    // sequence answers the retried id byte-identically — and the epoch
    // advanced exactly once for it (dedup, not re-execution).
    let mut truth = DecisionService::new(ServeConfig::default());
    let mut expect = None;
    let mut seq = vec![
        req(
            1,
            RequestKind::Open {
                session: 1,
                cores: 8,
            },
        ),
        req(
            2,
            RequestKind::Snapshot {
                session: 1,
                curves: knee_curves(8, 5),
            },
        ),
    ];
    seq.extend(ids.iter().map(|&id| {
        req(
            id,
            RequestKind::Snapshot {
                session: 1,
                curves: knee_curves(8, id + 3),
            },
        )
    }));
    for r in seq {
        for resp in truth.process_batch(std::slice::from_ref(&r)) {
            if resp.id == last {
                expect = Some(masked(&resp));
            }
        }
    }
    assert_eq!(
        masked(&retried),
        expect.unwrap(),
        "retried answer diverged from ground truth"
    );

    match fconn
        .call(req(101, RequestKind::Plan { session: 1 }))
        .unwrap()
        .kind
    {
        ResponseKind::Plan { epoch, .. } => assert_eq!(
            epoch,
            1 + ids.len() as u64,
            "every snapshot closed exactly one epoch — the retry re-executed nothing"
        ),
        other => panic!("plan answered {}", other.label()),
    }

    fconn.call(req(102, RequestKind::Shutdown)).unwrap();
    follower.join();
}

// ---------------------------------------------------------------------------
// Client liveness against dead replicas.
// ---------------------------------------------------------------------------

#[test]
fn client_pinned_to_a_dead_server_fails_typed_not_hanging() {
    let server = Server::spawn(DecisionService::new(ServeConfig::default()));
    let conn = server.client();
    server.kill(KillMode::Now);
    server.join();
    let err = conn.call(req(1, RequestKind::Stats)).unwrap_err();
    assert_eq!(err, bankaware::partitioning::ClientError::Disconnected);
    // call_with_retry with one target treats disconnection as final.
    let retry = RetryConfig {
        max_attempts: 5,
        base_backoff_ms: 1,
        max_backoff_ms: 2,
        jitter_frac: 0.0,
        seed: 1,
    };
    let err = conn
        .call_with_retry(req(2, RequestKind::Stats), &retry)
        .unwrap_err();
    assert_eq!(err, bankaware::partitioning::ClientError::Disconnected);
}

// ---------------------------------------------------------------------------
// Log bounding.
// ---------------------------------------------------------------------------

#[test]
fn log_stays_bounded_by_reanchoring() {
    let primary = Server::spawn(DecisionService::new(repl_cfg(false, 4)));
    let pconn = primary.client();
    open(&pconn, 1, 1);
    for round in 0..12u64 {
        snapshot(&pconn, 2 + round, 1, round);
    }
    match pconn.call(req(100, RequestKind::ReplStatus)).unwrap().kind {
        ResponseKind::ReplStatus {
            log_entries,
            anchor_tick,
            ..
        } => {
            assert!(
                log_entries <= 4,
                "suffix holds {log_entries} entries past capacity 4"
            );
            assert!(anchor_tick > 0, "13 ticks never rolled the anchor");
        }
        other => panic!("repl_status answered {}", other.label()),
    }
    pconn.call(req(101, RequestKind::Shutdown)).unwrap();
    primary.join();
}

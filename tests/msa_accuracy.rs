//! Integration test of the paper's §III-A accuracy claim: the hardware
//! profiler (12-bit partial tags + 1-in-32 set sampling) reproduces the
//! full-tag profile "within 5 %" on real workload streams.

use bankaware::msa::{MissRatioCurve, ProfilerConfig, StackProfiler};
use bankaware::workloads::{spec_by_name, AddressStream};

/// Profile `name`'s raw block stream with both configurations and return
/// the (mean, max) absolute miss-ratio error over the assignable range.
fn curve_error(name: &str) -> (f64, f64) {
    let sets = 2048usize; // full-scale bank geometry
    let mut reference = StackProfiler::new(ProfilerConfig::reference(sets, 72));
    let mut hardware = StackProfiler::new(ProfilerConfig::paper_hardware(sets));

    let spec = spec_by_name(name).expect("catalog");
    let mut fed = 0u64;
    for op in AddressStream::new(spec, sets as u64, 1, 17) {
        if let Some(addr) = op.addr() {
            reference.observe(addr.block());
            hardware.observe(addr.block());
            fed += 1;
            if fed >= 1_500_000 {
                break;
            }
        }
    }
    let r = MissRatioCurve::from_histogram(reference.histogram(), reference.scale());
    let h = MissRatioCurve::from_histogram(hardware.histogram(), hardware.scale());
    let errs: Vec<f64> = (1..=72)
        .map(|w| (r.miss_ratio_at(w) - h.miss_ratio_at(w)).abs())
        .collect();
    let mean = errs.iter().sum::<f64>() / errs.len() as f64;
    let max = errs.iter().copied().fold(0.0f64, f64::max);
    (mean, max)
}

#[test]
fn hardware_profiler_tracks_reference_within_tolerance() {
    // A spread of behaviours: gradual (bzip2), cliff (art), streaming
    // (swim), tiny (eon). The paper's ~5 % claim is about overall profile
    // accuracy; pointwise error at a thrash cliff is additionally bounded
    // (set sampling shifts the cliff edge by a way or two).
    for name in ["bzip2", "art", "swim", "eon"] {
        let (mean, max) = curve_error(name);
        assert!(
            mean < 0.05,
            "{name}: mean profile error {mean:.3} (paper claims ~5%)"
        );
        assert!(max < 0.15, "{name}: pointwise error {max:.3}");
    }
}

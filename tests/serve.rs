//! Concurrency-determinism for the `bap serve` decision service (tier 1).
//!
//! The contract under test: responses are a pure function of the
//! id-ordered per-session request sequences. How a workload is split into
//! batches, how requests are ordered *within* a batch, and how many
//! client threads race the server cannot change any plan, fingerprint,
//! error, or summary — only the `tick` field (which honestly reports how
//! work actually batched) may differ. The ground truth every variant is
//! compared against is the fully serial schedule: one request per batch,
//! ascending id order.

use std::collections::BTreeMap;
use std::thread;

use bankaware::partitioning::{DecisionService, ServeConfig, Server};
use bankaware::trace::wire::{RequestKind, ResponseKind, WireCurve, WireRequest, WireResponse};

// ---------------------------------------------------------------------------
// Deterministic workload generation (no rand dependency: splitmix64).
// ---------------------------------------------------------------------------

fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Knee-shaped miss-ratio curves: deterministic in (cores, seed).
fn knee_curves(cores: usize, seed: u64) -> Vec<WireCurve> {
    (0..cores)
        .map(|core| {
            let h = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((core as u64).wrapping_mul(0x0100_0000_01B3));
            let base = 30_000.0 + (h % 90_000) as f64;
            let knee = 2 + ((h >> 17) % 40) as usize;
            let floor = ((h >> 33) % 3_000) as f64;
            let misses = (0..=72)
                .map(|w| {
                    if w >= knee {
                        floor
                    } else {
                        base - (base - floor) * w as f64 / knee as f64
                    }
                })
                .collect();
            WireCurve {
                accesses: base.max(1.0) * 4.0,
                misses,
            }
        })
        .collect()
}

/// Sessions used by the canonical workload: (session id, cores).
const SESSIONS: [(u64, usize); 3] = [(1, 8), (2, 16), (3, 8)];

/// A mixed workload in ascending id order: opens first, then rounds of
/// snapshot/evaluate traffic (including deterministic *errors* — an
/// unknown session and a wrong-arity snapshot), then plan queries. Ids
/// are dense from 1; the phase layout mirrors how a well-formed client
/// must sequence per-session traffic.
fn workload(rounds: usize, seed: u64) -> Vec<WireRequest> {
    let mut reqs = Vec::new();
    let mut id = 0u64;
    let mut req = |kind: RequestKind| {
        id += 1;
        WireRequest::new(id, kind)
    };
    for (session, cores) in SESSIONS {
        reqs.push(req(RequestKind::Open { session, cores }));
    }
    for r in 0..rounds {
        for (session, cores) in SESSIONS {
            let curves = knee_curves(cores, seed ^ (r as u64) << 8 ^ session);
            reqs.push(req(RequestKind::Snapshot { session, curves }));
            if r % 2 == 1 {
                let probe = knee_curves(cores, seed ^ 0xE7A1 ^ session);
                reqs.push(req(RequestKind::Evaluate {
                    session,
                    curves: probe,
                }));
            }
        }
        // Deterministic failures ride along with every round.
        reqs.push(req(RequestKind::Snapshot {
            session: 99,
            curves: knee_curves(8, seed),
        }));
        reqs.push(req(RequestKind::Snapshot {
            session: 1,
            curves: knee_curves(4, seed), // wrong arity for an 8-core session
        }));
    }
    for (session, _) in SESSIONS {
        reqs.push(req(RequestKind::Plan { session }));
    }
    reqs
}

/// Key responses by request id, dropping the batch-dependent `tick`.
fn keyed(responses: Vec<WireResponse>) -> BTreeMap<u64, ResponseKind> {
    responses.into_iter().map(|r| (r.id, r.kind)).collect()
}

/// Serial ground truth: one request per batch, ascending id order.
fn serial_ground_truth(reqs: &[WireRequest]) -> BTreeMap<u64, ResponseKind> {
    let mut service = DecisionService::new(ServeConfig::default());
    let mut out = Vec::new();
    for r in reqs {
        out.extend(service.process_batch(std::slice::from_ref(r)));
    }
    keyed(out)
}

// ---------------------------------------------------------------------------
// Batch-partitioning and arrival-order invariance.
// ---------------------------------------------------------------------------

#[test]
fn any_contiguous_batching_matches_the_serial_schedule() {
    let reqs = workload(3, 0xBA12);
    let truth = serial_ground_truth(&reqs);
    assert!(
        truth.values().any(|k| matches!(
            k,
            ResponseKind::Decision {
                installed: true,
                ..
            }
        )),
        "workload must install at least one plan to be probative"
    );
    assert!(
        truth
            .values()
            .any(|k| matches!(k, ResponseKind::Error { .. })),
        "workload must exercise error paths to be probative"
    );

    // One giant batch.
    let mut service = DecisionService::new(ServeConfig::default());
    assert_eq!(keyed(service.process_batch(&reqs)), truth);

    // Five random contiguous partitionings.
    let mut rng = 0x5EED_0001u64;
    for _ in 0..5 {
        let mut service = DecisionService::new(ServeConfig::default());
        let mut out = Vec::new();
        let mut lo = 0;
        while lo < reqs.len() {
            let hi = (lo + 1 + (mix(&mut rng) % 7) as usize).min(reqs.len());
            out.extend(service.process_batch(&reqs[lo..hi]));
            lo = hi;
        }
        assert_eq!(keyed(out), truth);
    }
}

#[test]
fn arrival_order_within_a_batch_is_irrelevant() {
    let reqs = workload(2, 0xC0DE);
    let truth = serial_ground_truth(&reqs);
    let mut rng = 0x5EED_0002u64;
    for _ in 0..4 {
        let mut shuffled = reqs.clone();
        for i in (1..shuffled.len()).rev() {
            shuffled.swap(i, (mix(&mut rng) % (i as u64 + 1)) as usize);
        }
        let mut service = DecisionService::new(ServeConfig::default());
        let out = service.process_batch(&shuffled);
        // Responses are 1:1 positional with the *input* order…
        assert_eq!(out.len(), shuffled.len());
        for (resp, req) in out.iter().zip(&shuffled) {
            assert_eq!(resp.id, req.id);
        }
        // …and keyed by id they are bit-identical to the serial schedule.
        assert_eq!(keyed(out), truth);
    }
}

// ---------------------------------------------------------------------------
// Threaded server: real client threads racing a live batching loop.
// ---------------------------------------------------------------------------

fn run_threaded(reqs: &[WireRequest], clients: usize) -> BTreeMap<u64, ResponseKind> {
    // Per-session id order is each client's responsibility: shard whole
    // sessions across clients so every session's sequence stays ordered
    // while cross-session arrival is genuinely racy.
    let mut shards: Vec<Vec<WireRequest>> = vec![Vec::new(); clients];
    for r in reqs {
        let shard = match r.kind.session() {
            Some(s) => (s as usize) % clients,
            None => 0,
        };
        shards[shard].push(r.clone());
    }
    let server = Server::spawn(DecisionService::new(ServeConfig::default()));
    let handles: Vec<thread::JoinHandle<Vec<WireResponse>>> = shards
        .into_iter()
        .map(|shard| {
            let client = server.client();
            thread::spawn(move || {
                shard
                    .into_iter()
                    .map(|req| {
                        let id = req.id;
                        let resp = client.call(req).expect("server alive during load");
                        assert_eq!(resp.id, id, "response must echo its request id");
                        resp
                    })
                    .collect()
            })
        })
        .collect();
    let mut out = Vec::new();
    for h in handles {
        out.extend(h.join().expect("client thread"));
    }
    let bye = server
        .client()
        .call(WireRequest::new(u64::MAX, RequestKind::Shutdown))
        .expect("shutdown acknowledged");
    assert!(matches!(bye.kind, ResponseKind::Bye { .. }));
    server.join();
    keyed(out)
}

#[test]
fn client_threads_cannot_perturb_any_response() {
    let reqs = workload(2, 0xFA11);
    let truth = serial_ground_truth(&reqs);
    for clients in [1, 4] {
        assert_eq!(
            run_threaded(&reqs, clients),
            truth,
            "{clients} racing clients must produce the serial schedule's responses"
        );
    }
}

// ---------------------------------------------------------------------------
// Checkpoint/restore equivalence and shutdown drain.
// ---------------------------------------------------------------------------

/// Session summaries narrate *process* lifetime, so a restored service
/// legitimately restarts them from zero; everything else in a Decision
/// must match. Blank the summary before comparing.
fn desummarized(mut kind: ResponseKind) -> ResponseKind {
    if let ResponseKind::Decision { summary, .. } = &mut kind {
        *summary = Default::default();
    }
    kind
}

#[test]
fn a_restored_service_continues_bit_identically() {
    let reqs = workload(3, 0xD1CE);
    let half = reqs.len() / 2;

    let mut original = DecisionService::new(ServeConfig::default());
    original.process_batch(&reqs[..half]);
    let snap = original.snapshot();

    let mut restored = DecisionService::new(ServeConfig::default());
    restored.restore(&snap).expect("restore snapshot");
    assert_eq!(restored.num_sessions(), original.num_sessions());

    let a = original.process_batch(&reqs[half..]);
    let b = restored.process_batch(&reqs[half..]);
    let a: BTreeMap<u64, ResponseKind> = keyed(a)
        .into_iter()
        .map(|(k, v)| (k, desummarized(v)))
        .collect();
    let b: BTreeMap<u64, ResponseKind> = keyed(b)
        .into_iter()
        .map(|(k, v)| (k, desummarized(v)))
        .collect();
    assert_eq!(a, b, "post-restore traffic must be bit-identical");
}

#[test]
fn shutdown_drains_the_inflight_batch() {
    let mut service = DecisionService::new(ServeConfig::default());
    service.process_batch(&workload(1, 0xAB)[..3]); // opens only
    let batch = vec![
        WireRequest::new(
            10,
            RequestKind::Snapshot {
                session: 1,
                curves: knee_curves(8, 0xAB),
            },
        ),
        WireRequest::new(11, RequestKind::Shutdown),
        WireRequest::new(12, RequestKind::Plan { session: 1 }),
    ];
    let out = service.process_batch(&batch);
    assert!(matches!(out[0].kind, ResponseKind::Decision { .. }));
    assert!(
        matches!(out[1].kind, ResponseKind::Bye { drained: 2 }),
        "Bye must report the co-batched requests it drained, got {:?}",
        out[1].kind
    );
    let fp_decision = match &out[0].kind {
        ResponseKind::Decision { fingerprint, .. } => *fingerprint,
        other => panic!("expected Decision, got {other:?}"),
    };
    match &out[2].kind {
        ResponseKind::Plan { fingerprint, .. } => {
            assert_eq!(*fingerprint, fp_decision, "Plan sees the drained decision")
        }
        other => panic!("expected Plan, got {other:?}"),
    }
}

//! Control-loop stability: the anti-thrash hysteresis gate, the epoch
//! decision budget and the online invariant guard.
//!
//! The contracts under test:
//!
//! * a stationary workload installs at most one plan once the tuned gate
//!   is on — the solver re-deriving the same answer is not churn;
//! * a marginally oscillating A↔B mix arms the flip-flop hold-off within a
//!   handful of epochs, whatever the pair of hot cores;
//! * a budget-exhausted epoch provably falls back to the last-good plan —
//!   the `BudgetShed` trace event is the regression anchor, and the
//!   degradation ladder stays untouched;
//! * the whole control layer is behaviour-neutral at defaults: a full
//!   system run with the guard on is byte-identical to one with it off.

use bankaware::msa::{MissRatioCurve, ProfilerConfig};
use bankaware::partitioning::{BankAwareConfig, Controller, Policy};
use bankaware::system::{SimOptions, System};
use bankaware::trace::{EventKind, Tracer};
use bankaware::types::{ControlConfig, HysteresisConfig, SystemConfig, Topology};
use bankaware::workloads::spec_by_name;
use proptest::prelude::*;

/// Synthetic curves with a sharp utility knee per core: steep gains up to
/// `knee` ways, flat afterwards.
fn knee_curves(knees: &[usize], amp: f64) -> Vec<MissRatioCurve> {
    knees
        .iter()
        .map(|&k| {
            let misses: Vec<f64> = (0..=72)
                .map(|w| {
                    if w < k {
                        amp * (k - w) as f64 + 100.0
                    } else {
                        100.0
                    }
                })
                .collect();
            MissRatioCurve::from_misses(misses, 100_000.0)
        })
        .collect()
}

fn controller(control: ControlConfig) -> Controller {
    let mut c = Controller::new(
        Policy::BankAware,
        Topology::baseline(),
        8,
        ProfilerConfig::reference(64, 72),
        BankAwareConfig::default(),
    );
    c.set_control(control);
    c
}

/// Hysteresis with the improvement gate and phase detector neutralised —
/// isolates the flip-flop machinery for the oscillation property.
fn flip_only() -> ControlConfig {
    ControlConfig {
        hysteresis: HysteresisConfig {
            enabled: true,
            min_improvement_frac: 0.0,
            migration_cost_per_way: 0.0,
            phase_delta_threshold: 1e18,
            ..HysteresisConfig::tuned()
        },
        ..ControlConfig::tuned()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Whatever the (stationary) demand profile, the tuned gate admits at
    /// most one install: every later epoch either re-derives the same plan
    /// or is held below the improvement threshold.
    #[test]
    fn stationary_workload_installs_at_most_once(
        hot in 0usize..8,
        hot_knee in 16usize..56,
        cold_knee in 2usize..8,
        amp in 200.0f64..2000.0,
    ) {
        let mut knees = [cold_knee; 8];
        knees[hot] = hot_knee;
        let curves = knee_curves(&knees, amp);
        let mut c = controller(ControlConfig::tuned());
        let mut installs = 0u32;
        for _ in 0..30 {
            if c.epoch_boundary_with_curves(curves.clone()).is_some() {
                installs += 1;
            }
        }
        prop_assert!(installs <= 1, "stationary workload installed {installs} plans");
        prop_assert_eq!(c.counters().budget_sheds, 0);
    }

    /// An A↔B oscillation between any two distinct hot cores arms a
    /// hold-off within a dozen epochs, and the churn stays bounded: the
    /// controller follows at most the flips needed for detection plus the
    /// post-hold-off re-probes.
    #[test]
    fn oscillating_mix_arms_holdoff_within_k_epochs(
        a in 0usize..8,
        b in 0usize..8,
        amp in 500.0f64..2000.0,
    ) {
        prop_assume!(a != b);
        let mut ka = [4usize; 8];
        ka[a] = 40;
        let mut kb = [4usize; 8];
        kb[b] = 40;
        let (mix_a, mix_b) = (knee_curves(&ka, amp), knee_curves(&kb, amp));
        let mut c = controller(flip_only());
        let mut installs = 0u32;
        for e in 0..12 {
            let curves = if e % 2 == 0 { mix_a.clone() } else { mix_b.clone() };
            if c.epoch_boundary_with_curves(curves).is_some() {
                installs += 1;
            }
        }
        prop_assert!(
            c.counters().holdoffs >= 1,
            "12 oscillating epochs never armed a hold-off"
        );
        prop_assert!(installs <= 6, "hold-off failed to damp churn: {installs} installs");
        prop_assert!(c.in_holdoff() || c.counters().holdoffs >= 2);
    }
}

/// The budget-shed regression anchor: exhaustion emits `BudgetShed`, keeps
/// the last-good plan in force and never walks the degradation ladder.
#[test]
fn budget_exhaustion_falls_back_to_last_good_plan() {
    let tracer = Tracer::ring();
    let mut c = controller(ControlConfig::default());
    c.set_tracer(tracer.clone());
    let curves = knee_curves(&[40, 4, 4, 4, 4, 4, 4, 4], 1000.0);
    let installed = c
        .epoch_boundary_with_curves(curves.clone())
        .expect("unlimited first epoch installs");
    tracer.drain_events();

    c.set_control(ControlConfig::default().with_step_budget(1));
    for _ in 0..3 {
        assert_eq!(
            c.epoch_boundary_with_curves(curves.clone()),
            None,
            "a shed epoch must not emit a plan"
        );
    }

    let f = c.counters();
    assert_eq!(f.budget_sheds, 3);
    assert_eq!(f.solver_failures, 0, "a shed is not a solver failure");
    assert_eq!(
        f.plan_reuses + f.plan_repairs + f.equal_fallbacks,
        0,
        "ladder untouched"
    );
    assert_eq!(
        c.last_plan(),
        Some(&installed),
        "last-good plan stays in force"
    );

    let events = tracer.drain_events();
    let sheds: Vec<_> = events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::BudgetShed { steps, limit } => Some((*steps, limit.clone())),
            _ => None,
        })
        .collect();
    assert_eq!(sheds.len(), 3, "every shed epoch emits one BudgetShed");
    for (steps, limit) in sheds {
        assert!(steps >= 1, "step-budget shed reports the steps consumed");
        assert_eq!(limit, "steps");
    }
    assert!(
        !events
            .iter()
            .any(|e| matches!(e.kind, EventKind::DegradationRung { .. })),
        "budget accounting must not masquerade as degradation"
    );
}

fn opts(policy: Policy) -> SimOptions {
    let mut o = SimOptions::new(SystemConfig::scaled(32), policy);
    o.warmup_instructions = 80_000;
    o.measure_instructions = 160_000;
    o.config.epoch_cycles = 600_000;
    o
}

fn mix() -> Vec<bankaware::workloads::WorkloadSpec> {
    [
        "mcf", "twolf", "art", "sixtrack", "gcc", "gap", "vpr", "eon",
    ]
    .iter()
    .map(|n| spec_by_name(n).expect("catalog"))
    .collect()
}

/// `ControlConfig::default()` is behaviour-neutral end to end: the guard
/// watching every epoch boundary changes nothing on a healthy run, and
/// turning it off changes nothing either.
#[test]
fn default_control_layer_is_behaviour_neutral() {
    let baseline = System::new(opts(Policy::BankAware), mix()).run();

    let mut explicit = opts(Policy::BankAware);
    explicit.control = ControlConfig::default();
    let with_guard = System::new(explicit, mix()).run();

    let mut off = opts(Policy::BankAware);
    off.control.guard = false;
    let without_guard = System::new(off, mix()).run();

    for r in [&with_guard, &without_guard] {
        assert_eq!(r.total_l2_misses(), baseline.total_l2_misses());
        assert_eq!(r.epoch_history, baseline.epoch_history);
        assert_eq!(r.final_plan, baseline.final_plan);
    }
    assert_eq!(
        with_guard.fault.guard_trips, 0,
        "healthy run never trips the guard"
    );
    assert_eq!(
        with_guard.fault.budget_sheds, 0,
        "unlimited budget never sheds"
    );
}

/// The tuned production preset on a real mix: the gate may hold plans but
/// never sheds, never trips the guard and still converges on a plan.
#[test]
fn tuned_preset_stays_stable_on_a_real_mix() {
    let mut o = opts(Policy::BankAware);
    o.control = ControlConfig::tuned();
    let r = System::new(o, mix()).run();
    assert!(r.final_plan.is_some(), "tuned run still installs a plan");
    assert_eq!(r.fault.budget_sheds, 0);
    assert_eq!(r.fault.guard_trips, 0);
    assert_eq!(r.fault.equal_fallbacks, 0);
}

//! Rule 1/2/3 unit tests driven by the decision trace.
//!
//! Each test crafts miss-ratio curves that force the Bank-aware solver
//! into a specific physical-rule decision, then asserts on the observed
//! `RuleApplied` / `RuleRejected` events rather than only the final plan —
//! the trace is the solver's testimony about *why* the plan looks the way
//! it does.
//!
//! Baseline floorplan reminder: Local bank `c` sits in front of core `c`
//! (banks 0..8), Center banks are 8..16, cores are chain-adjacent.

use bankaware::msa::MissRatioCurve;
use bankaware::partitioning::{
    try_bank_aware_partition, try_bank_aware_partition_traced, BankAwareConfig,
};
use bankaware::trace::{EventKind, TraceEvent, Tracer};
use bankaware::types::{BankId, BankMask, CoreId, DegradedTopology, Topology};

/// Linear-to-knee curve: misses fall from `base` to `floor` over
/// `knee_ways` ways, then stay flat.
fn knee(base: f64, floor: f64, knee_ways: usize) -> MissRatioCurve {
    let misses = (0..=128)
        .map(|w| {
            if w >= knee_ways {
                floor
            } else {
                base - (base - floor) * w as f64 / knee_ways as f64
            }
        })
        .collect();
    MissRatioCurve::from_misses(misses, base.max(1.0))
}

fn solve_traced(
    curves: &[MissRatioCurve],
    machine: &DegradedTopology,
    cfg: &BankAwareConfig,
) -> (bankaware::cache::PartitionPlan, Vec<TraceEvent>) {
    let tracer = Tracer::ring();
    let plan = try_bank_aware_partition_traced(curves, machine, 8, cfg, &tracer)
        .expect("crafted curves must solve");
    (plan, tracer.drain_events())
}

fn healthy() -> DegradedTopology {
    DegradedTopology::healthy(Topology::baseline())
}

#[test]
fn rule1_rejects_sub_bank_center_growth_under_the_cap() {
    // A 5/9 capacity cap puts the ceiling at 71 ways: a hungry core
    // reaches 64 (Local + 7 Centers) with 7 ways of headroom left — less
    // than one whole bank, so Rule 1 must refuse further Center growth
    // even though the greedy still wants it.
    let cfg = BankAwareConfig {
        max_capacity_num: 5,
        max_capacity_den: 9,
        min_ways: 1,
    };
    let mut curves = vec![knee(50.0, 45.0, 4); 8];
    curves[0] = knee(1_000_000.0, 0.0, 128);
    let (plan, events) = solve_traced(&curves, &healthy(), &cfg);

    let rejection = events
        .iter()
        .find_map(|ev| match &ev.kind {
            EventKind::RuleRejected {
                rule: 1,
                core: 0,
                bank,
                why,
            } => Some((*bank, why.clone())),
            _ => None,
        })
        .expect("Rule 1 rejection for the capped hungry core");
    assert!(
        (8..16).contains(&rejection.0),
        "Rule 1 rejection names a Center bank: bank{}",
        rejection.0
    );
    assert!(
        rejection.1.contains("whole bank"),
        "rejection explains the granularity: {}",
        rejection.1
    );
    // The plan honours what the trace reports: 64 bank-granular ways plus
    // at most the sub-bank headroom via a Local share.
    let w0 = plan.ways_of(CoreId(0));
    assert!((64..=71).contains(&w0), "capped at 71: {w0}");
    let centers = events
        .iter()
        .filter(|ev| matches!(ev.kind, EventKind::CenterGrant { core: 0, .. }))
        .count();
    assert_eq!(
        centers, 7,
        "seven whole Center banks granted before the cap"
    );
}

#[test]
fn rule2_and_rule3_rejections_shape_an_overflow_pairing() {
    // Center magnets on cores 0, 4, 5, 6, 7 soak up all eight Center
    // banks and complete; cores 1 and 2 are tiny; core 3 wants ~12 ways
    // and must overflow its 8-way Local bank. Its neighbours are core 2
    // (open, tiny — the legal partner) and core 4 (complete — Rule 2
    // forbids touching its Local bank); core 1's bank is off-limits by
    // Rule 3 (not adjacent).
    let curves: Vec<MissRatioCurve> = (0..8)
        .map(|c| match c {
            1 | 2 => knee(100.0, 0.0, 2),
            3 => knee(100_000.0, 100.0, 12),
            _ => knee(500_000.0, 1000.0, 24),
        })
        .collect();
    let (plan, events) = solve_traced(&curves, &healthy(), &BankAwareConfig::default());

    let rejected: Vec<(u8, usize, usize, &str)> = events
        .iter()
        .filter_map(|ev| match &ev.kind {
            EventKind::RuleRejected {
                rule,
                core,
                bank,
                why,
            } => Some((*rule, *core, *bank, why.as_str())),
            _ => None,
        })
        .collect();
    assert!(
        rejected
            .iter()
            .any(|&(r, c, b, why)| r == 3 && c == 3 && b == 1 && why.contains("not adjacent")),
        "Rule 3 rejects core 1's non-adjacent bank: {rejected:?}"
    );
    assert!(
        rejected
            .iter()
            .any(|&(r, c, b, why)| r == 2 && c == 3 && b == 4 && why.contains("owns its Local")),
        "Rule 2 rejects the complete neighbour's bank: {rejected:?}"
    );

    // The pairing the rules leave open: core 3 with core 2.
    let pair = events
        .iter()
        .find_map(|ev| match ev.kind {
            EventKind::PairFormed { core, partner, .. } => Some((core, partner)),
            _ => None,
        })
        .expect("overflow formed a pair");
    assert_eq!(pair, (3, 2), "only core 2 is a legal partner");
    assert!(
        events.iter().any(|ev| matches!(
            ev.kind,
            EventKind::RuleApplied {
                rule: 3,
                core: 3,
                bank: 2
            }
        )),
        "the committed overflow is a Rule 3 application on bank 2"
    );
    assert!(plan.ways_of(CoreId(3)) >= 11, "{plan}");
    assert!(plan.ways_of(CoreId(2)) <= 5, "{plan}");
}

#[test]
fn rule3_rejects_banks_reserved_for_a_rescue() {
    // Core 0's Local bank is dead and its curve too small to win a Center:
    // its minimum share is reserved inside core 1's bank (a Rule 3
    // application). That bank now has its one permitted foreign sharer, so
    // core 2's overflow must be refused there and pair with core 3 instead.
    let mut mask = BankMask::all_healthy(16);
    mask.disable(BankId(0));
    let machine = DegradedTopology::new(Topology::baseline(), mask);
    let curves: Vec<MissRatioCurve> = (0..8)
        .map(|c| match c {
            0 => knee(100.0, 90.0, 2),
            1 | 3 => knee(100.0, 0.0, 2),
            2 => knee(100_000.0, 100.0, 12),
            _ => knee(500_000.0, 1000.0, 24),
        })
        .collect();
    let (plan, events) = solve_traced(&curves, &machine, &BankAwareConfig::default());

    assert!(
        events.iter().any(|ev| matches!(
            ev.kind,
            EventKind::RuleApplied {
                rule: 3,
                core: 0,
                bank: 1
            }
        )),
        "the rescue reservation is itself a Rule 3 application"
    );
    assert!(
        events.iter().any(|ev| matches!(
            &ev.kind,
            EventKind::RuleRejected {
                rule: 3,
                core: 2,
                bank: 1,
                why
            } if why.contains("reserved")
        )),
        "the reserved bank is closed to further sharing"
    );
    let pair = events
        .iter()
        .find_map(|ev| match ev.kind {
            EventKind::PairFormed { core, partner, .. } => Some((core, partner)),
            _ => None,
        })
        .expect("core 2 still pairs");
    assert_eq!(pair, (2, 3), "overflow routed to the unreserved neighbour");
    assert!(plan.ways_of(CoreId(0)) >= 1, "rescued core keeps its share");
}

#[test]
fn every_center_grant_carries_a_rule1_application_and_rule2_completion() {
    // Uniform appetites: each core takes one Center bank and completes.
    let curves = vec![knee(1000.0, 10.0, 40); 8];
    let (plan, events) = solve_traced(&curves, &healthy(), &BankAwareConfig::default());
    for c in 0..8 {
        assert_eq!(plan.ways_of(CoreId(c as u16)), 16);
    }
    let grants: Vec<(usize, usize)> = events
        .iter()
        .filter_map(|ev| match ev.kind {
            EventKind::CenterGrant { core, bank, .. } => Some((core, bank)),
            _ => None,
        })
        .collect();
    assert_eq!(grants.len(), 8, "one Center bank per core");
    for &(core, bank) in &grants {
        assert!(
            events.iter().any(|ev| matches!(
                ev.kind,
                EventKind::RuleApplied { rule: 1, core: c, bank: b } if c == core && b == bank
            )),
            "grant of bank{bank} to core{core} recorded as a Rule 1 application"
        );
        assert!(
            events.iter().any(|ev| matches!(
                ev.kind,
                EventKind::RuleApplied { rule: 2, core: c, bank: b } if c == core && b == core
            )),
            "completion of core{core} recorded as a Rule 2 application on its Local bank"
        );
    }
    // Nothing was refused on this easy instance.
    assert!(
        !events
            .iter()
            .any(|ev| matches!(ev.kind, EventKind::RuleRejected { .. })),
        "uniform appetites trigger no rule rejections"
    );
}

#[test]
fn tracing_never_changes_the_plan() {
    // The wrapper contract: a traced solve is bit-identical to the
    // untraced one on the same inputs.
    let cases: Vec<Vec<MissRatioCurve>> = vec![
        (0..8)
            .map(|c| knee(1000.0 + c as f64 * 37.0, 5.0, 8 + 3 * c))
            .collect(),
        {
            let mut v = vec![knee(50.0, 45.0, 4); 8];
            v[0] = knee(1_000_000.0, 0.0, 128);
            v
        },
        (0..8)
            .map(|c| match c {
                1 | 2 => knee(100.0, 0.0, 2),
                3 => knee(100_000.0, 100.0, 12),
                _ => knee(500_000.0, 1000.0, 24),
            })
            .collect(),
    ];
    for curves in cases {
        let machine = healthy();
        let cfg = BankAwareConfig::default();
        let untraced = try_bank_aware_partition(&curves, &machine, 8, &cfg).expect("solves");
        let (traced, events) = solve_traced(&curves, &machine, &cfg);
        assert_eq!(untraced, traced, "tracing is observation, not interference");
        assert!(!events.is_empty());
    }
}

//! Wire-protocol property tests for `bap serve` (tier 1).
//!
//! The serve wire format is line-oriented JSON built on the same serde
//! conventions as bap-trace: one externally tagged object per line. The
//! contract under test here is purely syntactic — no server is spawned:
//!
//! * **round trip** — every request and response kind, over arbitrary
//!   field values, survives encode → parse bit-exactly (finite floats
//!   compare equal; NaN is checked structurally below);
//! * **unknown-field tolerance** — a peer speaking a newer dialect may
//!   add fields; injecting extras at the top level or inside the kind
//!   payload must not change what we decode;
//! * **malformed input → typed error** — arbitrary garbage bytes and
//!   truncations of valid messages produce `WireError`, never a panic,
//!   and `WireError::to_response` yields the stable `"malformed"` code.

use bankaware::trace::wire::{
    encode_request, encode_response, parse_request_line, parse_response_line, RequestKind,
    ResponseKind, SessionDigest, WireCurve, WireError, WireLogEntry, WireRequest, WireResponse,
    WireSummary, ERROR_CODES,
};
use proptest::collection;
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Strategies. The proptest shim has no `String` strategy, so printable
// ASCII strings are assembled from byte vectors.
// ---------------------------------------------------------------------------

fn arb_string() -> impl Strategy<Value = String> {
    collection::vec(32u8..127, 0..12).prop_map(|bytes| String::from_utf8(bytes).unwrap())
}

fn arb_finite() -> impl Strategy<Value = f64> {
    prop_oneof![Just(0.0), 0.0..1.0e9f64, 0.0..1.0f64, Just(f64::MAX / 4.0),]
}

fn arb_curve() -> impl Strategy<Value = WireCurve> {
    (arb_finite(), collection::vec(arb_finite(), 0..8))
        .prop_map(|(accesses, misses)| WireCurve { accesses, misses })
}

fn arb_request_kind() -> BoxedStrategy<RequestKind> {
    prop_oneof![
        (any::<u64>(), 0usize..300)
            .prop_map(|(session, cores)| RequestKind::Open { session, cores }),
        (any::<u64>(), collection::vec(arb_curve(), 0..5))
            .prop_map(|(session, curves)| RequestKind::Snapshot { session, curves }),
        (any::<u64>(), collection::vec(arb_curve(), 0..5))
            .prop_map(|(session, curves)| RequestKind::Evaluate { session, curves }),
        any::<u64>().prop_map(|session| RequestKind::Plan { session }),
        (
            collection::vec(arb_string(), 0..4),
            any::<u64>(),
            any::<u64>()
        )
            .prop_map(|(workloads, instructions, seed)| RequestKind::Profile {
                workloads,
                instructions,
                seed,
            }),
        Just(RequestKind::Checkpoint),
        Just(RequestKind::Stats),
        Just(RequestKind::Shutdown),
        Just(RequestKind::Promote),
        Just(RequestKind::ReplStatus),
        any::<u64>().prop_map(|after_tick| RequestKind::ReplSubscribe { after_tick }),
        any::<u64>().prop_map(|tick| RequestKind::ReplAck { tick }),
    ]
    .boxed()
}

fn arb_deadline() -> impl Strategy<Value = Option<u64>> {
    prop_oneof![Just(None), (0u64..100_000).prop_map(Some)]
}

fn arb_request() -> impl Strategy<Value = WireRequest> {
    (any::<u64>(), arb_deadline(), arb_request_kind()).prop_map(|(id, deadline_ms, kind)| {
        WireRequest {
            id,
            deadline_ms,
            kind,
        }
    })
}

fn arb_summary() -> impl Strategy<Value = WireSummary> {
    (
        (any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>(), any::<u64>()),
    )
        .prop_map(
            |(
                (events, epochs, plans_installed),
                (plans_held, warm_start_hits, solver_failures),
            )| {
                WireSummary {
                    events,
                    epochs,
                    plans_installed,
                    plans_held,
                    warm_start_hits,
                    solver_failures,
                }
            },
        )
}

fn arb_ways() -> impl Strategy<Value = Vec<usize>> {
    collection::vec(0usize..100, 0..16)
}

fn arb_digest() -> impl Strategy<Value = SessionDigest> {
    (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(session, epoch, fingerprint)| {
        SessionDigest {
            session,
            epoch,
            fingerprint,
        }
    })
}

fn arb_log_entry() -> impl Strategy<Value = WireLogEntry> {
    (
        (any::<u64>(), any::<u64>(), any::<u8>()),
        collection::vec(arb_request(), 0..3),
        collection::vec(arb_digest(), 0..3),
    )
        .prop_map(|((tick, term, brownout), requests, digests)| WireLogEntry {
            tick,
            term,
            brownout,
            requests,
            digests,
        })
}

fn arb_response_kind() -> BoxedStrategy<ResponseKind> {
    prop_oneof![
        (any::<u64>(), 0usize..300)
            .prop_map(|(session, cores)| ResponseKind::Opened { session, cores }),
        (
            (any::<u64>(), any::<u64>(), any::<bool>()),
            (arb_ways(), arb_string(), any::<u64>(), arb_summary())
        )
            .prop_map(
                |((session, epoch, installed), (ways, source, fingerprint, summary))| {
                    ResponseKind::Decision {
                        session,
                        epoch,
                        installed,
                        ways,
                        source,
                        fingerprint,
                        summary,
                    }
                }
            ),
        (any::<u64>(), arb_ways(), any::<u64>()).prop_map(|(session, ways, fingerprint)| {
            ResponseKind::Evaluated {
                session,
                ways,
                fingerprint,
            }
        }),
        (
            (any::<u64>(), any::<u64>()),
            (arb_ways(), arb_string(), any::<u64>())
        )
            .prop_map(|((session, epoch), (ways, source, fingerprint))| {
                ResponseKind::Plan {
                    session,
                    epoch,
                    ways,
                    source,
                    fingerprint,
                }
            }),
        collection::vec(arb_curve(), 0..4).prop_map(|curves| ResponseKind::Profiled { curves }),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(bytes, sessions, tick)| {
            ResponseKind::Checkpointed {
                bytes: bytes as usize,
                sessions: sessions as usize,
                tick,
            }
        }),
        (
            (any::<u64>(), any::<u64>()),
            (any::<u64>(), any::<u64>(), any::<u64>())
        )
            .prop_map(|((sessions, ticks), (requests, decisions, warm_hits))| {
                ResponseKind::Stats {
                    sessions: sessions as usize,
                    ticks,
                    requests,
                    decisions,
                    warm_hits,
                }
            }),
        (0usize..64).prop_map(|drained| ResponseKind::Bye { drained }),
        (any::<u64>(), any::<u64>()).prop_map(|(term, tick)| ResponseKind::Promoted { term, tick }),
        (
            (arb_string(), any::<u64>(), any::<u64>()),
            (0usize..128, any::<u64>(), any::<u64>())
        )
            .prop_map(
                |((role, term, tick), (log_entries, anchor_tick, divergences))| {
                    ResponseKind::ReplStatus {
                        role,
                        term,
                        tick,
                        log_entries,
                        anchor_tick,
                        divergences,
                    }
                }
            ),
        (any::<u64>(), any::<u64>(), arb_string())
            .prop_map(|(tick, term, state)| { ResponseKind::ReplSnapshot { tick, term, state } }),
        arb_log_entry().prop_map(|entry| ResponseKind::ReplEntry { entry }),
        (arb_string(), arb_string(), arb_deadline()).prop_map(|(code, detail, retry_after_ms)| {
            ResponseKind::Error {
                code,
                detail,
                retry_after_ms,
            }
        }),
    ]
    .boxed()
}

fn arb_term() -> impl Strategy<Value = Option<u64>> {
    prop_oneof![Just(None), (1u64..1_000_000).prop_map(Some)]
}

fn arb_response() -> impl Strategy<Value = WireResponse> {
    (any::<u64>(), any::<u64>(), arb_term(), arb_response_kind()).prop_map(
        |(id, tick, term, kind)| WireResponse {
            id,
            tick,
            term,
            kind,
        },
    )
}

/// Inject `"extra":…` fields immediately after the first `n` opening
/// braces of an encoded line — top-level tolerance at `n = 1`, payload
/// tolerance beyond that. Skips braces inside string literals, and skips
/// the object directly under `"kind"`: that one is the externally tagged
/// enum wrapper, whose single key *is* the variant tag, so extra keys
/// there are ambiguous rather than tolerable.
fn inject_unknown_fields(line: &str, n: usize) -> String {
    let mut out = String::with_capacity(line.len() + 24 * n);
    let mut injected = 0;
    let (mut in_str, mut escaped) = (false, false);
    for ch in line.chars() {
        out.push(ch);
        if in_str {
            if escaped {
                escaped = false;
            } else if ch == '\\' {
                escaped = true;
            } else if ch == '"' {
                in_str = false;
            }
            continue;
        }
        if ch == '"' {
            in_str = true;
        } else if ch == '{' && injected < n && !out.ends_with("\"kind\":{") {
            out.push_str(&format!("\"extra{injected}\":[{injected},null],"));
            injected += 1;
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Round trips.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn every_request_round_trips(req in arb_request()) {
        let line = encode_request(&req);
        prop_assert!(!line.contains('\n'), "encoded request must be one line");
        let back = parse_request_line(&line).expect("round trip parse");
        prop_assert_eq!(back, req);
    }

    #[test]
    fn every_response_round_trips(resp in arb_response()) {
        let line = encode_response(&resp);
        prop_assert!(!line.contains('\n'), "encoded response must be one line");
        let back = parse_response_line(&line).expect("round trip parse");
        prop_assert_eq!(back, resp);
    }

    #[test]
    fn unknown_fields_are_tolerated(req in arb_request(), depth in 1usize..4) {
        let line = inject_unknown_fields(&encode_request(&req), depth);
        let back = parse_request_line(&line).expect("parse with extra fields");
        prop_assert_eq!(back, req);
    }

    #[test]
    fn unknown_response_fields_are_tolerated(resp in arb_response(), depth in 1usize..4) {
        let line = inject_unknown_fields(&encode_response(&resp), depth);
        let back = parse_response_line(&line).expect("parse with extra fields");
        prop_assert_eq!(back, resp);
    }

    #[test]
    fn garbage_never_panics(bytes in collection::vec(any::<u8>(), 0..80)) {
        let line = String::from_utf8_lossy(&bytes).into_owned();
        // Must return, never panic; if it parses, it must re-encode.
        if let Ok(req) = parse_request_line(&line) {
            let _ = encode_request(&req);
        }
        if let Ok(resp) = parse_response_line(&line) {
            let _ = encode_response(&resp);
        }
    }

    #[test]
    fn truncations_fail_typed(req in arb_request(), frac in 0.0..1.0f64) {
        let line = encode_request(&req);
        // Encoded lines are pure ASCII, so byte slicing is char-safe.
        prop_assert!(line.is_ascii());
        let cut = ((line.len() as f64) * frac) as usize;
        prop_assume!(cut < line.len());
        match parse_request_line(&line[..cut]) {
            Ok(_) => prop_assert!(false, "proper prefix of a JSON object parsed"),
            Err(WireError::EmptyLine) => prop_assert_eq!(cut, 0),
            Err(WireError::Malformed(detail)) => prop_assert!(!detail.is_empty()),
        }
    }

    #[test]
    fn malformed_maps_to_the_stable_error_code(junk in arb_string()) {
        let line = format!("!{junk}");
        let err = parse_request_line(&line).expect_err("leading '!' is never JSON");
        let resp = err.to_response();
        prop_assert_eq!(resp.id, 0);
        match resp.kind {
            ResponseKind::Error { code, detail, .. } => {
                prop_assert_eq!(code, "malformed");
                prop_assert!(!detail.is_empty());
            }
            other => prop_assert!(false, "expected Error, got {:?}", other),
        }
    }
}

// ---------------------------------------------------------------------------
// Deterministic edge cases the strategies above deliberately avoid.
// ---------------------------------------------------------------------------

#[test]
fn nan_accesses_survive_as_null() {
    let req = WireRequest {
        id: 7,
        deadline_ms: None,
        kind: RequestKind::Snapshot {
            session: 1,
            curves: vec![WireCurve {
                accesses: f64::NAN,
                misses: vec![1.0, f64::NAN],
            }],
        },
    };
    let line = encode_request(&req);
    assert!(line.contains("null"), "NaN must encode as null: {line}");
    let back = parse_request_line(&line).expect("NaN round trip");
    match back.kind {
        RequestKind::Snapshot { curves, .. } => {
            assert!(curves[0].accesses.is_nan());
            assert_eq!(curves[0].misses[0], 1.0);
            assert!(curves[0].misses[1].is_nan());
        }
        other => panic!("wrong kind back: {other:?}"),
    }
}

#[test]
fn empty_and_blank_lines_are_distinguished_from_garbage() {
    assert_eq!(parse_request_line(""), Err(WireError::EmptyLine));
    assert_eq!(parse_request_line("   \t  "), Err(WireError::EmptyLine));
    assert!(matches!(
        parse_request_line("{\"id\":1}"),
        Err(WireError::Malformed(_))
    ));
    assert!(matches!(
        parse_request_line("[1,2,3]"),
        Err(WireError::Malformed(_))
    ));
}

/// The wire error-code registry is an API contract: clients dispatch on
/// these strings (`ServeClient::call_with_retry` retries exactly on
/// `overloaded`), so a rename or removal is a wire break. This test pins
/// the registry verbatim — extending it is fine, but any change here must
/// be deliberate and documented.
#[test]
fn error_code_registry_is_pinned() {
    assert_eq!(
        ERROR_CODES,
        [
            "malformed",
            "bad_request",
            "unknown_session",
            "session_exists",
            "solve_failed",
            "unsupported",
            "checkpoint_failed",
            "overloaded",
            "deadline-exceeded",
            "internal",
            "not-primary",
            "fenced",
            "divergence",
        ],
        "the wire error-code registry changed; this is a compatibility break"
    );
    // The helpers stamp codes straight from the registry.
    let shed = ResponseKind::overloaded("busy", 7);
    assert_eq!(shed.error_code(), Some("overloaded"));
    let late = ResponseKind::deadline_exceeded("too late");
    assert_eq!(late.error_code(), Some("deadline-exceeded"));
    let refused = ResponseKind::not_primary(3);
    assert_eq!(refused.error_code(), Some("not-primary"));
    let stale = ResponseKind::fenced("deposed");
    assert_eq!(stale.error_code(), Some("fenced"));
    let ResponseKind::Error { retry_after_ms, .. } = &shed else {
        panic!("overloaded is an error");
    };
    assert_eq!(*retry_after_ms, Some(7), "sheds always carry a retry hint");
}

#[test]
fn request_labels_are_stable() {
    let labels = [
        (RequestKind::Checkpoint, "checkpoint"),
        (RequestKind::Stats, "stats"),
        (RequestKind::Shutdown, "shutdown"),
        (RequestKind::Plan { session: 0 }, "plan"),
        (RequestKind::Promote, "promote"),
        (RequestKind::ReplStatus, "repl_status"),
        (
            RequestKind::ReplSubscribe { after_tick: 0 },
            "repl_subscribe",
        ),
        (RequestKind::ReplAck { tick: 0 }, "repl_ack"),
    ];
    for (kind, want) in labels {
        assert_eq!(kind.label(), want);
    }
}

/// The fencing term is strictly additive on the wire: an unreplicated
/// server must encode responses WITHOUT a `term` member (byte-identical
/// to the pre-replication dialect), and a pre-replication peer's lines —
/// which never carry `term` — must parse with `term: None`.
#[test]
fn term_is_omitted_when_absent_and_optional_on_parse() {
    let bare = WireResponse {
        id: 9,
        tick: 4,
        term: None,
        kind: ResponseKind::Bye { drained: 0 },
    };
    let line = encode_response(&bare);
    assert!(
        !line.contains("term"),
        "term:None must not appear on the wire: {line}"
    );
    assert_eq!(parse_response_line(&line).unwrap(), bare);

    // A pre-replication line parses with term: None.
    let old = r#"{"id":9,"tick":4,"kind":{"Bye":{"drained":0}}}"#;
    assert_eq!(parse_response_line(old).unwrap(), bare);

    // A stamped term survives the round trip and sits between tick and kind.
    let stamped = WireResponse {
        term: Some(3),
        ..bare.clone()
    };
    let line = encode_response(&stamped);
    assert!(
        line.contains("\"term\":3"),
        "stamped term on the wire: {line}"
    );
    assert_eq!(parse_response_line(&line).unwrap(), stamped);
}

//! Golden-figure regression suite.
//!
//! Pins the headline aggregates of the committed `results/*.json` artifacts
//! against the values produced by the current code's last full experiment
//! run. These tests do NOT re-run the experiments (too slow for tier 1);
//! they guard the *committed* artifacts against silent drift — a refactor
//! that changes solver behaviour must regenerate them deliberately.
//!
//! Refresh procedure (see `tests/README.md`): re-run the experiment binary,
//! eyeball the diff against the paper's numbers, update the constants here
//! in the same commit as the regenerated JSON.

use serde_json::Value;
use std::path::PathBuf;

/// Absolute tolerance for pinned float aggregates. Wide enough for minor
/// cross-platform float noise, tight enough to catch any behavioural
/// change (historical policy regressions moved these by >0.05).
const TOL: f64 = 0.01;

fn golden(name: &str) -> Value {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("results")
        .join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("golden artifact {} missing: {e}", path.display()));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("{name} is not valid JSON: {e}"))
}

fn assert_close(value: &Value, key: &str, expected: f64) {
    let got = value[key]
        .as_f64()
        .unwrap_or_else(|| panic!("{key} missing or not a number"));
    assert!(
        (got - expected).abs() <= TOL,
        "{key} drifted: got {got}, golden {expected} (tol {TOL})"
    );
}

#[test]
fn fig7_monte_carlo_headlines_hold() {
    let fig = golden("fig7_monte_carlo.json");
    assert_eq!(fig["mixes"].as_u64(), Some(1000), "full 1000-mix run");
    assert_close(&fig, "mean_unrestricted_relative", 0.7485709873153211);
    assert_close(&fig, "mean_bank_aware_relative", 0.8087125294152684);
    // Structural sanity: both sorted series cover every mix and both
    // algorithms beat the fixed even shares on average.
    for key in ["sorted_unrestricted_relative", "sorted_bank_aware_relative"] {
        let series = fig[key].as_array().expect("sorted series present");
        assert_eq!(series.len(), 1000, "{key} covers every mix");
    }
    assert!(fig["mean_unrestricted_relative"].as_f64().unwrap() < 1.0);
    assert!(fig["mean_bank_aware_relative"].as_f64().unwrap() < 1.0);
}

#[test]
fn fig8_relative_miss_headlines_hold() {
    let fig = golden("fig8_relative_miss.json");
    assert_close(&fig, "gm_equal", 0.8723808937522333);
    assert_close(&fig, "gm_bank_aware", 0.6671039685534322);
    let equal = fig["relative_equal"].as_array().expect("per-set series");
    let ba = fig["relative_bank_aware"]
        .as_array()
        .expect("per-set series");
    assert_eq!(equal.len(), ba.len(), "one bar per workload set");
    assert!(!equal.is_empty());
    // The paper's qualitative claim: Bank-aware beats the static equal
    // split on the geometric mean.
    assert!(
        fig["gm_bank_aware"].as_f64().unwrap() < fig["gm_equal"].as_f64().unwrap(),
        "bank-aware must beat equal on GM miss rate"
    );
}

#[test]
fn fig9_relative_cpi_headlines_hold() {
    let fig = golden("fig9_relative_cpi.json");
    assert_close(&fig, "gm_equal", 0.9058207062250021);
    assert_close(&fig, "gm_bank_aware", 0.8016303434878941);
    let equal = fig["relative_equal"].as_array().expect("per-set series");
    let ba = fig["relative_bank_aware"]
        .as_array()
        .expect("per-set series");
    assert_eq!(equal.len(), ba.len());
    assert!(
        fig["gm_bank_aware"].as_f64().unwrap() < fig["gm_equal"].as_f64().unwrap(),
        "bank-aware must beat equal on GM CPI"
    );
}

#[test]
fn fig8_and_fig9_cover_the_same_sets() {
    let fig8 = golden("fig8_relative_miss.json");
    let fig9 = golden("fig9_relative_cpi.json");
    assert_eq!(
        fig8["sets"].as_array().map(Vec::len),
        fig9["sets"].as_array().map(Vec::len),
        "miss-rate and CPI figures describe the same workload sets"
    );
}

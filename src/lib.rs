//! # bankaware — Bank-aware Dynamic Cache Partitioning
//!
//! Facade crate for the reproduction of Kaseridis, Stuecheli and John,
//! *Bank-aware Dynamic Cache Partitioning for Multicore Architectures*
//! (ICPP 2009). Re-exports the workspace crates under stable module names:
//!
//! * [`types`] — identifiers, Table I configuration, Fig. 1 topology;
//! * [`cache`] — set-associative banks, way-partitioned LRU, DNUCA L2,
//!   bank-aggregation schemes;
//! * [`msa`] — Mattson stack-distance profilers and miss-ratio curves;
//! * [`noc`] — on-chip network latency/contention model;
//! * [`dram`] — main-memory model;
//! * [`energy`] — event-based dynamic-energy model;
//! * [`coherence`] — MOESI directory protocol;
//! * [`cpu`] — out-of-order core timing model with L1;
//! * [`workloads`] — synthetic SPEC CPU2000 analogues;
//! * [`fault`] — deterministic fault injection (bank loss/repair, dropped
//!   epochs, corrupted curves) and fault counters;
//! * [`trace`] — the decision-trace observability layer: structured
//!   epoch-level events (grants, rule applications/rejections, plan
//!   installs, ladder transitions) behind a zero-cost-when-off tracer;
//! * [`partitioning`] — marginal utility, Unrestricted (UCP-style) and the
//!   paper's Bank-aware allocation algorithm plus the epoch controller, its
//!   degradation ladder, the epoch decision budget and the anti-thrash
//!   hysteresis gate;
//! * [`guard`] — the online invariant guard that re-validates every
//!   installed plan (capacity conservation, Rules 1–3, mask consistency,
//!   curve health) at epoch boundaries and escalates violations into the
//!   degradation ladder;
//! * [`recovery`] — versioned, checksummed epoch-boundary checkpoints and
//!   the bounded checkpoint history behind crash recovery;
//! * [`system`] — the integrated 8-core CMP simulator and the analytic
//!   Monte Carlo evaluator.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use bap_cache as cache;
pub use bap_coherence as coherence;
pub use bap_core as partitioning;
pub use bap_cpu as cpu;
pub use bap_dram as dram;
pub use bap_energy as energy;
pub use bap_fault as fault;
pub use bap_guard as guard;
pub use bap_msa as msa;
pub use bap_noc as noc;
pub use bap_recovery as recovery;
pub use bap_system as system;
pub use bap_trace as trace;
pub use bap_types as types;
pub use bap_workloads as workloads;

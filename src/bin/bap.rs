//! `bap` — command-line front end for the bank-aware partitioning library.
//!
//! ```text
//! bap workloads                       list the SPEC CPU2000 analogues
//! bap profile <name> [--scale N]      print a workload's miss-ratio curve
//! bap partition <name>...             run the Bank-aware algorithm on a mix
//! bap simulate <name>... [options]    full detailed simulation of a mix
//!     --policy none|equal|bank-aware  (default bank-aware)
//!     --scale N                       geometry divisor (default 8)
//!     --instructions N                measured instructions/core (default 2000000)
//!     --seed N                        (default 42)
//!     --json FILE                     write the result as JSON
//! bap record <name> <file>            record a workload's op trace to a file
//!     --instructions N                trace length (default 1000000)
//! bap replay <file> x8 [options]      simulate a mix of recorded traces
//! bap serve [options]                 long-lived partitioning-decision service
//!     --listen ADDR                   serve the JSONL protocol over TCP
//!                                     (default: stdin/stdout JSONL; a blank
//!                                     line flushes the pending batch)
//!     --checkpoint FILE               restore from FILE at startup if present;
//!                                     Checkpoint requests persist to it
//!     --scale N                       geometry divisor for Profile requests
//!     --overload on|off               enable overload regulation with the
//!                                     tuned defaults (any knob below implies on)
//!     --queue-depth N                 requests admitted per tick (0 = unlimited)
//!     --inflight N                    per-session admissions per tick (0 = unl.)
//!     --tick-budget-ms N              wall-clock budget per tick (0 = unlimited)
//!     --brownout-enter N              over-budget ticks before browning out
//!     --brownout-exit N               calm ticks before stepping back up
//!     --replication on|off            run as a replicating primary: stamp the
//!                                     fencing term on every response, log and
//!                                     ship every committed batch to followers
//!     --replica-of ADDR               run as a follower of the primary at ADDR
//!                                     (requires --listen): replay its log,
//!                                     refuse writes with `not-primary`
//!     --promote-on-loss on|off        follower only: promote to primary when
//!                                     the primary's stream dies (default off)
//! ```

use bankaware::msa::ProfilerConfig;
use bankaware::partitioning::{
    bank_aware_partition, net, BankAwareConfig, DecisionService, OverloadGovernor, Policy,
    ServeConfig,
};
use bankaware::system::sim::OpStream;
use bankaware::system::{profile_workloads, SimOptions, System};
use bankaware::trace::wire;
use bankaware::types::{CoreId, OverloadConfig, ReplicationConfig, SystemConfig, Topology};
use bankaware::workloads::trace::{replay, LoopedTrace};
use bankaware::workloads::{spec_by_name, workload_names, WorkloadSpec};
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage:\n  bap workloads\n  bap profile <name> [--scale N]\n  \
         bap partition <name> x8 [--scale N] [--seed N]\n  \
         bap simulate <name> x8 [--policy none|equal|bank-aware] [--scale N] \
         [--instructions N] [--seed N] [--json FILE]\n  \
         bap record <name> <file> [--instructions N] [--seed N]\n  \
         bap replay <file> x8 [--policy ...] [--scale N] [--instructions N]\n  \
         bap serve [--listen ADDR] [--checkpoint FILE] [--scale N] [--overload on] \
         [--queue-depth N] [--inflight N] [--tick-budget-ms N] \
         [--brownout-enter N] [--brownout-exit N] \
         [--replication on] [--replica-of ADDR] [--promote-on-loss on]"
    );
    exit(2)
}

/// Minimal flag parser: returns (positional args, flag lookups).
struct Flags(Vec<(String, String)>);

impl Flags {
    fn get(&self, name: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    fn u64(&self, name: &str, default: u64) -> u64 {
        self.get(name).map_or(default, |v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("--{name} expects an integer, got {v:?}");
                exit(2)
            })
        })
    }
}

fn parse(args: &[String]) -> (Vec<String>, Flags) {
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            i += 1;
            if i >= args.len() {
                eprintln!("--{name} expects a value");
                exit(2);
            }
            flags.push((name.to_string(), args[i].clone()));
        } else {
            positional.push(args[i].clone());
        }
        i += 1;
    }
    (positional, Flags(flags))
}

fn resolve_mix(names: &[String]) -> Vec<WorkloadSpec> {
    if names.len() != 8 {
        eprintln!(
            "expected 8 workload names (one per core), got {}",
            names.len()
        );
        exit(2);
    }
    names
        .iter()
        .map(|n| {
            spec_by_name(n).unwrap_or_else(|| {
                eprintln!("unknown workload {n:?}; run `bap workloads` for the catalog");
                exit(2)
            })
        })
        .collect()
}

fn cmd_workloads() {
    println!(
        "{:<10} {:>8} {:>10} {:>11} {:>9}",
        "name", "mem%", "L2 apki", "appetite", "scans"
    );
    for name in workload_names() {
        let w = spec_by_name(&name).expect("catalog");
        let appetite = w
            .components
            .iter()
            .map(|c| c.hi_ways)
            .chain(w.scans.iter().map(|s| s.ways))
            .fold(0.0f64, f64::max);
        println!(
            "{:<10} {:>7.0}% {:>10.1} {:>8.0} ways {:>9}",
            w.name,
            100.0 * w.mem_fraction,
            w.l2_apki(0.5),
            appetite,
            if w.scans.is_empty() { "no" } else { "yes" }
        );
    }
}

fn cmd_profile(names: &[String], flags: &Flags) {
    let name = names.first().unwrap_or_else(|| usage());
    let spec = spec_by_name(name).unwrap_or_else(|| {
        eprintln!("unknown workload {name:?}");
        exit(2)
    });
    let cfg = SystemConfig::scaled(flags.u64("scale", 8));
    let pcfg = ProfilerConfig::reference(cfg.l2_bank_sets(), 72);
    let curve = profile_workloads(
        std::slice::from_ref(&spec),
        &cfg,
        pcfg,
        flags.u64("instructions", 10_000_000),
        flags.u64("seed", 42),
    )
    .remove(0);
    println!("{name}: projected L2 miss ratio vs dedicated ways");
    for w in [1usize, 2, 4, 6, 8, 12, 16, 24, 32, 40, 48, 56, 64, 72] {
        let bar_len = (curve.miss_ratio_at(w) * 50.0).round() as usize;
        println!(
            "{w:>4} ways  {:>6.3}  {}",
            curve.miss_ratio_at(w),
            "#".repeat(bar_len)
        );
    }
}

fn cmd_partition(names: &[String], flags: &Flags) {
    let specs = resolve_mix(names);
    let cfg = SystemConfig::scaled(flags.u64("scale", 8));
    let pcfg = ProfilerConfig::reference(cfg.l2_bank_sets(), 72);
    let curves = profile_workloads(
        &specs,
        &cfg,
        pcfg,
        flags.u64("instructions", 10_000_000),
        flags.u64("seed", 42),
    );
    let plan = bank_aware_partition(
        &curves,
        &Topology::baseline(),
        8,
        &BankAwareConfig::default(),
    );
    println!("bank-aware assignment:");
    for (c, name) in names.iter().enumerate() {
        let allocs: Vec<String> = plan.per_core[c]
            .iter()
            .map(|a| format!("{}x{}", a.bank, a.ways))
            .collect();
        println!(
            "  core{c} {:<10} {:>3} ways  [{}]",
            name,
            plan.ways_of(CoreId(c as u16)),
            allocs.join(", ")
        );
    }
}

fn cmd_simulate(names: &[String], flags: &Flags) {
    let specs = resolve_mix(names);
    let policy = match flags.get("policy").unwrap_or("bank-aware") {
        "none" => Policy::NoPartition,
        "equal" => Policy::Equal,
        "bank-aware" => Policy::BankAware,
        other => {
            eprintln!("unknown policy {other:?}");
            exit(2)
        }
    };
    let mut opts = SimOptions::new(SystemConfig::scaled(flags.u64("scale", 8)), policy);
    opts.measure_instructions = flags.u64("instructions", 2_000_000);
    opts.warmup_instructions = opts.measure_instructions / 2;
    opts.config.epoch_cycles = opts.measure_instructions / 2;
    opts.seed = flags.u64("seed", 42);
    let result = System::new(opts, specs).run();

    println!("policy: {policy:?}");
    println!(
        "{:<6} {:<10} {:>10} {:>10} {:>8} {:>8}",
        "core", "workload", "L2 acc", "L2 miss", "ratio", "CPI"
    );
    for (c, name) in names.iter().enumerate() {
        let s = &result.per_core[c];
        println!(
            "{:<6} {:<10} {:>10} {:>10} {:>8.3} {:>8.2}",
            format!("core{c}"),
            name,
            s.l2.accesses(),
            s.l2.misses,
            s.l2.miss_ratio(),
            s.cpi()
        );
    }
    println!(
        "\ntotal: {} misses, miss ratio {:.3}, mean CPI {:.2}, {} epochs",
        result.total_l2_misses(),
        result.l2_miss_ratio(),
        result.mean_cpi(),
        result.epochs
    );
    if let Some(plan) = &result.final_plan {
        let ways: Vec<usize> = (0..8).map(|c| plan.ways_of(CoreId(c))).collect();
        println!("final ways per core: {ways:?}");
    }
    if let Some(path) = flags.get("json") {
        let summary = serde_json::json!({
            "policy": format!("{policy:?}"),
            "per_core": result.per_core,
            "total_misses": result.total_l2_misses(),
            "miss_ratio": result.l2_miss_ratio(),
            "mean_cpi": result.mean_cpi(),
            "epochs": result.epochs,
        });
        std::fs::write(
            path,
            serde_json::to_string_pretty(&summary).expect("serialise"),
        )
        .unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            exit(1)
        });
        println!("wrote {path}");
    }
}

fn cmd_record(names: &[String], flags: &Flags) {
    let (name, path) = match names {
        [n, p] => (n, p),
        _ => usage(),
    };
    let spec = spec_by_name(name).unwrap_or_else(|| {
        eprintln!("unknown workload {name:?}");
        exit(2)
    });
    let cfg = SystemConfig::scaled(flags.u64("scale", 8));
    let budget = flags.u64("instructions", 1_000_000);
    let mut stream = bankaware::workloads::AddressStream::new(
        spec,
        cfg.l2_bank_sets() as u64,
        1,
        flags.u64("seed", 42),
    );
    let mut ops = Vec::new();
    let mut executed = 0u64;
    while executed < budget {
        let op = stream.next().expect("infinite");
        executed += op.instructions();
        ops.push(op);
    }
    let mut file = std::io::BufWriter::new(std::fs::File::create(path).unwrap_or_else(|e| {
        eprintln!("cannot create {path}: {e}");
        exit(1)
    }));
    bankaware::workloads::trace::record(ops, &mut file).expect("write trace");
    println!("recorded {budget} instructions of {name} to {path}");
}

fn cmd_replay(names: &[String], flags: &Flags) {
    if names.len() != 8 {
        eprintln!("expected 8 trace files (one per core), got {}", names.len());
        exit(2);
    }
    let streams: Vec<OpStream> = names
        .iter()
        .map(|path| {
            let file = std::fs::File::open(path).unwrap_or_else(|e| {
                eprintln!("cannot open {path}: {e}");
                exit(1)
            });
            let ops: Vec<_> = replay(std::io::BufReader::new(file))
                .collect::<Result<_, _>>()
                .unwrap_or_else(|e| {
                    eprintln!("corrupt trace {path}: {e}");
                    exit(1)
                });
            Box::new(LoopedTrace::new(ops)) as OpStream
        })
        .collect();
    let policy = match flags.get("policy").unwrap_or("bank-aware") {
        "none" => Policy::NoPartition,
        "equal" => Policy::Equal,
        "bank-aware" => Policy::BankAware,
        other => {
            eprintln!("unknown policy {other:?}");
            exit(2)
        }
    };
    let mut opts = SimOptions::new(SystemConfig::scaled(flags.u64("scale", 8)), policy);
    opts.measure_instructions = flags.u64("instructions", 1_000_000);
    opts.warmup_instructions = opts.measure_instructions / 2;
    opts.config.epoch_cycles = opts.measure_instructions / 2;
    opts.seed = flags.u64("seed", 42);
    let result = System::with_streams(opts, streams).run();
    println!(
        "replayed: {} misses, miss ratio {:.3}, mean CPI {:.2}",
        result.total_l2_misses(),
        result.l2_miss_ratio(),
        result.mean_cpi()
    );
}

/// Resolve a `Profile` request against the workload catalog — the one
/// request kind the in-process service can't serve, because the catalog
/// and the profiling pipeline live in `bap-system`/`bap-workloads`.
fn serve_profile(
    workloads: &[String],
    instructions: u64,
    seed: u64,
    scale: u64,
) -> wire::ResponseKind {
    let mut specs = Vec::with_capacity(workloads.len());
    for name in workloads {
        match spec_by_name(name) {
            Some(spec) => specs.push(spec),
            None => {
                return wire::ResponseKind::error(
                    "bad_request",
                    format!("unknown workload {name:?}; run `bap workloads` for the catalog"),
                )
            }
        }
    }
    if specs.is_empty() {
        return wire::ResponseKind::error("bad_request", "no workloads named");
    }
    let cfg = SystemConfig::scaled(scale);
    let pcfg = ProfilerConfig::reference(cfg.l2_bank_sets(), 72);
    let curves = profile_workloads(&specs, &cfg, pcfg, instructions.max(1), seed);
    wire::ResponseKind::Profiled {
        curves: curves
            .iter()
            .map(|c| wire::WireCurve {
                accesses: c.accesses(),
                misses: (0..=c.max_ways()).map(|w| c.misses_at(w)).collect(),
            })
            .collect(),
    }
}

/// Serve the JSONL protocol over stdin/stdout: one request per line, a
/// blank line (or EOF) flushes the pending batch as one epoch tick, one
/// response per line in request order. Malformed lines get a typed error
/// response (id 0) immediately and never kill the server. With overload
/// regulation on, every flush is gated by the service's governor: shed
/// requests answer `overloaded`/`deadline-exceeded` in place, the
/// survivors form the tick.
fn serve_stdio(mut service: DecisionService, scale: u64) {
    use std::io::{BufRead, Write};
    use std::time::Instant;
    let mut governor = service.governor();
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let mut batch: Vec<(wire::WireRequest, Instant)> = Vec::new();
    let respond = |out: &mut dyn Write, resp: &wire::WireResponse| {
        writeln!(out, "{}", wire::encode_response(resp)).expect("stdout writable");
    };
    let flush = |service: &mut DecisionService,
                 governor: &mut Option<OverloadGovernor>,
                 batch: &mut Vec<(wire::WireRequest, Instant)>,
                 out: &mut std::io::BufWriter<std::io::StdoutLock>|
     -> bool {
        if batch.is_empty() {
            return false;
        }
        let pending = std::mem::take(batch);
        let stop = pending
            .iter()
            .any(|(r, _)| matches!(r.kind, wire::RequestKind::Shutdown));
        let now = Instant::now();
        let verdicts = match governor.as_mut() {
            Some(g) => {
                let refs: Vec<(&wire::WireRequest, Instant)> =
                    pending.iter().map(|(r, t)| (r, *t)).collect();
                g.gate(now, &refs)
            }
            None => vec![None; pending.len()],
        };
        // Responses go out in request order: sheds answer in place, the
        // admitted rest come back from the tick.
        let mut responses: Vec<Option<wire::WireResponse>> =
            (0..pending.len()).map(|_| None).collect();
        let mut admitted = Vec::new();
        let mut slots = Vec::new();
        for (i, ((req, _), verdict)) in pending.into_iter().zip(verdicts).enumerate() {
            match verdict {
                Some(kind) => {
                    responses[i] = Some(wire::WireResponse {
                        id: req.id,
                        tick: 0,
                        term: service.term(),
                        kind,
                    })
                }
                None => {
                    slots.push(i);
                    admitted.push(req);
                }
            }
        }
        if !admitted.is_empty() {
            let ctx = governor
                .as_ref()
                .map(|g| g.context(now))
                .unwrap_or_default();
            let start = Instant::now();
            let served = service.process_batch_with(&admitted, &ctx);
            if let Some(g) = governor.as_mut() {
                g.tick_done(start.elapsed(), admitted.len());
            }
            for (slot, resp) in slots.into_iter().zip(served) {
                responses[slot] = Some(resp);
            }
        }
        for resp in responses.into_iter().flatten() {
            respond(out, &resp);
        }
        out.flush().expect("stdout flushable");
        stop
    };
    for line in stdin.lock().lines() {
        let line = line.unwrap_or_else(|e| {
            eprintln!("stdin read failed: {e}");
            exit(1)
        });
        match wire::parse_request_line(&line) {
            Ok(req) => {
                // Profile requests are front-end work (workload catalog);
                // answer them inline, outside the batch.
                if let wire::RequestKind::Profile {
                    workloads,
                    instructions,
                    seed,
                } = &req.kind
                {
                    let kind = serve_profile(workloads, *instructions, *seed, scale);
                    let resp = wire::WireResponse {
                        id: req.id,
                        tick: service.ticks(),
                        term: service.term(),
                        kind,
                    };
                    respond(&mut out, &resp);
                    out.flush().expect("stdout flushable");
                } else {
                    batch.push((req, Instant::now()));
                }
            }
            Err(wire::WireError::EmptyLine) => {
                if flush(&mut service, &mut governor, &mut batch, &mut out) {
                    return;
                }
            }
            Err(err) => {
                respond(&mut out, &err.to_response());
                out.flush().expect("stdout flushable");
            }
        }
    }
    flush(&mut service, &mut governor, &mut batch, &mut out);
}

/// Serve the JSONL protocol over TCP through the shared
/// [`net::serve_tcp`] front end (per-connection panic isolation, the
/// replication bridge): one connection per client thread, all feeding
/// the batched server. A served `Shutdown` stops the accept loop and
/// joins the worker.
fn serve_tcp(service: DecisionService, addr: &str, scale: u64, replica_of: Option<(String, bool)>) {
    let listener = std::net::TcpListener::bind(addr).unwrap_or_else(|e| {
        eprintln!("cannot listen on {addr}: {e}");
        exit(1)
    });
    let local = listener.local_addr().expect("bound socket has an address");
    eprintln!("bap serve listening on {local}");
    let profile: std::sync::Arc<net::ProfileFn> =
        std::sync::Arc::new(move |workloads: &[String], instructions: u64, seed: u64| {
            serve_profile(workloads, instructions, seed, scale)
        });
    net::serve_tcp(service, listener, profile, replica_of);
}

/// The overload regulation requested on the command line: `--overload on`
/// (or any individual knob) enables the layer with the tuned defaults,
/// individual knobs override from there. No flag at all leaves the
/// service unregulated — byte-identical to the pre-overload server.
fn overload_flags(flags: &Flags) -> Option<OverloadConfig> {
    let knobs = [
        "queue-depth",
        "inflight",
        "tick-budget-ms",
        "brownout-enter",
        "brownout-exit",
    ];
    let enabled = match flags.get("overload") {
        Some("on") => true,
        Some("off") => return None,
        Some(other) => {
            eprintln!("--overload expects on|off, got {other:?}");
            exit(2)
        }
        None => knobs.iter().any(|k| flags.get(k).is_some()),
    };
    if !enabled {
        return None;
    }
    let d = OverloadConfig::default();
    Some(OverloadConfig {
        max_queue_depth: flags.u64("queue-depth", d.max_queue_depth as u64) as usize,
        max_session_inflight: flags.u64("inflight", d.max_session_inflight as u64) as usize,
        tick_budget_ms: flags.u64("tick-budget-ms", d.tick_budget_ms),
        brownout_enter_ticks: flags.u64("brownout-enter", u64::from(d.brownout_enter_ticks)) as u32,
        brownout_exit_ticks: flags.u64("brownout-exit", u64::from(d.brownout_exit_ticks)) as u32,
    })
}

/// The replication role requested on the command line. `--replica-of`
/// makes a follower; `--replication on` makes a replicating primary; no
/// flag leaves the service unreplicated — byte-identical to the
/// pre-replication server.
fn replication_flags(flags: &Flags) -> (Option<ReplicationConfig>, Option<(String, bool)>) {
    let on_off = |name: &str| match flags.get(name) {
        Some("on") => true,
        Some("off") | None => false,
        Some(other) => {
            eprintln!("--{name} expects on|off, got {other:?}");
            exit(2)
        }
    };
    let promote_on_loss = on_off("promote-on-loss");
    let primary = on_off("replication");
    match flags.get("replica-of") {
        Some(addr) => {
            if primary {
                eprintln!("--replica-of and --replication on are mutually exclusive");
                exit(2);
            }
            let cfg = ReplicationConfig {
                follower: true,
                ..ReplicationConfig::default()
            };
            (Some(cfg), Some((addr.to_string(), promote_on_loss)))
        }
        None => {
            if promote_on_loss {
                eprintln!("--promote-on-loss needs --replica-of");
                exit(2);
            }
            (primary.then(ReplicationConfig::default), None)
        }
    }
}

fn cmd_serve(flags: &Flags) {
    let mut cfg = ServeConfig::default();
    if let Some(path) = flags.get("checkpoint") {
        cfg.checkpoint_path = Some(std::path::PathBuf::from(path));
    }
    cfg.overload = overload_flags(flags);
    let (replication, replica_of) = replication_flags(flags);
    cfg.replication = replication;
    let mut service = DecisionService::new(cfg);
    if let Some(path) = flags.get("checkpoint") {
        let path = std::path::Path::new(path);
        if path.exists() {
            match service.restore_from_path(path) {
                Ok(tick) => eprintln!(
                    "restored {} session(s) at tick {tick} from {}",
                    service.num_sessions(),
                    path.display()
                ),
                Err(e) => {
                    eprintln!("cannot restore {}: {e}", path.display());
                    exit(1)
                }
            }
        }
    }
    let scale = flags.u64("scale", 8);
    match flags.get("listen") {
        Some(addr) => serve_tcp(service, addr, scale, replica_of),
        None => {
            if replica_of.is_some() {
                eprintln!("--replica-of needs --listen: a follower serves its clients over TCP");
                exit(2);
            }
            serve_stdio(service, scale)
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().cloned() else {
        usage()
    };
    let (positional, flags) = parse(&args[1..]);
    match command.as_str() {
        "workloads" => cmd_workloads(),
        "profile" => cmd_profile(&positional, &flags),
        "partition" => cmd_partition(&positional, &flags),
        "simulate" => cmd_simulate(&positional, &flags),
        "record" => cmd_record(&positional, &flags),
        "replay" => cmd_replay(&positional, &flags),
        "serve" => cmd_serve(&flags),
        _ => usage(),
    }
}
